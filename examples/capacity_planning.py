#!/usr/bin/env python
"""Capacity planning: how much managed disk does the archive need?

Sweeps the managed-disk size from 0.5 % to 8 % of the archive and reports
the STP miss-ratio curve, the paper's person-minutes currency, and the
effect of the Section 6 recommendations (lazy write-back, prefetch) at the
chosen operating point.  This is the study a storage architect would run
before buying 3380s.
"""

from repro import WorkloadConfig, generate_trace
from repro.analysis.render import TextTable
from repro.hsm import capacity_sweep, events_from_trace, run_policy


def main() -> None:
    config = WorkloadConfig(scale=0.01, seed=9)
    trace = generate_trace(config)
    events = events_from_trace(trace)
    total = trace.namespace.total_bytes
    print(f"archive: {total / 1e9:.1f} GB in {trace.namespace.file_count} files; "
          f"{len(events)} deduped references over two years\n")

    table = TextTable(
        ["disk (% of archive)", "disk (GB)", "miss ratio",
         "capacity-miss", "mean read latency (s)", "person-min/day"],
        title="STP miss ratio vs managed-disk capacity",
    )
    fractions = (0.005, 0.01, 0.015, 0.02, 0.04, 0.08)
    for fraction, metrics in capacity_sweep(events, "stp", total, fractions):
        table.add_row(
            f"{fraction:.1%}",
            f"{total * fraction / 1e9:.1f}",
            f"{metrics.read_miss_ratio:.4f}",
            f"{metrics.capacity_miss_ratio:.4f}",
            f"{metrics.mean_read_latency():.1f}",
            f"{metrics.person_minutes_per_day():.2f}",
        )
    print(table.render())

    capacity = int(total * 0.015)
    print("\nat the 1.5% operating point:")
    lazy = run_policy(events, "stp", capacity, writeback_delay=4 * 3600.0)
    eager = run_policy(events, "stp", capacity, writeback_delay=None)
    print(f"  write-through : {eager.tape_writes} tape writes")
    print(f"  lazy writeback: {lazy.tape_writes} tape writes "
          f"({lazy.rewrites_absorbed} rewrites absorbed before flushing)")
    fetched = run_policy(events, "stp", capacity,
                         namespace=trace.namespace, prefetch=True)
    plain = run_policy(events, "stp", capacity, namespace=trace.namespace)
    print(f"  prefetch      : miss {plain.read_miss_ratio:.4f} -> "
          f"{fetched.read_miss_ratio:.4f} "
          f"(accuracy {fetched.prefetch_accuracy():.0%})")


if __name__ == "__main__":
    main()
