#!/usr/bin/env python
"""Quickstart: synthesize an NCAR-like trace and reproduce Table 3.

Runs in a few seconds at 1 % scale.  What you should see: a read:write
ratio near 2:1, two thirds of references on MSS disk, most bytes moving
through the tape silo, and a 4.76 % error rate -- the fingerprints of the
Miller & Katz trace.
"""

from repro import WorkloadConfig, generate_trace
from repro.analysis import overall_statistics


def main() -> None:
    config = WorkloadConfig(scale=0.01, seed=1993)
    print(f"generating {config.n_files} files over 731 simulated days ...")
    trace = generate_trace(config)
    print(f"-> {trace.n_events} MSS references\n")

    analysis = overall_statistics(trace.iter_records())
    print(analysis.render())
    print()
    print(analysis.comparison().render())

    stats = analysis.stats
    print()
    print(f"read:write ratio  {stats.read_write_ratio():.2f}  (paper: ~2:1)")
    print(
        "mean interarrival at full scale  "
        f"{stats.mean_interarrival_seconds() * config.scale:.1f} s  (paper: 18 s)"
    )


if __name__ == "__main__":
    main()
