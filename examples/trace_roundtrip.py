#!/usr/bin/env python
"""The trace format in action: write, re-read, and measure compaction.

Section 4 describes reducing 50 MB/month of system logs to 10-11 MB/month
of trace by delta-encoding timestamps and eliding repeated users.  This
script writes a synthetic month, shows sample lines, verifies a lossless
(quantized) round-trip, and reports bytes per record.
"""

import os
import tempfile

from repro import WorkloadConfig, generate_trace
from repro.trace.codec import quantize_record
from repro.trace.reader import read_trace
from repro.util.units import DAY


def main() -> None:
    config = WorkloadConfig(
        scale=0.02, seed=4, duration_seconds=30 * DAY
    )
    trace = generate_trace(config)
    records = trace.records()
    print(f"one synthetic month: {len(records)} MSS references")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "month.rt")
        trace.write(path, comments={"month": "1991-06"})
        size = os.path.getsize(path)
        print(f"trace file: {size:,} bytes "
              f"({size / len(records):.1f} bytes/record)\n")

        with open(path) as handle:
            lines = handle.read().splitlines()
        print("header and first records:")
        for line in lines[:8]:
            print(f"  {line}")

        back = read_trace(path)
        assert len(back) == len(records)
        mismatches = sum(
            1
            for original, decoded in zip(records, back)
            if quantize_record(original).mss_path != decoded.mss_path
            or quantize_record(original).file_size != decoded.file_size
        )
        print(f"\nround-trip: {len(back)} records restored, "
              f"{mismatches} mismatches (quantized to format precision)")

        elided = sum(1 for line in lines if line.endswith(" ="))
        print(f"same-user elisions: {elided} of {len(records)} records "
              f"({elided / len(records):.0%}) -- sessions keep one user")


if __name__ == "__main__":
    main()
