#!/usr/bin/env python
"""Run the complete experiment suite: every table and figure, one report.

This is the programmatic equivalent of ``python -m repro report``.  It
takes a few minutes: the base study covers the full 731-day span at 2 %
scale, and the dense study replays a full-density fortnight through the
discrete-event MSS for the latency and interarrival figures.
"""

from repro.core.experiments import (
    experiment_ids,
    needs_dense_study,
    run_experiment,
)
from repro.core.study import Study, StudyConfig
from repro.workload.config import WorkloadConfig


def main() -> None:
    base = Study(StudyConfig(workload=WorkloadConfig(scale=0.02, seed=42)))
    dense = Study(StudyConfig.dense(scale=0.02, seed=42, days=14.62))

    worst = []
    for exp_id in experiment_ids():
        study = dense if needs_dense_study(exp_id) else base
        result = run_experiment(exp_id, study)
        print(result.render())
        print()
        if result.comparison is not None and result.comparison.rows:
            row = max(result.comparison.rows, key=lambda r: r.relative_error)
            worst.append((exp_id, row.label, row.relative_error))

    print("=" * 70)
    print("worst paper-vs-measured row per experiment:")
    for exp_id, label, error in worst:
        print(f"  {exp_id:9s} {error:6.1%}  {label}")


if __name__ == "__main__":
    main()
