#!/usr/bin/env python
"""Compare migration policies on a synthetic NCAR year.

Replays the deduped reference stream through a managed disk sized at 1.5 %
of the archive (the operating point Section 2.3 discusses) under every
registered policy plus the offline-optimal bound, and reports miss ratios
and the person-minutes-per-day cost of the misses.

Expected outcome (matching Smith [14,15] and Lawrie [10]): OPT < STP <=
LRU ~ SAAC < FIFO < random < size-only policies, with STP ahead of LRU
"only by a slim margin."
"""

from repro import WorkloadConfig, generate_trace
from repro.analysis.render import TextTable
from repro.hsm import events_from_trace, run_policy


def main() -> None:
    config = WorkloadConfig(scale=0.01, seed=42)
    print(f"generating workload (scale {config.scale}) ...")
    trace = generate_trace(config)
    events = events_from_trace(trace)
    total = trace.namespace.total_bytes
    capacity = int(total * 0.015)
    print(f"{len(events)} deduped references; managed disk = 1.5% of "
          f"{total / 1e9:.1f} GB archive\n")

    table = TextTable(
        ["policy", "miss ratio", "capacity-miss", "evictions", "person-min/day"],
        title="Migration policies at 1.5% managed-disk capacity",
    )
    names = ("opt", "stp", "stp-1.0", "lru", "saac", "fifo",
             "random", "largest-first", "smallest-first", "mru")
    for name in names:
        metrics = run_policy(events, name, capacity, namespace=trace.namespace)
        table.add_row(
            name,
            f"{metrics.read_miss_ratio:.4f}",
            f"{metrics.capacity_miss_ratio:.4f}",
            metrics.evictions,
            f"{metrics.person_minutes_per_day():.2f}",
        )
    print(table.render())
    print("\n(capacity-miss excludes compulsory first-touch misses; opt is the")
    print(" Belady-style offline bound with the full reference string)")


if __name__ == "__main__":
    main()
