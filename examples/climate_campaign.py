#!/usr/bin/env python
"""A climate-model campaign on the simulated MSS.

Models the workload the paper's Section 3.3 describes: a Community Climate
Model batch run produces ~500 MB of history files overnight (split into
MSS-legal 200 MB segments), and the scientist visualizes the results the
next morning -- reading the day-1 file, then day-2, then day-3, off the
tape silo.  A colleague meanwhile recalls a two-year-old run from shelf
tape.

The script drives the discrete-event MSS directly and prints the latency
each actor experienced, showing why the paper says "humans wait for reads,
while computers wait for writes."
"""

from repro.mss import MSSConfig, MSSSystem
from repro.namespace.sizes import split_oversized
from repro.trace.record import Device
from repro.util.units import HOUR, MB, format_duration


def main() -> None:
    system = MSSSystem(MSSConfig(seed=7))

    # --- overnight: the batch job writes its model output -----------------
    run_output = 500 * MB
    segments = split_oversized(run_output)
    print(f"batch job: writing {run_output / MB:.0f} MB of CCM history as "
          f"{len(segments)} MSS files (200 MB cartridge limit)")
    writes = []
    t = 2 * HOUR  # 2 AM, machine-driven
    for i, segment in enumerate(segments):
        writes.append(
            system.submit(
                f"/u0042/ccm07/hist/h{i:05d}.nc", segment, True,
                Device.TAPE_SILO, when=t,
            )
        )
        t += 240.0  # the model writes a segment every few minutes

    # --- morning: the scientist reads it back, file by file ---------------
    reads = []
    t = 9 * HOUR + 300  # 9:05 AM
    for i in range(len(segments)):
        reads.append(
            system.submit(
                f"/u0042/ccm07/hist/h{i:05d}.nc", segments[i], False,
                Device.TAPE_SILO, when=t,
            )
        )
        t += 30.0  # the visualization tool requests the next day promptly

    # --- a colleague recalls an old run from shelf tape -------------------
    recall = system.submit(
        "/u0107/paleo88/hist/h00001.nc", 120 * MB, False,
        Device.TAPE_SHELF, when=9 * HOUR + 600,
    )

    system.run()

    print("\nwrites (nobody waits -- the Cray moves on):")
    for w in writes:
        print(f"  {w.path}: first byte after {format_duration(w.startup_latency)}, "
              f"done in {format_duration(w.response_time)}")

    print("\nmorning reads (a human is waiting):")
    for r in reads:
        mount = "mount" if r.mount_was_needed else "cartridge already mounted"
        print(f"  {r.path}: first byte after {format_duration(r.startup_latency)} "
              f"({mount}), served by {r.served_by}")

    print("\nshelf recall (operator fetches the cartridge):")
    print(f"  {recall.path}: first byte after "
          f"{format_duration(recall.startup_latency)} "
          f"(mount {format_duration(recall.mount_time)}, "
          f"seek {format_duration(recall.seek_time)})")

    silo = system.silo
    print(f"\nsilo cartridge-affinity hit ratio: {silo.mount_hit_ratio:.0%} "
          "(consecutive history files share cartridges)")


if __name__ == "__main__":
    main()
