"""Byte and time unit constants and conversion helpers.

The paper mixes units freely (MB for file sizes, GB for transfer volume,
seconds for startup latency, milliseconds for transfer time).  Everything in
this library is stored in *bytes* and *seconds*; these helpers exist so that
call sites read like the paper.
"""

from __future__ import annotations

KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

SECOND = 1.0
MINUTE = 60.0
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Length of one Cray word on the Y-MP (Section 3.1, footnote).
CRAY_WORD_BYTES = 8

#: Hard limit on MSS file size: "Files on the MSS are limited to 200 MB in
#: length, since a file cannot span multiple tapes." (Section 3.1)
MSS_FILE_SIZE_LIMIT = 200 * MB

#: Placement threshold: "The MSS tries to keep all files under 30 MB on the
#: 3090 disks, and immediately sends all files over 30 MB to tape."
DISK_PLACEMENT_THRESHOLD = 30 * MB


def bytes_to_mb(n: float) -> float:
    """Convert bytes to megabytes (decimal MB, as the paper uses)."""
    return n / MB


def bytes_to_gb(n: float) -> float:
    """Convert bytes to gigabytes."""
    return n / GB


def mb(n: float) -> int:
    """Express *n* megabytes in bytes."""
    return int(n * MB)


def gb(n: float) -> int:
    """Express *n* gigabytes in bytes."""
    return int(n * GB)


def format_bytes(n: float) -> str:
    """Render a byte count with an appropriate decimal unit suffix."""
    if n < 0:
        return "-" + format_bytes(-n)
    for limit, suffix in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= limit:
            return f"{n / limit:.2f} {suffix}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the most readable unit."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1000:.0f} ms"
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f} h"
    return f"{seconds / DAY:.1f} d"
