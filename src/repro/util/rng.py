"""Deterministic random-number plumbing.

Every stochastic component (workload synthesis, device latency sampling,
operator behaviour) takes an explicit ``numpy.random.Generator``.  To keep
independent subsystems reproducible regardless of how many draws each makes,
we derive child generators from a root seed by *name* rather than sharing a
single stream.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

import numpy as np

DEFAULT_SEED = 19931025  # USENIX Winter 1993 submission vintage.


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Root generator for a run; ``None`` uses the library default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def child_rng(seed: int, name: str) -> np.random.Generator:
    """Generator for a named subsystem, independent of sibling streams.

    Hashing (seed, name) means adding a new consumer never perturbs the
    draws seen by existing consumers -- experiments stay comparable across
    library versions.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(child_seed)


def component_child_seeds(root_seed: int, names: Iterable[str]) -> Dict[str, int]:
    """Stable per-component child seeds for a multi-component workload.

    Spawns one :class:`numpy.random.SeedSequence` child per component and
    folds each into a plain integer seed (usable as ``WorkloadConfig.seed``
    and as a store cache key).  Children are assigned to components in
    *sorted-name* order, so the seed a component receives depends only on
    the root seed and the set of names -- never on the order components
    happen to be listed in a spec.
    """
    ordered = sorted(names)
    if len(set(ordered)) != len(ordered):
        raise ValueError(f"component names must be unique: {ordered}")
    children = np.random.SeedSequence(root_seed).spawn(len(ordered))
    return {
        name: int(child.generate_state(1, np.uint32)[0])
        for name, child in zip(ordered, children)
    }


class SeedSequenceFactory:
    """Hands out named child generators derived from one root seed."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = DEFAULT_SEED if seed is None else int(seed)

    def named(self, name: str) -> np.random.Generator:
        """Child generator dedicated to the given subsystem name."""
        return child_rng(self.seed, name)
