"""Statistics primitives used across the analysis suite.

The paper reports almost everything as a cumulative distribution (Figures 3,
7, 8, 9, 10, 11, 12) or as a mean broken down by category (Table 3).  These
helpers keep the figure-reproduction code short and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CDF:
    """An empirical cumulative distribution over scalar values.

    ``values`` are the sorted distinct sample points and ``fractions`` the
    cumulative probability at each point (``P(X <= value)``).  A weighted CDF
    (for the paper's "data read"/"data written" curves) weights each sample
    by e.g. its byte count.
    """

    values: np.ndarray
    fractions: np.ndarray

    @staticmethod
    def from_samples(
        samples: Sequence[float], weights: Optional[Sequence[float]] = None
    ) -> "CDF":
        """Build an empirical CDF, optionally weighting each sample."""
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        if weights is None:
            wts = np.ones_like(data)
        else:
            wts = np.asarray(list(weights), dtype=float)
            if wts.shape != data.shape:
                raise ValueError("weights must match samples in length")
            if np.any(wts < 0):
                raise ValueError("weights must be non-negative")
        order = np.argsort(data, kind="stable")
        data = data[order]
        wts = wts[order]
        total = wts.sum()
        if total <= 0:
            raise ValueError("total weight must be positive")
        # Collapse duplicate sample values so lookups are well defined.
        values, start_idx = np.unique(data, return_index=True)
        cum = np.cumsum(wts)
        # Cumulative weight at the *last* occurrence of each distinct value.
        end_idx = np.append(start_idx[1:], data.size) - 1
        fractions = cum[end_idx] / total
        return CDF(values=values, fractions=fractions)

    def fraction_at_or_below(self, x: float) -> float:
        """P(X <= x)."""
        idx = np.searchsorted(self.values, x, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.fractions[idx])

    def percentile(self, p: float) -> float:
        """Smallest value v with P(X <= v) >= p, for p in (0, 1]."""
        if not 0 < p <= 1:
            raise ValueError("percentile must be in (0, 1]")
        idx = int(np.searchsorted(self.fractions, p, side="left"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    def median(self) -> float:
        """The distribution median."""
        return self.percentile(0.5)

    def sample_points(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs, for rendering."""
        return list(zip(self.values.tolist(), self.fractions.tolist()))


@dataclass
class StreamingMoments:
    """Single-pass accumulator for count / mean / variance / extrema."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    total: float = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the moments (Welford update)."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations seen so far."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    @classmethod
    def from_values(cls, values: np.ndarray) -> "StreamingMoments":
        """Moments of a whole array in one numpy pass.

        The columnar accumulators build per-batch moments this way and
        fold them together with :meth:`merge`; the result matches
        element-wise :meth:`add` calls up to float rounding.
        """
        moments = cls()
        if values.size == 0:
            return moments
        moments.count = int(values.size)
        moments.total = float(values.sum())
        moments._mean = float(values.mean())
        moments._m2 = float(values.var() * values.size)
        moments.minimum = float(values.min())
        moments.maximum = float(values.max())
        return moments

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return self
        n = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self._mean += delta * other.count / n
        self.count = n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self


@dataclass
class Histogram:
    """Fixed-bin histogram with explicit edges; used for rate profiles."""

    edges: np.ndarray
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=float)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("histogram needs at least two bin edges")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("bin edges must be strictly increasing")
        nbins = self.edges.size - 1
        if self.counts is None:
            self.counts = np.zeros(nbins, dtype=float)
        if self.weights is None:
            self.weights = np.zeros(nbins, dtype=float)

    @property
    def nbins(self) -> int:
        """Number of bins."""
        return self.edges.size - 1

    def bin_of(self, x: float) -> int:
        """Index of the bin containing x, clamping to the outer bins."""
        idx = int(np.searchsorted(self.edges, x, side="right")) - 1
        return max(0, min(idx, self.nbins - 1))

    def add(self, x: float, weight: float = 1.0) -> None:
        """Count an observation, accumulating an optional weight."""
        idx = self.bin_of(x)
        self.counts[idx] += 1
        self.weights[idx] += weight

    def density(self) -> np.ndarray:
        """Counts normalized to sum to one."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / total


def lognormal_params_from_mean_median(mean: float, median: float) -> Tuple[float, float]:
    """Derive (mu, sigma) of a lognormal with the given mean and median.

    For a lognormal, median = exp(mu) and mean = exp(mu + sigma^2 / 2), so
    sigma = sqrt(2 ln(mean / median)).  Requires mean > median > 0.
    """
    if median <= 0 or mean <= median:
        raise ValueError("need mean > median > 0 for a lognormal fit")
    mu = float(np.log(median))
    sigma = float(np.sqrt(2.0 * np.log(mean / median)))
    return mu, sigma


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf(-like) weights 1/k^skew for ranks k = 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skewed).

    Used to check that directory populations reproduce the paper's "5 % of
    the directories held 50 % of the files" concentration.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("gini of empty sample")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * arr) / (n * total)) - (n + 1) / n)


def top_fraction_share(values: Sequence[float], top_fraction: float) -> float:
    """Share of the total held by the top `top_fraction` of the samples.

    ``top_fraction_share(dir_sizes, 0.05)`` answers "what fraction of all
    files live in the largest 5 % of directories?" (Figure 12 caption).
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    arr = np.sort(np.asarray(list(values), dtype=float))[::-1]
    if arr.size == 0:
        raise ValueError("share of empty sample")
    k = max(1, int(round(top_fraction * arr.size)))
    total = arr.sum()
    if total == 0:
        return 0.0
    return float(arr[:k].sum() / total)


def autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Normalized autocorrelation of a series for lags 0..max_lag.

    Used by the periodicity analysis to confirm the abstract's one-day and
    one-week periods in the binned request-rate series.
    """
    arr = np.asarray(list(series), dtype=float)
    if arr.size < 2:
        raise ValueError("autocorrelation needs at least two points")
    if max_lag >= arr.size:
        raise ValueError("max_lag must be smaller than the series length")
    arr = arr - arr.mean()
    denom = float(np.dot(arr, arr))
    if denom == 0:
        return np.zeros(max_lag + 1)
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        if lag == 0:
            out[lag] = 1.0
        else:
            out[lag] = float(np.dot(arr[:-lag], arr[lag:])) / denom
    return out


def dominant_periods(
    series: Sequence[float], sample_spacing: float, top_k: int = 3
) -> List[Tuple[float, float]]:
    """Strongest periods in a uniformly sampled series via the FFT.

    Returns up to ``top_k`` (period_in_same_units_as_spacing, power) pairs
    sorted by descending spectral power, excluding the DC component.
    """
    arr = np.asarray(list(series), dtype=float)
    if arr.size < 4:
        raise ValueError("need at least 4 samples for a spectrum")
    arr = arr - arr.mean()
    spectrum = np.abs(np.fft.rfft(arr)) ** 2
    freqs = np.fft.rfftfreq(arr.size, d=sample_spacing)
    # Skip DC (freq 0); guard against zero-division.
    order = np.argsort(spectrum[1:])[::-1] + 1
    out: List[Tuple[float, float]] = []
    for idx in order[:top_k]:
        out.append((float(1.0 / freqs[idx]), float(spectrum[idx])))
    return out


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected|, tolerant of expected == 0."""
    if expected == 0:
        return abs(measured)
    return abs(measured - expected) / abs(expected)


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Small summary dict (count/mean/median/min/max/std) for reports."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "std": float(arr.std()),
    }
