"""Simulation calendar for the October 1990 -- September 1992 trace period.

The trace clock is plain seconds since the start of the trace.  The paper's
figures bin activity by hour of day (Figure 4), day of week (Figure 5) and
week of trace (Figure 6), and the read workload dips on US holidays
(Thanksgiving and Christmas 1990/1991, Section 5.2).  This module maps the
simulation clock onto that calendar without depending on the host timezone.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List, Tuple

from repro.util.units import DAY, HOUR, WEEK

#: First instant of the trace: midnight, Monday October 1st, 1990.
TRACE_EPOCH = _dt.datetime(1990, 10, 1, 0, 0, 0)

#: The trace covers 24 months, through September 30th, 1992 ("731 days",
#: Section 5.2.1 -- 1992 was a leap year).
TRACE_DAYS = 731
TRACE_SECONDS = TRACE_DAYS * DAY
TRACE_WEEKS = 104

# Day-of-week indices follow the paper's Figure 5 ("0 = Sunday").
SUNDAY, MONDAY, TUESDAY, WEDNESDAY, THURSDAY, FRIDAY, SATURDAY = range(7)
DAY_NAMES = ("Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat")


def _nth_weekday(year: int, month: int, weekday: int, n: int) -> _dt.date:
    """Return the *n*-th (1-based) given weekday of a month.

    ``weekday`` uses :mod:`datetime` convention (Monday=0).
    """
    date = _dt.date(year, month, 1)
    offset = (weekday - date.weekday()) % 7
    return date + _dt.timedelta(days=offset + 7 * (n - 1))


def _holidays_for_year(year: int) -> List[_dt.date]:
    """US holidays that empty the NCAR machine room of scientists."""
    thanksgiving = _nth_weekday(year, 11, 3, 4)  # 4th Thursday of November
    days = [
        _dt.date(year, 1, 1),                       # New Year's Day
        _dt.date(year, 1, 2),
        _dt.date(year, 7, 4),                       # Independence Day
        thanksgiving - _dt.timedelta(days=1),       # Thanksgiving Wednesday
        thanksgiving,
        thanksgiving + _dt.timedelta(days=1),       # day after Thanksgiving
    ]
    # Scientists disappear for the whole Christmas / New Year stretch.
    days.extend(_dt.date(year, 12, day) for day in range(22, 32))
    return days


#: All holiday dates falling inside the trace period.
TRACE_HOLIDAYS = frozenset(
    day
    for year in (1990, 1991, 1992)
    for day in _holidays_for_year(year)
    if TRACE_EPOCH.date() <= day <= (TRACE_EPOCH + _dt.timedelta(days=TRACE_DAYS)).date()
)


@dataclass(frozen=True)
class CalendarPoint:
    """Decomposition of one simulation instant onto the trace calendar."""

    sim_time: float
    datetime: _dt.datetime
    hour_of_day: int
    day_of_week: int          # 0 = Sunday, matching Figure 5
    day_of_trace: int
    week_of_trace: int
    is_weekend: bool
    is_holiday: bool


class TraceCalendar:
    """Maps simulation seconds to calendar features of the trace period."""

    def __init__(self, epoch: _dt.datetime = TRACE_EPOCH) -> None:
        self.epoch = epoch
        self._holidays = TRACE_HOLIDAYS

    def datetime_at(self, sim_time: float) -> _dt.datetime:
        """Wall-clock datetime for a simulation timestamp."""
        return self.epoch + _dt.timedelta(seconds=sim_time)

    def sim_time_of(self, when: _dt.datetime) -> float:
        """Simulation timestamp for a wall-clock datetime."""
        return (when - self.epoch).total_seconds()

    def hour_of_day(self, sim_time: float) -> int:
        """Hour of day in [0, 24), 0 = midnight (Figure 4 x-axis)."""
        return int((sim_time % DAY) // HOUR)

    def day_of_week(self, sim_time: float) -> int:
        """Day of week with 0 = Sunday (Figure 5 x-axis).

        The trace epoch (1990-10-01) is a Monday, so day 0 of the trace has
        day-of-week 1.
        """
        python_weekday = self.datetime_at(sim_time).weekday()  # Monday = 0
        return (python_weekday + 1) % 7

    def day_of_trace(self, sim_time: float) -> int:
        """Whole days elapsed since the trace epoch."""
        return int(sim_time // DAY)

    def week_of_trace(self, sim_time: float) -> int:
        """Whole weeks elapsed since the trace epoch (Figure 6 x-axis)."""
        return int(sim_time // WEEK)

    def is_weekend(self, sim_time: float) -> bool:
        """True on Saturday and Sunday."""
        return self.day_of_week(sim_time) in (SUNDAY, SATURDAY)

    def is_holiday(self, sim_time: float) -> bool:
        """True on holidays where interactive usage collapses."""
        return self.datetime_at(sim_time).date() in self._holidays

    def at(self, sim_time: float) -> CalendarPoint:
        """Full calendar decomposition of one instant."""
        return CalendarPoint(
            sim_time=sim_time,
            datetime=self.datetime_at(sim_time),
            hour_of_day=self.hour_of_day(sim_time),
            day_of_week=self.day_of_week(sim_time),
            day_of_trace=self.day_of_trace(sim_time),
            week_of_trace=self.week_of_trace(sim_time),
            is_weekend=self.is_weekend(sim_time),
            is_holiday=self.is_holiday(sim_time),
        )

    def holiday_weeks(self, min_days: int = 1) -> List[int]:
        """Trace-week indices containing at least ``min_days`` holidays.

        ``min_days=3`` selects the Thanksgiving and Christmas weeks whose
        dips Figure 6 points out, skipping single-day holidays.
        """
        counts: dict = {}
        for day in self._holidays:
            sim = (
                _dt.datetime(day.year, day.month, day.day) - self.epoch
            ).total_seconds()
            if 0 <= sim < TRACE_SECONDS:
                week = int(sim // WEEK)
                counts[week] = counts.get(week, 0) + 1
        return sorted(week for week, n in counts.items() if n >= min_days)

    def span_of_week(self, week: int) -> Tuple[float, float]:
        """Simulation-time [start, end) covered by a trace week."""
        return week * WEEK, (week + 1) * WEEK
