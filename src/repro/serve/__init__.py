"""Service layer: ``repro serve`` and its journaled replay sessions.

The offline engine replays finite traces; this package wraps the same
replay in a crash-recoverable HTTP service.  Three layers:

* :mod:`repro.serve.journal` -- per-session write-ahead journal
  (self-checking chunk frames + periodic state snapshots);
* :mod:`repro.serve.session` -- :class:`ReplaySession`, the resumable
  incremental replay, and :class:`JournaledSession`, which binds one to
  a journal directory with exact crash recovery;
* :mod:`repro.serve.service` / :mod:`repro.serve.client` -- the
  stdlib HTTP shell (bounded queues, backpressure, graceful drain) and
  its thin client.
"""

from repro.serve.journal import JournalError, SessionJournal
from repro.serve.session import (
    JournaledSession,
    ReplaySession,
    SequenceGap,
    SessionError,
    SessionSpec,
)
from repro.serve.service import (
    ReproService,
    ServeConfig,
    ServiceUnavailable,
    make_server,
    serve_forever,
)
from repro.serve.client import ServeClient, ServeClientError, ServeUnavailable

__all__ = [
    "JournalError",
    "JournaledSession",
    "ReplaySession",
    "ReproService",
    "SequenceGap",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeUnavailable",
    "ServiceUnavailable",
    "SessionError",
    "SessionJournal",
    "SessionSpec",
    "make_server",
    "serve_forever",
]
