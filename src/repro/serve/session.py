"""Resumable incremental HSM replay: the unit of work ``repro serve`` runs.

The batch engine (:mod:`repro.engine.replay`) replays *finite* streams:
prepare every chunk, replay, flush, report.  A service ingests an
unbounded stream instead, so :class:`ReplaySession` refactors the same
pipeline -- error strip, streaming dedupe, HSM cache replay, Table-3
tenant accounting -- into an object that is fed one
:class:`~repro.engine.batch.EventBatch` at a time and can report live
metrics (cumulative plus a rolling stream-time window) at any chunk
boundary.  Feeding the same chunks in the same order always produces the
same state, which is what makes journal-based crash recovery exact.

:class:`JournaledSession` binds a session to a directory: every chunk is
appended to the write-ahead journal *before* it is applied, state
snapshots land every N chunks, and :meth:`JournaledSession.open`
reconstructs the exact pre-crash state from snapshot + journal tail.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.accumulators import OverallAccumulator
from repro.engine.batch import EventBatch
from repro.engine.resilience import fault_point, write_json_atomic
from repro.engine.stream import BlockDeduper, EIGHT_HOURS
from repro.hsm.manager import HSM, HSMConfig
from repro.serve.journal import SessionJournal
from repro.trace.record import Device
from repro.util.units import DAY, HOUR
from repro.verify.invariants import (
    HSMInvariantChecker,
    check_journal_recovery,
    invariant_context,
    invariants_enabled,
)

SESSION_META_NAME = "session.json"

#: session.json format marker.
SESSION_MAGIC = "repro-serve-session"


class SessionError(RuntimeError):
    """A session request that cannot be honored (bad spec, bad feed)."""


class SequenceGap(SessionError):
    """A fed chunk skipped ahead of the next expected sequence number."""


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines a session's replay behavior.

    JSON round-trippable: persisted as ``session.json`` in the session
    directory so a restarted server can rebuild the session without the
    submitting client.
    """

    name: str
    policy: str = "lru"
    capacity_bytes: int = 512 * 1024 * 1024
    writeback_delay: Optional[float] = 4 * HOUR
    #: Apply the Section 5.3 eight-hour dedupe before replay (the sweep
    #: default); the raw stream still feeds the tenant Table-3 cells.
    deduped: bool = True
    #: Tenant labels in compositor rank order (``file_id % k`` maps an
    #: event to its tenant).  A single label attributes everything to it.
    labels: Tuple[str, ...] = ("all",)
    #: Rolling-window width in *stream* seconds for live rate metrics.
    window_seconds: float = 1 * DAY
    #: Seed for stochastic policies (ignored by deterministic ones).
    policy_seed: int = 0
    #: Submitted scenario spec (provenance only; the server never
    #: generates events -- clients stream them in).
    scenario: Optional[dict] = None

    def __post_init__(self) -> None:
        from repro.migration.registry import available_policies

        if not self.name:
            raise SessionError("session name must be non-empty")
        if self.policy == "opt":
            raise SessionError(
                "OPT needs the full future schedule and cannot replay "
                "an incremental stream; pick an online policy"
            )
        if self.policy not in available_policies():
            raise SessionError(
                f"unknown policy {self.policy!r}; "
                f"choose from {sorted(available_policies())}"
            )
        if self.capacity_bytes <= 0:
            raise SessionError("capacity_bytes must be positive")
        if not self.labels:
            raise SessionError("need at least one tenant label")
        if self.window_seconds <= 0:
            raise SessionError("window_seconds must be positive")

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["labels"] = list(self.labels)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if "labels" in kwargs:
            kwargs["labels"] = tuple(kwargs["labels"])
        return cls(**kwargs)


@dataclass
class _WindowEntry:
    """Per-chunk deltas for the rolling stream-time window."""

    end_time: float
    events: int
    reads: int
    read_misses: int
    bytes_moved: int


class RollingWindow:
    """Sliding stream-time window over per-chunk replay deltas.

    Holds one entry per applied chunk and drops entries older than the
    window, so live metrics report *recent* traffic (event rate, miss
    ratio over the last day) instead of the all-time cumulative view.
    Entirely driven by stream time: deterministic, replayable, and
    independent of ingest wall-clock.
    """

    def __init__(self, window_seconds: float) -> None:
        self.window_seconds = window_seconds
        self._entries: Deque[_WindowEntry] = deque()

    def push(self, entry: _WindowEntry) -> None:
        self._entries.append(entry)
        cutoff = entry.end_time - self.window_seconds
        while self._entries and self._entries[0].end_time <= cutoff:
            self._entries.popleft()

    def summary(self) -> dict:
        entries = self._entries
        events = sum(entry.events for entry in entries)
        reads = sum(entry.reads for entry in entries)
        misses = sum(entry.read_misses for entry in entries)
        moved = sum(entry.bytes_moved for entry in entries)
        span = (
            min(
                self.window_seconds,
                entries[-1].end_time - entries[0].end_time,
            )
            if len(entries) > 1
            else self.window_seconds
        )
        span = max(span, 1e-9)
        return {
            "seconds": self.window_seconds,
            "chunks": len(entries),
            "events": events,
            "reads": reads,
            "read_misses": misses,
            "miss_ratio": (misses / reads) if reads else 0.0,
            "bytes_moved": moved,
            "events_per_stream_hour": events / (span / HOUR),
        }


class ReplaySession:
    """Incremental HSM replay with live cumulative + windowed metrics.

    Deterministic: state after ``feed(c_0), ..., feed(c_n)`` depends
    only on the spec and the chunk contents, never on wall-clock or
    ingest pacing -- the property the crash-recovery tests pin.
    """

    def __init__(self, spec: SessionSpec) -> None:
        from repro.migration.registry import make_policy

        self.spec = spec
        self.hsm = HSM(
            HSMConfig.with_capacity(
                spec.capacity_bytes, writeback_delay=spec.writeback_delay
            ),
            make_policy(spec.policy, seed=spec.policy_seed),
        )
        self.deduper = BlockDeduper(EIGHT_HOURS) if spec.deduped else None
        self.accumulators: List[OverallAccumulator] = [
            OverallAccumulator() for _ in spec.labels
        ]
        self.window = RollingWindow(spec.window_seconds)
        self.applied_chunks = 0
        self.events_ingested = 0
        self.events_replayed = 0
        self.last_time: Optional[float] = None
        self.finalized = False

    # ------------------------------------------------------------------
    # Ingest

    def feed(self, batch: EventBatch) -> dict:
        """Apply one chunk; returns the per-chunk ack payload."""
        if self.finalized:
            raise SessionError("session is finalized; no further chunks")
        n = len(batch)
        if n:
            if np.any(np.diff(batch.time) < 0):
                raise SessionError("chunk times must be nondecreasing")
            start = float(batch.time[0])
            if self.last_time is not None and start < self.last_time:
                raise SessionError(
                    f"chunk starts at t={start:.3f}, before the stream "
                    f"tail t={self.last_time:.3f}; chunks must arrive "
                    "in time order"
                )
        metrics = self.hsm.metrics
        reads_before = metrics.reads
        misses_before = metrics.read_misses
        moved_before = metrics.bytes_staged + metrics.bytes_written
        replayed = 0
        if n:
            self._account_tenants(batch)
            replayed = self._replay(batch)
            self.last_time = float(batch.time[-1])
            self.window.push(_WindowEntry(
                end_time=self.last_time,
                events=n,
                reads=metrics.reads - reads_before,
                read_misses=metrics.read_misses - misses_before,
                bytes_moved=(metrics.bytes_staged + metrics.bytes_written)
                - moved_before,
            ))
        self.applied_chunks += 1
        self.events_ingested += n
        self.events_replayed += replayed
        return {
            "seq": self.applied_chunks - 1,
            "events": n,
            "replayed": replayed,
            "applied_chunks": self.applied_chunks,
        }

    def _account_tenants(self, batch: EventBatch) -> None:
        """Fold the *raw* chunk into the per-tenant Table-3 cells."""
        k = len(self.spec.labels)
        if k == 1:
            self.accumulators[0].add(batch)
            return
        ranks = batch.file_id % k
        for rank in range(k):
            part = batch.select(ranks == rank)
            if len(part):
                self.accumulators[rank].add(part)

    def _replay(self, batch: EventBatch) -> int:
        """Error-strip, dedupe, clamp, and push one chunk through the HSM."""
        good = batch.good()
        if self.deduper is not None and len(good):
            good = self.deduper.apply(good)
        if not len(good):
            return 0
        sizes = np.maximum(good.size, 1)
        # The checker is created per chunk (never pickled into snapshots):
        # its construction snapshots the counters, so the delta laws see
        # exactly this chunk's contribution.
        checker = (
            HSMInvariantChecker(
                self.hsm.cache,
                site=f"serve.session:{self.spec.name}",
                deep_every=1,
            )
            if invariants_enabled()
            else None
        )
        self.hsm.cache.access_batch(
            good.file_id.tolist(),
            sizes.tolist(),
            good.time.tolist(),
            good.is_write.tolist(),
        )
        if checker is not None:
            with self._invariant_context():
                checker.after_batch(dataclasses.replace(good, size=sizes))
        return len(good)

    def _invariant_context(self):
        return invariant_context(
            engine="session", session=self.spec.name,
            policy=self.spec.policy,
            capacity_bytes=self.spec.capacity_bytes,
            writeback_delay=self.spec.writeback_delay,
            applied_chunks=self.applied_chunks,
        )

    def finalize(self) -> dict:
        """Flush the write-back queue and seal the session."""
        if not self.finalized:
            self.hsm.cache.flush_all()
            self.finalized = True
            if invariants_enabled():
                with self._invariant_context():
                    HSMInvariantChecker(self.hsm.cache).finalize()
        return self.metrics()

    # ------------------------------------------------------------------
    # Metrics

    def metrics(self) -> dict:
        """The live (or final) metrics document, JSON-ready."""
        hsm = dataclasses.asdict(self.hsm.metrics)
        hsm.update(
            read_miss_ratio=self.hsm.metrics.read_miss_ratio,
            read_hit_ratio=self.hsm.metrics.read_hit_ratio,
            capacity_miss_ratio=self.hsm.metrics.capacity_miss_ratio,
            person_minutes_per_day=self.hsm.metrics.person_minutes_per_day(),
            usage_bytes=self.hsm.cache.usage_bytes,
            resident_files=self.hsm.cache.resident_files,
        )
        return {
            "name": self.spec.name,
            "policy": self.spec.policy,
            "capacity_bytes": self.spec.capacity_bytes,
            "applied_chunks": self.applied_chunks,
            "events_ingested": self.events_ingested,
            "events_replayed": self.events_replayed,
            "last_time": self.last_time,
            "finalized": self.finalized,
            "hsm": hsm,
            "window": self.window.summary(),
            "tenants": {
                label: _tenant_summary(accumulator)
                for label, accumulator in zip(self.spec.labels, self.accumulators)
            },
        }

    def status(self) -> dict:
        """The cheap status document (no tenant statistics folding)."""
        return {
            "name": self.spec.name,
            "policy": self.spec.policy,
            "applied_chunks": self.applied_chunks,
            "events_ingested": self.events_ingested,
            "last_time": self.last_time,
            "finalized": self.finalized,
        }


def _tenant_summary(accumulator: OverallAccumulator) -> dict:
    """One tenant's Table-3 cells as a flat JSON dict."""
    stats = accumulator.statistics()
    total = stats.grand_total()
    reads = stats.direction_total(False)
    refs = max(total.references, 1)
    return {
        "references": total.references,
        "read_share": reads.references / refs,
        "gb_moved": total.gb_transferred,
        "avg_file_mb": total.avg_file_size_mb,
        "device_shares": {
            device.name.lower(): stats.device_total(device).references / refs
            for device in Device.storage_devices()
        },
        "error_fraction": stats.error_fraction,
    }


# ---------------------------------------------------------------------------
# Journaled sessions


class JournaledSession:
    """A :class:`ReplaySession` bound to a write-ahead-journaled directory.

    Layout::

        <dir>/
          session.json            # the SessionSpec (rebuild without client)
          journal.bin             # append-only chunk frames
          snapshot-<n>.pkl        # periodic pickled session state

    The WAL discipline: a chunk is journaled (fsynced) *before* it is
    applied, so every acked chunk survives a SIGKILL; recovery loads the
    newest snapshot and replays the journal tail through the exact same
    ``feed`` path, reproducing the pre-crash state bit for bit.  A chunk
    whose append was torn by the crash was never acked -- the journal is
    repaired (truncated to the last intact frame) and the client
    re-sends it.
    """

    def __init__(
        self,
        session_dir: Union[str, Path],
        spec: SessionSpec,
        session: ReplaySession,
        snapshot_every: int = 16,
    ) -> None:
        self.session_dir = Path(session_dir)
        self.spec = spec
        self.session = session
        self.snapshot_every = max(int(snapshot_every), 1)
        self.journal = SessionJournal(self.session_dir)

    # ------------------------------------------------------------------
    # Lifecycle

    @classmethod
    def create(
        cls,
        session_dir: Union[str, Path],
        spec: SessionSpec,
        snapshot_every: int = 16,
    ) -> "JournaledSession":
        """Create a fresh journaled session directory."""
        session_dir = Path(session_dir)
        if (session_dir / SESSION_META_NAME).exists():
            raise SessionError(f"session directory already exists: {session_dir}")
        session_dir.mkdir(parents=True, exist_ok=True)
        write_json_atomic(session_dir / SESSION_META_NAME, {
            "format": SESSION_MAGIC,
            "snapshot_every": snapshot_every,
            "spec": spec.to_dict(),
        })
        return cls(session_dir, spec, ReplaySession(spec), snapshot_every)

    @classmethod
    def open(cls, session_dir: Union[str, Path]) -> "JournaledSession":
        """Recover a session from its directory (the restart path).

        Repairs a torn journal tail, restores the newest loadable
        snapshot (or the empty state), and re-applies every journal
        frame past it.
        """
        import json as _json

        session_dir = Path(session_dir)
        meta_path = session_dir / SESSION_META_NAME
        try:
            meta = _json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SessionError(f"unreadable session meta {meta_path}: {exc}")
        if not isinstance(meta, dict) or meta.get("format") != SESSION_MAGIC:
            raise SessionError(f"not a session directory: {session_dir}")
        spec = SessionSpec.from_dict(meta.get("spec", {}))
        snapshot_every = int(meta.get("snapshot_every", 16))

        journaled = cls.__new__(cls)
        journaled.session_dir = session_dir
        journaled.spec = spec
        journaled.snapshot_every = max(snapshot_every, 1)
        journaled.journal = SessionJournal(session_dir)
        journaled.journal.repair()

        applied, state = journaled.journal.load_snapshot()
        if state is None:
            session = ReplaySession(spec)
            applied = 0
        else:
            session = state
        # Replay the journal tail through the production feed path: the
        # recovered state is *computed*, not copied, so it is exactly
        # what an uninterrupted server would hold.
        for batch in journaled.journal.replay(skip=applied):
            session.feed(batch)
        journaled.session = session
        if invariants_enabled():
            check_journal_recovery(
                spec.name, applied, journaled.journal.frame_count(),
                session.applied_chunks,
            )
        return journaled

    def close(self) -> None:
        """Snapshot current state and release the journal handle."""
        self.journal.write_snapshot(self.session.applied_chunks, self.session)
        self.journal.close()

    # ------------------------------------------------------------------
    # Ingest

    @property
    def next_seq(self) -> int:
        """The sequence number the next new chunk must carry."""
        return self.session.applied_chunks

    def feed(self, batch: EventBatch, seq: Optional[int] = None) -> dict:
        """Durably ingest one chunk (idempotent by sequence number).

        ``seq`` < the applied count means the client re-sent a chunk the
        server already owns (its ack was lost in a crash): acknowledged
        as a duplicate without re-applying.  A gap is an error -- the
        client must re-sync from :attr:`next_seq`.
        """
        expected = self.next_seq
        if seq is None:
            seq = expected
        if seq < expected:
            return {"seq": seq, "duplicate": True, "applied_chunks": expected}
        if seq > expected:
            raise SequenceGap(
                f"chunk seq {seq} skips ahead; next expected seq is {expected}"
            )
        label = f"{self.spec.name}:{seq}"
        fault_point("serve-ingest", label)
        self.journal.append(batch)
        # Crash window under test: the chunk is durable but unapplied;
        # recovery must apply it from the journal.
        fault_point("serve-journal", label)
        ack = self.session.feed(batch)
        fault_point("serve-applied", label)
        if self.session.applied_chunks % self.snapshot_every == 0:
            self.journal.write_snapshot(
                self.session.applied_chunks, self.session
            )
        ack["duplicate"] = False
        return ack

    def finalize(self) -> dict:
        """Flush, seal, snapshot, and return the final metrics."""
        final = self.session.finalize()
        self.close()
        return final
