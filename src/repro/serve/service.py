"""The ``repro serve`` HTTP/JSON service: journaled sessions behind
bounded queues.

Stdlib only (:mod:`http.server` / ``ThreadingHTTPServer``).  Each
session gets one worker thread that owns its
:class:`~repro.serve.session.JournaledSession` -- journal appends and
HSM replay are strictly serialized per session -- fed through a bounded
queue.  The HTTP layer never touches session state directly; it
enqueues work items and waits (with a deadline) for the worker's answer.

Robustness policy, in the order requests feel it:

* **Backpressure**: a full ingest queue answers ``429`` with
  ``Retry-After`` -- the chunk was *not* admitted and must be re-sent.
  A chunk that is admitted but not applied within the request timeout
  answers ``503``; it will still be applied, and the client's
  sequence-numbered re-send collapses into a duplicate ack.
* **Load shedding**: metrics polls are refused (``503`` +
  ``Retry-After``) as soon as a session's backlog crosses the shed
  threshold -- *before* ingest is refused, so observers degrade first
  and writers keep their queue room.
* **Graceful drain**: SIGTERM flips the service to draining (``/readyz``
  and ingest answer ``503``), lets every queue empty, snapshots and
  closes every journal, and writes ``shutdown_summary.json`` with
  ``clean: true`` -- the orchestrator's signal that nothing was lost.
* **Crash recovery**: startup re-opens every session directory under
  the data dir (snapshot + journal tail), so a SIGKILLed server resumes
  exactly where the journals say it was.

Routes (all JSON)::

    GET  /healthz                        liveness
    GET  /readyz                         readiness (503 while draining)
    GET  /v1/sessions                    status of every session
    POST /v1/sessions                    create from a SessionSpec dict
    GET  /v1/sessions/<name>             one session's status
    POST /v1/sessions/<name>/events      feed one chunk (seq + payload)
    GET  /v1/sessions/<name>/metrics     live Table-3/tenant metrics
    POST /v1/sessions/<name>/finalize    flush writebacks, seal, report
"""

from __future__ import annotations

import base64
import json
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.batch import EventBatch
from repro.engine.resilience import write_json_atomic
from repro.serve.journal import decode_batch
from repro.serve.session import (
    JournaledSession,
    SequenceGap,
    SessionError,
    SessionSpec,
    SESSION_META_NAME,
)

SHUTDOWN_SUMMARY_NAME = "shutdown_summary.json"
ENDPOINT_NAME = "serve.json"

#: Suggested client wait (seconds) on 429/503, sent as ``Retry-After``.
RETRY_AFTER_SECONDS = 1


@dataclass(frozen=True)
class ServeConfig:
    """Service tuning knobs (all bounded-by-default)."""

    host: str = "127.0.0.1"
    port: int = 0
    data_dir: Union[str, Path] = "serve-data"
    #: Chunks a session's ingest queue holds before 429ing new feeds.
    queue_depth: int = 8
    #: Queue backlog at which metrics polls are shed with 503.
    shed_backlog: int = 4
    #: Seconds an HTTP request waits for its worker before 503ing.
    request_timeout: float = 30.0
    #: Snapshot the session state every N applied chunks.
    snapshot_every: int = 16
    #: Seconds the drain waits for each worker to empty its queue.
    drain_timeout: float = 30.0


class ServiceUnavailable(SessionError):
    """Request refused for capacity reasons (maps to 429/503)."""

    def __init__(self, message: str, status: int = 503) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _WorkItem:
    """One unit of session work, answered through an event."""

    kind: str  # "feed" | "finalize" | "metrics"
    seq: Optional[int] = None
    batch: Optional[EventBatch] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[dict] = None
    error: Optional[BaseException] = None

    def finish(self, result: Optional[dict] = None,
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()

    def wait(self, timeout: float) -> dict:
        if not self.done.wait(timeout):
            raise ServiceUnavailable(
                "request admitted but not applied within the deadline; "
                "re-send (the sequence number makes it idempotent)",
                status=503,
            )
        if self.error is not None:
            raise self.error
        return self.result or {}


class _SessionWorker:
    """One thread owning one journaled session + its bounded queue."""

    def __init__(self, journaled: JournaledSession, config: ServeConfig) -> None:
        self.journaled = journaled
        self.config = config
        self.queue: "queue.Queue[_WorkItem]" = queue.Queue(
            maxsize=max(config.queue_depth, 1)
        )
        self.thread = threading.Thread(
            target=self._loop,
            name=f"session-{journaled.spec.name}",
            daemon=True,
        )
        self.thread.start()

    # -- worker side --------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item.kind == "stop":
                self.queue.task_done()
                break
            try:
                if item.kind == "feed":
                    item.finish(self.journaled.feed(item.batch, item.seq))
                elif item.kind == "finalize":
                    item.finish(self.journaled.finalize())
                elif item.kind == "metrics":
                    item.finish(self.journaled.session.metrics())
                else:  # pragma: no cover - internal misuse
                    item.finish(error=SessionError(f"bad work kind {item.kind}"))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                item.finish(error=exc)
            finally:
                self.queue.task_done()

    # -- caller side --------------------------------------------------------

    @property
    def backlog(self) -> int:
        return self.queue.qsize()

    def submit(self, item: _WorkItem) -> _WorkItem:
        """Enqueue without blocking; full queue = backpressure."""
        try:
            self.queue.put_nowait(item)
        except queue.Full:
            raise ServiceUnavailable(
                f"session {self.journaled.spec.name!r} ingest queue is "
                f"full ({self.config.queue_depth} chunks)",
                status=429,
            )
        return item

    def drain(self, timeout: float) -> bool:
        """Stop the worker after its queue empties; True if it joined."""
        try:
            self.queue.put(_WorkItem(kind="stop"), timeout=timeout)
        except queue.Full:
            return False
        self.thread.join(timeout)
        return not self.thread.is_alive()


def batch_from_payload(payload: dict) -> EventBatch:
    """Decode one chunk from a feed request body.

    Two encodings: ``npz_b64`` (base64 of the journal's ``.npz`` frame
    payload -- exact dtypes, what the client module sends) or plain JSON
    ``columns`` lists (curl-friendly).
    """
    encoded = payload.get("npz_b64")
    if encoded is not None:
        try:
            return decode_batch(base64.b64decode(encoded))
        except Exception as exc:
            raise SessionError(f"undecodable npz chunk: {exc}")
    columns = payload.get("columns")
    if not isinstance(columns, dict):
        raise SessionError("feed body needs 'npz_b64' or 'columns'")
    try:
        required = {
            name: columns[name]
            for name in ("file_id", "size", "time", "is_write")
        }
    except KeyError as exc:
        raise SessionError(f"columns missing {exc.args[0]!r}")
    optional = {
        name: columns[name]
        for name in ("device", "error", "user", "latency", "transfer")
        if columns.get(name) is not None
    }
    try:
        return EventBatch.from_columns(**required, **optional)
    except (TypeError, ValueError) as exc:
        raise SessionError(f"bad columns: {exc}")


class ReproService:
    """Session registry + request methods, independent of HTTP plumbing.

    Every public ``handle_*`` method returns ``(status, payload,
    headers)``; the HTTP handler is a thin shell around them, which is
    also what makes the service unit-testable without sockets.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.workers: Dict[str, _SessionWorker] = {}
        self._lock = threading.Lock()
        self.draining = False
        self.started_at = time.time()
        self.recovered = self._recover_sessions()

    # ------------------------------------------------------------------
    # Startup recovery

    def _recover_sessions(self) -> List[str]:
        """Re-open every session directory left by a previous process."""
        recovered = []
        for path in sorted(self.data_dir.iterdir()):
            if not (path / SESSION_META_NAME).is_file():
                continue
            journaled = JournaledSession.open(path)
            self.workers[journaled.spec.name] = _SessionWorker(
                journaled, self.config
            )
            recovered.append(journaled.spec.name)
        # A restart invalidates any previous shutdown summary.
        stale = self.data_dir / SHUTDOWN_SUMMARY_NAME
        if stale.is_file():
            stale.unlink()
        return recovered

    def _worker(self, name: str) -> _SessionWorker:
        with self._lock:
            worker = self.workers.get(name)
        if worker is None:
            raise KeyError(name)
        return worker

    # ------------------------------------------------------------------
    # Request methods

    def handle_healthz(self) -> Tuple[int, dict, dict]:
        return 200, {"status": "ok", "uptime": time.time() - self.started_at}, {}

    def handle_readyz(self) -> Tuple[int, dict, dict]:
        if self.draining:
            return 503, {"status": "draining"}, _retry_after()
        return 200, {"status": "ready", "sessions": len(self.workers)}, {}

    def handle_list(self) -> Tuple[int, dict, dict]:
        with self._lock:
            workers = dict(self.workers)
        return 200, {
            "sessions": [
                {
                    **worker.journaled.session.status(),
                    "next_seq": worker.journaled.next_seq,
                    "backlog": worker.backlog,
                }
                for worker in workers.values()
            ],
        }, {}

    def handle_create(self, payload: dict) -> Tuple[int, dict, dict]:
        if self.draining:
            return 503, {"error": "draining"}, _retry_after()
        spec = SessionSpec.from_dict(payload)
        with self._lock:
            if spec.name in self.workers:
                return 409, {"error": f"session {spec.name!r} exists"}, {}
            journaled = JournaledSession.create(
                self.data_dir / spec.name, spec,
                snapshot_every=self.config.snapshot_every,
            )
            self.workers[spec.name] = _SessionWorker(journaled, self.config)
        return 201, {"session": spec.name, "next_seq": 0}, {}

    def handle_status(self, name: str) -> Tuple[int, dict, dict]:
        worker = self._worker(name)
        return 200, {
            **worker.journaled.session.status(),
            "next_seq": worker.journaled.next_seq,
            "backlog": worker.backlog,
        }, {}

    def handle_feed(self, name: str, payload: dict) -> Tuple[int, dict, dict]:
        if self.draining:
            return 503, {"error": "draining; chunk not admitted"}, _retry_after()
        worker = self._worker(name)
        batch = batch_from_payload(payload)
        seq = payload.get("seq")
        if seq is not None:
            seq = int(seq)
        item = worker.submit(_WorkItem(kind="feed", seq=seq, batch=batch))
        ack = item.wait(self.config.request_timeout)
        return 200, ack, {}

    def handle_metrics(self, name: str) -> Tuple[int, dict, dict]:
        worker = self._worker(name)
        # Shed observers before writers: a backlogged session spends its
        # cycles on ingest, not on metrics polls.
        if worker.backlog >= self.config.shed_backlog:
            raise ServiceUnavailable(
                f"session {name!r} is backlogged "
                f"({worker.backlog} chunks queued); metrics shed",
                status=503,
            )
        item = worker.submit(_WorkItem(kind="metrics"))
        return 200, item.wait(self.config.request_timeout), {}

    def handle_finalize(self, name: str) -> Tuple[int, dict, dict]:
        worker = self._worker(name)
        item = worker.submit(_WorkItem(kind="finalize"))
        return 200, item.wait(self.config.request_timeout), {}

    # ------------------------------------------------------------------
    # Drain

    def drain(self) -> dict:
        """Stop accepting, flush every session, write the shutdown summary.

        Idempotent; returns the summary payload.
        """
        self.draining = True
        sessions = {}
        clean = True
        with self._lock:
            workers = dict(self.workers)
        for name, worker in workers.items():
            joined = worker.drain(self.config.drain_timeout)
            clean = clean and joined
            try:
                worker.journaled.close()
            except Exception:  # pragma: no cover - best-effort close
                clean = False
            sessions[name] = {
                **worker.journaled.session.status(),
                "drained": joined,
            }
        summary = {
            "clean": clean,
            "sessions": sessions,
            "recovered_at_start": self.recovered,
            "written_at": time.time(),
        }
        write_json_atomic(self.data_dir / SHUTDOWN_SUMMARY_NAME, summary)
        return summary


def _retry_after(seconds: int = RETRY_AFTER_SECONDS) -> dict:
    return {"Retry-After": str(seconds)}


# ---------------------------------------------------------------------------
# HTTP shell


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shell: route, decode JSON, map errors to statuses."""

    service: ReproService  # set by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; the CLI prints the endpoint once

    def _send(self, status: int, payload: dict, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise SessionError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        try:
            status, payload, headers = self._route(method)
        except ServiceUnavailable as exc:
            status, payload, headers = exc.status, {"error": str(exc)}, _retry_after()
        except SequenceGap as exc:
            status, payload, headers = 409, {"error": str(exc)}, {}
        except KeyError as exc:
            status, payload, headers = (
                404, {"error": f"no such session: {exc.args[0]}"}, {}
            )
        except (SessionError, json.JSONDecodeError, ValueError) as exc:
            status, payload, headers = 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload, headers = 500, {"error": repr(exc)}, {}
        self._send(status, payload, headers)

    def _route(self, method: str) -> Tuple[int, dict, dict]:
        service = self.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [part for part in path.split("/") if part]
        if method == "GET" and path == "/healthz":
            return service.handle_healthz()
        if method == "GET" and path == "/readyz":
            return service.handle_readyz()
        if parts[:2] == ["v1", "sessions"]:
            if len(parts) == 2:
                if method == "GET":
                    return service.handle_list()
                if method == "POST":
                    return service.handle_create(self._read_json())
            elif len(parts) == 3 and method == "GET":
                return service.handle_status(parts[2])
            elif len(parts) == 4:
                name, action = parts[2], parts[3]
                if method == "POST" and action == "events":
                    return service.handle_feed(name, self._read_json())
                if method == "GET" and action == "metrics":
                    return service.handle_metrics(name)
                if method == "POST" and action == "finalize":
                    return service.handle_finalize(name)
        return 404, {"error": f"no route: {method} {path}"}, {}

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True


def make_server(config: ServeConfig) -> Tuple[ServeHTTPServer, ReproService]:
    """Bind the HTTP server (recovering sessions first); does not serve."""
    service = ReproService(config)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ServeHTTPServer((config.host, config.port), handler)
    # Record the live endpoint (port 0 resolves at bind time) so clients
    # and orchestrators can discover it from the data dir.
    write_json_atomic(service.data_dir / ENDPOINT_NAME, {
        "host": server.server_address[0],
        "port": server.server_address[1],
        "pid": os.getpid(),
        "started_at": service.started_at,
    })
    return server, service


def serve_forever(config: ServeConfig, *, ready: Optional[threading.Event] = None) -> dict:
    """Run the service until SIGTERM/SIGINT; returns the drain summary.

    The signal handler only *requests* shutdown (sets a flag and pokes
    ``server.shutdown`` from a helper thread); the actual drain --
    refuse new work, empty queues, snapshot and close journals, write
    ``shutdown_summary.json`` -- runs on the main thread after the
    accept loop exits.
    """
    server, service = make_server(config)
    stop_requested = threading.Event()

    def _request_stop(signum, frame) -> None:
        if stop_requested.is_set():
            return
        stop_requested.set()
        service.draining = True
        # server.shutdown() blocks until the serve loop exits, so it
        # must not run on the signal-handling (main) thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        if ready is not None:
            ready.set()
        server.serve_forever()
        return service.drain()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
