"""Per-session write-ahead journal: framed chunk log + state snapshots.

A live replay session must survive a SIGKILLed server bit-identically,
so every ingested chunk is made durable *before* it is applied:

* **Chunk journal** (``journal.bin``): an append-only sequence of
  self-checking frames, one per ingested :class:`EventBatch`.  Each
  frame is ``magic | payload-length | blake2b-digest | payload`` where
  the payload is the batch's columns in ``.npz`` form.  A crash can only
  tear the *tail* frame (the file is append-only and flushed+fsynced
  per chunk), and a torn or bit-rotted tail is detected by the length
  and digest checks: recovery replays every intact frame and truncates
  the debris, so the next append lands on a clean boundary.

* **State snapshots** (``snapshot-<applied>.pkl``): a pickled session
  state written atomically (temp file + ``os.replace``) every N chunks.
  Recovery loads the newest loadable snapshot and replays only the
  journal frames past it -- restart cost is bounded by the snapshot
  interval, not the session length.  The latest few snapshots are kept
  so a corrupt newest snapshot degrades to the previous one (and, in
  the worst case, to a full journal replay from the empty state).

Everything here is synchronous and file-based on purpose: the service
layer (:mod:`repro.serve.service`) serializes appends per session, and
recovery needs no coordination beyond reading the directory.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import re
import struct
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.engine.batch import EventBatch

#: Frame magic: rolls with any incompatible frame-layout change.
FRAME_MAGIC = b"RJC1"

#: Frame header: magic + uint64 payload length + 16-byte blake2b digest.
_HEADER = struct.Struct("<4sQ16s")

#: Number of state snapshots kept per session (newest first).
SNAPSHOTS_KEPT = 2

JOURNAL_NAME = "journal.bin"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{10})\.pkl$")

#: EventBatch columns a frame may carry, in write order.
_COLUMNS = (
    "file_id", "size", "time", "is_write", "device", "error",
    "user", "latency", "transfer",
)


class JournalError(RuntimeError):
    """A journal frame or snapshot failed its integrity checks."""


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=16).digest()


def encode_batch(batch: EventBatch) -> bytes:
    """One batch's columns as ``.npz`` bytes (the frame payload)."""
    columns = {
        name: column
        for name in _COLUMNS
        if (column := getattr(batch, name)) is not None
    }
    buffer = io.BytesIO()
    np.savez(buffer, **columns)
    return buffer.getvalue()


def decode_batch(payload: bytes) -> EventBatch:
    """Inverse of :func:`encode_batch`."""
    with np.load(io.BytesIO(payload)) as archive:
        columns = {name: archive[name] for name in archive.files}
    return EventBatch(**columns)


def write_bytes_atomic(path: Union[str, Path], payload: bytes) -> None:
    """Write a file atomically (temp + fsync + rename), crash-safe."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class SessionJournal:
    """The durable record of one session: chunk frames + snapshots."""

    def __init__(self, session_dir: Union[str, Path]) -> None:
        self.session_dir = Path(session_dir)
        self.session_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.session_dir / JOURNAL_NAME
        self._handle: Optional[io.BufferedWriter] = None

    # ------------------------------------------------------------------
    # Appending

    def _writer(self) -> io.BufferedWriter:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.journal_path, "ab")
        return self._handle

    def append(self, batch: EventBatch) -> int:
        """Durably append one chunk frame; returns its byte offset.

        The frame is flushed and fsynced before returning: once this
        call completes, the chunk survives a SIGKILL.
        """
        payload = encode_batch(batch)
        frame = _HEADER.pack(FRAME_MAGIC, len(payload), _digest(payload))
        handle = self._writer()
        offset = handle.tell()
        handle.write(frame)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
        return offset

    def close(self) -> None:
        """Release the append handle (recovery reopens on demand)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    # ------------------------------------------------------------------
    # Replay and repair

    def _scan(self) -> Tuple[List[Tuple[int, int]], int]:
        """Intact frames as (payload offset, length) + clean tail offset.

        Stops at the first torn or corrupt frame: a short header, a
        payload shorter than its declared length, or a digest mismatch
        all mark the end of the recoverable prefix.
        """
        frames: List[Tuple[int, int]] = []
        good_end = 0
        if not self.journal_path.is_file():
            return frames, good_end
        with open(self.journal_path, "rb") as handle:
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                magic, length, digest = _HEADER.unpack(header)
                if magic != FRAME_MAGIC:
                    break
                payload = handle.read(length)
                if len(payload) < length or _digest(payload) != digest:
                    break
                frames.append((good_end + _HEADER.size, length))
                good_end += _HEADER.size + length
        return frames, good_end

    def frame_count(self) -> int:
        """Number of intact frames currently in the journal."""
        return len(self._scan()[0])

    def replay(self, skip: int = 0) -> Iterator[EventBatch]:
        """Decode every intact frame past the first ``skip``, in order."""
        frames, _ = self._scan()
        if not frames[skip:]:
            return
        with open(self.journal_path, "rb") as handle:
            for offset, length in frames[skip:]:
                handle.seek(offset)
                yield decode_batch(handle.read(length))

    def repair(self) -> int:
        """Truncate torn tail bytes (if any); returns intact frame count.

        Called on recovery before the journal is appended to again, so a
        frame half-written by a killed server never corrupts the stream:
        the client that never got its ack re-sends the chunk and it is
        re-journaled cleanly.
        """
        frames, good_end = self._scan()
        if (
            self.journal_path.is_file()
            and self.journal_path.stat().st_size > good_end
        ):
            self.close()
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return len(frames)

    # ------------------------------------------------------------------
    # Snapshots

    def _snapshot_paths(self) -> List[Tuple[int, Path]]:
        """(applied count, path) for every snapshot file, newest first."""
        found = []
        for path in self.session_dir.iterdir():
            match = _SNAPSHOT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found, reverse=True)

    def write_snapshot(self, applied: int, state: Any) -> Path:
        """Persist the session state after ``applied`` chunks, atomically.

        The pickle stream is framed with its own digest so a bit-rotted
        snapshot is *detected* (and skipped) rather than silently
        restored.  Older snapshots beyond :data:`SNAPSHOTS_KEPT` are
        pruned.
        """
        payload = pickle.dumps(
            {"applied": applied, "state": state}, protocol=pickle.HIGHEST_PROTOCOL
        )
        path = self.session_dir / f"snapshot-{applied:010d}.pkl"
        write_bytes_atomic(path, _digest(payload) + payload)
        for _, stale in self._snapshot_paths()[SNAPSHOTS_KEPT:]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def load_snapshot(self) -> Tuple[int, Any]:
        """Newest loadable snapshot as ``(applied, state)``.

        Falls back to older snapshots when the newest fails its digest
        or unpickle, and to ``(0, None)`` when none is loadable -- the
        caller then replays the whole journal from the empty state.
        """
        for applied, path in self._snapshot_paths():
            try:
                raw = path.read_bytes()
                digest, payload = raw[:16], raw[16:]
                if _digest(payload) != digest:
                    raise JournalError(f"snapshot digest mismatch: {path.name}")
                record = pickle.loads(payload)
                if record.get("applied") != applied:
                    raise JournalError(f"snapshot header mismatch: {path.name}")
                return applied, record["state"]
            except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                    AttributeError, JournalError):
                continue
        return 0, None
