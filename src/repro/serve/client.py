"""Thin HTTP client for the ``repro serve`` service (stdlib urllib).

Feeding is where the robustness protocol lives, so
:meth:`ServeClient.feed_batches` implements the full client side of it:

* every chunk carries a **sequence number**, so a re-send of a chunk
  whose ack was lost (server crashed after journaling, connection
  dropped) collapses into a duplicate ack instead of double-applying;
* ``429``/``503`` answers are honored by sleeping ``Retry-After`` and
  re-sending the *same* chunk -- backpressure slows the client down, it
  never loses data;
* a connection error triggers a **re-sync**: the client asks the
  (restarted) server how many chunks it durably owns and resumes from
  exactly there.
"""

from __future__ import annotations

import base64
import json
import time
import urllib.error
import urllib.request
from typing import Iterable, Iterator, Optional, Tuple

from repro.engine.batch import EventBatch
from repro.serve.journal import encode_batch

#: Default ceiling on 429/503/reconnect retries per chunk.
DEFAULT_FEED_RETRIES = 50

#: Default connection-refused retries for one-shot requests (ping, the
#: initial feed re-sync): a restarting server has a window between
#: journal recovery and socket bind where connections are refused.
DEFAULT_CONNECT_RETRIES = 5

#: Base delay for the connection-retry backoff (doubles, capped).
DEFAULT_CONNECT_BACKOFF = 0.25

#: Ceiling on any single connection-retry sleep.
CONNECT_BACKOFF_CAP = 2.0


class ServeClientError(RuntimeError):
    """A request the server answered with a non-retryable error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeUnavailable(ServeClientError):
    """A retryable refusal (backpressure / draining / shedding)."""

    def __init__(self, status: int, message: str, retry_after: float) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class ServeClient:
    """One service endpoint; methods mirror the HTTP routes."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 timeout: float = 60.0,
                 connect_retries: int = DEFAULT_CONNECT_RETRIES,
                 connect_backoff: float = DEFAULT_CONNECT_BACKOFF) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff

    # ------------------------------------------------------------------
    # Plumbing

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = _error_detail(exc)
            if exc.code in (429, 503):
                raise ServeUnavailable(
                    exc.code, detail,
                    retry_after=float(exc.headers.get("Retry-After") or 1.0),
                )
            raise ServeClientError(exc.code, detail)

    def _with_reconnect(self, fn, *, retries: Optional[int] = None,
                        on_retry=None):
        """Run one request, retrying connection-level failures.

        Bounded exponential backoff on connection-refused / reset /
        timeout -- the restart window between a server's journal
        recovery and its socket bind no longer surfaces as a raw
        ``ConnectionError``.  HTTP-level errors (including 429/503
        backpressure) pass straight through: they already have their own
        protocol.  ``urllib.error.HTTPError`` never reaches the handler
        because :meth:`_request` converts it first.
        """
        budget = self.connect_retries if retries is None else retries
        attempt = 0
        while True:
            try:
                return fn()
            except ServeClientError:
                raise
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError):
                if attempt >= budget:
                    raise
                delay = min(
                    self.connect_backoff * (2.0 ** attempt),
                    CONNECT_BACKOFF_CAP,
                )
                if on_retry is not None:
                    on_retry("reconnect", -1, delay)
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # Routes

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        return self._request("GET", "/readyz")

    def ping(self, retries: Optional[int] = None) -> dict:
        """Health check that rides out a server restart window."""
        return self._with_reconnect(self.health, retries=retries)

    def list_sessions(self) -> list:
        return self._request("GET", "/v1/sessions")["sessions"]

    def submit(self, spec: dict) -> dict:
        """Create a session from a SessionSpec dict."""
        return self._request("POST", "/v1/sessions", spec)

    def status(self, name: str) -> dict:
        return self._request("GET", f"/v1/sessions/{name}")

    def metrics(self, name: str) -> dict:
        return self._request("GET", f"/v1/sessions/{name}/metrics")

    def finalize(self, name: str) -> dict:
        return self._request("POST", f"/v1/sessions/{name}/finalize")

    def feed(self, name: str, batch: EventBatch,
             seq: Optional[int] = None) -> dict:
        """Send one chunk (exact-dtype npz encoding); one attempt."""
        payload = {
            "npz_b64": base64.b64encode(encode_batch(batch)).decode("ascii"),
        }
        if seq is not None:
            payload["seq"] = seq
        return self._request("POST", f"/v1/sessions/{name}/events", payload)

    # ------------------------------------------------------------------
    # Robust streaming

    def next_seq(self, name: str) -> int:
        """How many chunks the server durably owns (the re-sync point)."""
        return int(self.status(name)["next_seq"])

    def feed_batches(
        self,
        name: str,
        batches: Iterable[EventBatch],
        *,
        start_seq: Optional[int] = None,
        max_retries: int = DEFAULT_FEED_RETRIES,
        on_retry=None,
    ) -> Tuple[int, int]:
        """Stream chunks with backpressure + crash re-sync handling.

        Returns ``(chunks_sent, events_sent)`` counting every chunk the
        server acknowledged (duplicates from re-sends count once).
        ``on_retry(reason, seq, delay)`` is called before each retry
        sleep -- the CLI uses it to narrate backpressure.
        """
        # The initial re-sync rides out a restarting server the same way
        # mid-stream reconnects do -- without it, feeding immediately
        # after a restart dies on the first connection-refused.
        if start_seq is None:
            seq = self._with_reconnect(
                lambda: self.next_seq(name), on_retry=on_retry
            )
        else:
            seq = start_seq
        sent_chunks = sent_events = 0
        iterator: Iterator[EventBatch] = iter(batches)
        for offset, batch in enumerate(iterator):
            chunk_seq = seq + offset
            retries = 0
            while True:
                try:
                    self.feed(name, batch, seq=chunk_seq)
                except ServeUnavailable as exc:
                    retries += 1
                    if retries > max_retries:
                        raise
                    if on_retry is not None:
                        on_retry("backpressure", chunk_seq, exc.retry_after)
                    time.sleep(exc.retry_after)
                    continue
                except (urllib.error.URLError, ConnectionError, TimeoutError):
                    # Server gone mid-chunk.  Wait for it to come back,
                    # then re-sync: if the crash landed after the journal
                    # append, the re-send acks as a duplicate.
                    retries += 1
                    if retries > max_retries:
                        raise
                    if on_retry is not None:
                        on_retry("reconnect", chunk_seq, 1.0)
                    time.sleep(1.0)
                    try:
                        owned = self.next_seq(name)
                    except (ServeClientError, urllib.error.URLError,
                            ConnectionError, TimeoutError):
                        continue  # still down; keep waiting
                    if owned > chunk_seq:
                        break  # this chunk survived the crash
                    continue
                break
            sent_chunks += 1
            sent_events += len(batch)
        return sent_chunks, sent_events


def _error_detail(exc: urllib.error.HTTPError) -> str:
    try:
        payload = json.loads(exc.read().decode("utf-8"))
        return str(payload.get("error", payload))
    except Exception:
        return exc.reason or "error"


def read_endpoint(data_dir) -> Tuple[str, int]:
    """The (host, port) a running server recorded in its data dir."""
    from pathlib import Path

    from repro.serve.service import ENDPOINT_NAME

    payload = json.loads(
        (Path(data_dir) / ENDPOINT_NAME).read_text(encoding="utf-8")
    )
    return str(payload["host"]), int(payload["port"])
