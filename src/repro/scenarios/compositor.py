"""Streaming multi-tenant composition of component event streams.

The :class:`ScenarioCompositor` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into one time-ordered
:class:`~repro.engine.batch.EventBatch` stream:

1. every component's stream is produced independently -- from the
   content-addressed trace store when a ``cache_dir`` is given (so a
   warm component is memory-mapped, never regenerated), else straight
   from the vectorized generator -- under its spec-derived child seed;
2. each component batch is transformed in place: the intensity envelope
   thins events, the window shifts times by ``start_day``, and file/user
   ids are remapped into non-colliding per-tenant id spaces;
3. the per-component streams are k-way merged by time, holding at most
   one in-flight batch per component, so memory stays bounded no matter
   how large the composed trace is.

**Id-remapping contract.**  With ``k`` components in canonical
(sorted-name) order, component rank ``r`` maps local id ``i`` to global
id ``i * k + r``.  The map is collision-free across tenants and
round-trippable with floor arithmetic -- ``rank = g % k``,
``local = g // k`` -- for negative ids too (the generator uses negative
file ids for NO_SUCH_FILE references), so any consumer can attribute
every composed event, including errors, to its tenant.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch
from repro.scenarios.spec import ComponentSpec, ScenarioSpec
from repro.util.rng import child_rng
from repro.util.units import DAY


def remap_ids(local: np.ndarray, rank: int, k: int) -> np.ndarray:
    """Local tenant ids -> non-colliding global ids (see module doc)."""
    return local * np.int64(k) + np.int64(rank)


def split_ids(global_ids: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Global ids -> (tenant rank, local id); inverse of :func:`remap_ids`."""
    ranks = global_ids % k
    return ranks, global_ids // k


def tenant_of(global_ids: np.ndarray, k: int) -> np.ndarray:
    """Tenant rank of each global id (works for negative error ids)."""
    return global_ids % k


class ScenarioCompositor:
    """Composes one scenario into a bounded-memory merged batch stream."""

    def __init__(
        self,
        spec: ScenarioSpec,
        cache_dir: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.spec = spec
        self.cache_dir = cache_dir
        self.chunk_size = chunk_size
        #: Tenant labels in rank order: ``labels[rank]`` names the tenant
        #: every ``global_id % k == rank`` event belongs to.
        self.labels: List[str] = spec.tenants
        self.k = len(self.labels)

    # ------------------------------------------------------------------
    # Component streams

    def component_store(self, name: str):
        """The cached component store (generating on a miss)."""
        from repro.engine.store import open_or_generate

        if self.cache_dir is None:
            raise ValueError("compositor has no cache_dir configured")
        return open_or_generate(
            self.spec.derived_config(name), self.cache_dir,
            chunk_size=self.chunk_size,
        )

    def referenced_bytes(self) -> int:
        """Total referenced-store bytes across components (needs a cache).

        The sum of each component store's recorded namespace size -- the
        denominator capacity sweeps scale against.
        """
        total = 0
        for name in self.labels:
            store_total = self.component_store(name).total_bytes
            if store_total is None:
                raise ValueError(f"component store for {name!r} lacks total_bytes")
            total += store_total
        return total

    def _component_batches(self, name: str) -> Iterator[EventBatch]:
        """One component's raw stream (store-backed when cached)."""
        if self.cache_dir is not None:
            return self.component_store(name).iter_batches(
                chunk_size=self.chunk_size
            )
        from repro.workload.generator import generate_batches

        return generate_batches(
            self.spec.derived_config(name), chunk_size=self.chunk_size
        )

    def _transformed(
        self, component: ComponentSpec, rank: int
    ) -> Iterator[EventBatch]:
        """Thinned, shifted, id-remapped view of one component stream."""
        envelope = component.envelope
        # The thinning stream is seeded per component (by derived seed),
        # independent of merge interleaving, and numpy Generators consume
        # uniform draws sequentially, so the kept set does not depend on
        # how the producer chunked the stream.
        rng = (
            None
            if envelope.is_constant
            else child_rng(self.spec.derived_config(component.name).seed, "envelope")
        )
        shift = component.start_day * DAY
        k = self.k
        for batch in self._component_batches(component.name):
            times = batch.time + shift if shift else batch.time
            if rng is not None and len(batch):
                # Thin on *scenario* time: the envelope declares wall-clock
                # hours of the composed trace, so a window opening at a
                # fractional start_day must not displace them.
                keep = rng.random(len(batch)) < envelope.acceptance(times)
                batch = batch.select(keep)
                times = times[keep]
            if not len(batch):
                continue
            yield EventBatch(
                file_id=remap_ids(batch.file_id, rank, k),
                size=batch.size,
                time=times,
                is_write=batch.is_write,
                device=batch.device,
                error=batch.error,
                user=None if batch.user is None else remap_ids(batch.user, rank, k),
                latency=batch.latency,
                transfer=batch.transfer,
            )

    # ------------------------------------------------------------------
    # The k-way merge

    def iter_batches(self) -> Iterator[EventBatch]:
        """The composed stream, globally time-ordered, one batch at a time.

        Each round takes ``t_cut`` = the earliest *last* event time among
        the components' in-flight batches, emits every event at or below
        it (merged with one stable sort), and refills only the component
        that defined the cut -- so at most one batch per component is
        ever resident, and each emitted batch starts no earlier than the
        previous one ended.
        """
        streams = [
            self._transformed(component, rank)
            for rank, component in enumerate(self.spec.ordered_components())
        ]
        heads: List[Optional[EventBatch]] = [None] * len(streams)
        live = list(range(len(streams)))
        while True:
            still_live = []
            for index in live:
                head = heads[index]
                while head is None or not len(head):
                    head = next(streams[index], None)
                    if head is None:
                        break
                heads[index] = head
                if head is not None:
                    still_live.append(index)
            live = still_live
            if not live:
                return
            t_cut = min(float(heads[index].time[-1]) for index in live)
            parts = []
            for index in live:
                head = heads[index]
                n = int(np.searchsorted(head.time, t_cut, side="right"))
                if n:
                    parts.append(head.slice(0, n))
                heads[index] = head.slice(n, len(head)) if n < len(head) else None
            merged = EventBatch.concat(parts)
            # Stable sort on time: ties keep canonical component order,
            # so the composed stream is deterministic and invariant to
            # how the spec happened to list its components.
            order = np.argsort(merged.time, kind="stable")
            yield merged.select(order)


def compose(
    spec: ScenarioSpec,
    cache_dir: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[EventBatch]:
    """Functional entry point: the composed stream of one spec."""
    return ScenarioCompositor(
        spec, cache_dir=cache_dir, chunk_size=chunk_size
    ).iter_batches()
