"""Scenario-level store caching: composed streams, content-addressed.

Per-*component* streams are cached by the regular
:func:`repro.engine.store.open_or_generate` machinery (keyed by each
component's derived :class:`WorkloadConfig`), so components shared
between scenarios -- or between runs of one scenario -- generate once.
This module adds the *composed* layer on top: a merged (optionally
HSM-prepared) stream persisted as an ordinary
:class:`~repro.engine.store.TraceStore` whose directory name and
manifest carry the spec's :meth:`~repro.scenarios.spec.ScenarioSpec.scenario_hash`
plus tenant metadata, so ``repro trace info`` can say which scenario a
store holds and whose events map to which tenant.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.engine.batch import DEFAULT_CHUNK_SIZE
from repro.engine.store import (
    MANIFEST_NAME,
    StoreError,
    TraceStore,
    quarantine_slot,
    write_locked_dir,
)
from repro.scenarios.compositor import ScenarioCompositor
from repro.scenarios.spec import ScenarioSpec

#: Store variants this module writes: the raw composed stream, and the
#: HSM-prepared (error-stripped, size-clamped, deduped) replay stream.
SCENARIO_VARIANTS = ("scenario", "scenario-hsm")


def scenario_meta(spec: ScenarioSpec) -> dict:
    """The manifest ``meta`` block describing one composed scenario."""
    compositor = ScenarioCompositor(spec)
    return {
        "scenario": {
            "name": spec.name,
            "hash": spec.scenario_hash(),
            "seed": spec.seed,
            "tenants": compositor.labels,
            "n_components": compositor.k,
        }
    }


def scenario_store_dir(
    cache_dir: Union[str, Path], spec: ScenarioSpec, variant: str = "scenario"
) -> Path:
    """Cache slot one (spec, variant) pair addresses."""
    if variant not in SCENARIO_VARIANTS:
        raise ValueError(
            f"unknown scenario store variant {variant!r}; "
            f"choose from {SCENARIO_VARIANTS}"
        )
    return Path(cache_dir) / f"{variant}-{spec.scenario_hash()}"


def open_scenario_store(
    spec: ScenarioSpec, cache_dir: Union[str, Path], variant: str = "scenario"
) -> Optional[TraceStore]:
    """The cached composed store for one spec, or None on a miss."""
    target = scenario_store_dir(cache_dir, spec, variant)
    if not (target / MANIFEST_NAME).is_file():
        return None
    try:
        store = TraceStore.open(target)
    except (StoreError, json.JSONDecodeError):
        return None
    meta = store.manifest.get("meta") or {}
    scenario = meta.get("scenario") or {}
    if scenario.get("hash") != spec.scenario_hash():
        return None
    return store


def compose_cached(
    spec: ScenarioSpec,
    cache_dir: Union[str, Path],
    variant: str = "scenario",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> TraceStore:
    """Cached composed store for one spec, composing and writing on a miss.

    Component streams come through the per-component store cache in the
    same ``cache_dir``, so a cold composed store still generates each
    component at most once -- and a later scenario reusing a component
    pays nothing for it.  ``variant="scenario-hsm"`` persists the
    HSM-prepared replay stream instead of the raw composed one.

    Self-healing like :func:`repro.engine.store.open_or_generate`: a hit
    with missing or truncated shards is quarantined and recomposed
    instead of crashing the consumer mid-read.
    """
    store = open_scenario_store(spec, cache_dir, variant)
    if store is not None:
        try:
            store.validate_light()
            return store
        except StoreError:
            quarantine_slot(store.path)

    compositor = ScenarioCompositor(
        spec, cache_dir=str(cache_dir), chunk_size=chunk_size
    )
    batches = compositor.iter_batches()
    if variant == "scenario-hsm":
        from repro.engine.stream import hsm_batches_from_stream

        batches = hsm_batches_from_stream(batches)
    target = scenario_store_dir(cache_dir, spec, variant)
    return write_locked_dir(
        Path(cache_dir),
        target,
        batches,
        variant=variant,
        total_bytes=compositor.referenced_bytes(),
        meta=scenario_meta(spec),
        reopen=lambda: open_scenario_store(spec, cache_dir, variant),
    )
