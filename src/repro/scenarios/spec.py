"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a plain dataclass (round-trippable through
JSON/YAML) naming a set of workload *components*.  Each
:class:`ComponentSpec` pairs a :class:`~repro.workload.config.WorkloadConfig`
variant with a tenant label, a user-population ``share``, a time window
(``start_day`` plus the workload's own duration) and an intensity
:class:`Envelope`.  Component identity is the *name*: derived seeds, id
remapping and cache keys all follow sorted-name order, so a spec means
the same scenario no matter how its components are listed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.util.rng import component_child_seeds
from repro.util.units import HOUR
from repro.workload.config import (
    BurstConfig,
    ErrorConfig,
    GapConfig,
    PlacementConfig,
    SessionConfig,
    WorkloadConfig,
)

#: Version of the scenario schema/composition semantics.  Part of every
#: scenario content hash: bump it when the compositor's output for a
#: fixed spec changes (thinning, remapping, merge semantics).
SCENARIO_VERSION = 1

_ENVELOPE_KINDS = ("constant", "daily")


@dataclass(frozen=True)
class Envelope:
    """Intensity envelope: when (and how strongly) a component is active.

    ``constant`` passes the component stream through unchanged.
    ``daily`` keeps events whose hour-of-period falls inside
    ``[hour_start, hour_end)`` (wrapping past midnight when
    ``hour_start > hour_end``) and thins the rest to ``floor`` -- the
    declarative form of a nightly backup window or a working-hours scan.
    """

    kind: str = "constant"
    hour_start: float = 0.0
    hour_end: float = 24.0
    period_days: float = 1.0
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _ENVELOPE_KINDS:
            raise ValueError(
                f"unknown envelope kind {self.kind!r}; choose from {_ENVELOPE_KINDS}"
            )
        if self.period_days <= 0:
            raise ValueError("period_days must be positive")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")

    @property
    def is_constant(self) -> bool:
        """True when the envelope never thins an event."""
        return self.kind == "constant"

    def acceptance(self, times: np.ndarray) -> np.ndarray:
        """Per-event keep probability for an array of event times."""
        if self.is_constant:
            return np.ones(times.size)
        hours = (times / HOUR) % (self.period_days * 24.0)
        if self.hour_start <= self.hour_end:
            active = (hours >= self.hour_start) & (hours < self.hour_end)
        else:
            active = (hours >= self.hour_start) | (hours < self.hour_end)
        return np.where(active, 1.0, self.floor)


@dataclass(frozen=True)
class ComponentSpec:
    """One tenant's workload inside a scenario."""

    #: Tenant label; also the component's stable identity for seed
    #: derivation and cache keys.  Must be unique within a spec.
    name: str
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: User-population share: scales the component's file/user population
    #: (``workload.scale * share``) so tenants split one community.
    share: float = 1.0
    #: Days into the scenario at which this component's window opens
    #: (all its event times shift by this much).
    start_day: float = 0.0
    envelope: Envelope = field(default_factory=Envelope)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        if not 0.0 < self.share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        if self.start_day < 0:
            raise ValueError("start_day must be >= 0")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative multi-tenant workload."""

    name: str
    description: str = ""
    components: Tuple[ComponentSpec, ...] = ()
    #: Root seed; per-component child seeds derive from it by name.
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a scenario needs at least one component")
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"component names must be unique: {names}")

    # ------------------------------------------------------------------
    # Canonical component order and derived configurations

    @property
    def tenants(self) -> List[str]:
        """Tenant labels in canonical (sorted-name) order."""
        return sorted(component.name for component in self.components)

    def ordered_components(self) -> List[ComponentSpec]:
        """Components in canonical order (the compositor's rank order)."""
        return sorted(self.components, key=lambda component: component.name)

    def component(self, name: str) -> ComponentSpec:
        """The component with one tenant label."""
        for candidate in self.components:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no component named {name!r} in scenario {self.name!r}")

    def component_seeds(self) -> Dict[str, int]:
        """Stable per-component child seeds (listing-order invariant)."""
        return component_child_seeds(self.seed, self.tenants)

    def derived_config(self, name: str) -> WorkloadConfig:
        """One component's effective :class:`WorkloadConfig`.

        The declared workload with the population share applied to its
        scale and the spec-derived child seed substituted, so two specs
        that declare the same (root seed, component) pair address the
        same cached component store.
        """
        component = self.component(name)
        return dataclasses.replace(
            component.workload,
            scale=component.workload.scale * component.share,
            seed=self.component_seeds()[name],
        )

    # ------------------------------------------------------------------
    # Serialization and content addressing

    def to_dict(self) -> dict:
        """The spec as a plain JSON/YAML-ready dict."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "components": [
                dataclasses.asdict(component)
                for component in self.ordered_components()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        components = tuple(
            _component_from_dict(entry) for entry in data.get("components", ())
        )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            components=components,
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec from a ``.json`` / ``.yaml`` / ``.yml`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - yaml is vendored in CI
                raise ValueError(
                    f"{path}: reading YAML specs needs PyYAML; "
                    "use a .json spec instead"
                ) from exc
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: scenario spec must be a mapping")
        return cls.from_dict(data)

    def scenario_hash(self) -> str:
        """Content address of the composed stream this spec produces.

        Canonical-order components plus the scenario and generator
        versions, so any change to the spec or to what a fixed spec
        generates rolls every scenario-level cache key.
        """
        from repro.workload.generator import GENERATOR_VERSION

        payload = {
            "scenario_version": SCENARIO_VERSION,
            "generator_version": GENERATOR_VERSION,
            "spec": self.to_dict(),
        }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


def _component_from_dict(data: dict) -> ComponentSpec:
    """One component from its plain-dict form."""
    workload = data.get("workload", {})
    if isinstance(workload, dict):
        workload = _workload_from_dict(workload)
    envelope = data.get("envelope", {})
    if isinstance(envelope, dict):
        envelope = Envelope(**envelope)
    return ComponentSpec(
        name=data["name"],
        workload=workload,
        share=float(data.get("share", 1.0)),
        start_day=float(data.get("start_day", 0.0)),
        envelope=envelope,
    )


_WORKLOAD_SECTIONS = {
    "bursts": BurstConfig,
    "sessions": SessionConfig,
    "gaps": GapConfig,
    "placement": PlacementConfig,
    "errors": ErrorConfig,
}


def _workload_from_dict(data: dict) -> WorkloadConfig:
    """A :class:`WorkloadConfig` from its (possibly partial) dict form."""
    kwargs = dict(data)
    for section, section_cls in _WORKLOAD_SECTIONS.items():
        value = kwargs.get(section)
        if isinstance(value, dict):
            kwargs[section] = section_cls(**value)
    return WorkloadConfig(**kwargs)
