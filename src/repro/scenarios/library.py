"""Built-in scenario archetypes.

Each builder returns a :class:`~repro.scenarios.spec.ScenarioSpec` at a
requested ``(scale, seed, days)`` operating point.  The NCAR baseline is
the paper's 1990-92 community; the rest model the access patterns a
modern HSM faces (wide-area DFS usage, workgroup NFS serving, ML
pipelines, archival ingest -- see PAPERS.md) as declarative variants of
the same generator: different burst/gap/placement knobs, population
shares, time windows and intensity envelopes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core import paper
from repro.scenarios.spec import ComponentSpec, Envelope, ScenarioSpec
from repro.util.units import DAY
from repro.workload.config import (
    BurstConfig,
    GapConfig,
    PlacementConfig,
    SessionConfig,
    WorkloadConfig,
)

#: Builder signature: (scale, seed, days) -> ScenarioSpec.
Builder = Callable[[float, int, float], ScenarioSpec]


def _workload(scale: float, days: float, **overrides) -> WorkloadConfig:
    """A component workload at one scale/span (seed is spec-derived)."""
    return WorkloadConfig(
        scale=scale, seed=0, duration_seconds=days * DAY, **overrides
    )


def _ncar_component(scale: float, days: float, share: float = 1.0) -> ComponentSpec:
    """The paper's observed community, unchanged."""
    return ComponentSpec(name="ncar", workload=_workload(scale, days), share=share)


def _flash_crowd_component(
    scale: float, days: float, share: float = 0.3
) -> ComponentSpec:
    """A sudden read storm on a small hot set.

    A short window opening mid-scenario; a small file population whose
    deduped references fan out into heavy 8-hour re-read bursts and
    quick same-day revisits -- a dataset going viral, not a working
    archive.
    """
    crowd_days = max(2.0, days * 0.08)
    workload = _workload(
        scale,
        crowd_days,
        bursts=BurstConfig(
            read_extra_mean=6.0, write_extra_mean=0.1, follower_gap_mean=400.0
        ),
        gaps=GapConfig(p0_same_small=0.9, p0_same_large=0.8, p0_cross=0.85),
        sessions=SessionConfig(mean_session_length=25.0, intra_gap_mean=1.0),
    )
    return ComponentSpec(
        name="crowd",
        workload=workload,
        share=share,
        start_day=max(0.0, days * 0.4),
    )


def _backup_storm_component(
    scale: float, days: float, share: float = 0.4
) -> ComponentSpec:
    """Nightly sequential write/read waves in a fixed backup window."""
    workload = _workload(
        scale,
        days,
        bursts=BurstConfig(
            read_extra_mean=0.1, write_extra_mean=2.5, follower_gap_mean=900.0
        ),
        gaps=GapConfig(p0_cross=0.85, geom_p=0.85),
        sessions=SessionConfig(mean_session_length=40.0, intra_gap_mean=1.5),
    )
    return ComponentSpec(
        name="backup",
        workload=workload,
        share=share,
        envelope=Envelope(kind="daily", hour_start=0.0, hour_end=6.0, floor=0.02),
    )


def _archival_ingest_component(
    scale: float, days: float, share: float = 0.5
) -> ComponentSpec:
    """Write-once cold data with rare, months-later recalls."""
    workload = _workload(
        scale,
        days,
        bursts=BurstConfig(read_extra_mean=0.05, write_extra_mean=0.05),
        gaps=GapConfig(
            p0_cross=0.05,
            p0_same_small=0.05,
            p0_same_large=0.03,
            q_short_cross=0.10,
            q_short_small=0.10,
            q_short_large=0.05,
            long_median_days=180.0,
            long_sigma=1.2,
        ),
        placement=PlacementConfig(
            tape_write_shelf_fraction=0.30, promote_on_read=0.02
        ),
        history_atom_fraction=0.35,
    )
    return ComponentSpec(name="archive", workload=workload, share=share)


def _ml_scan_component(scale: float, days: float, share: float = 0.4) -> ComponentSpec:
    """Repeated full-corpus read epochs during working hours.

    Every file is re-read on a short geometric cadence in long sequential
    sessions -- the training-epoch scan pattern that defeats pure
    recency-based migration.
    """
    workload = _workload(
        scale,
        days,
        bursts=BurstConfig(read_extra_mean=1.5, write_extra_mean=0.05),
        gaps=GapConfig(
            p0_same_small=0.70,
            p0_same_large=0.65,
            q_short_cross=0.95,
            q_short_small=0.95,
            q_short_large=0.90,
            geom_p=0.9,
        ),
        sessions=SessionConfig(mean_session_length=50.0, intra_gap_mean=0.5),
    )
    return ComponentSpec(
        name="mlscan",
        workload=workload,
        share=share,
        envelope=Envelope(kind="daily", hour_start=7.0, hour_end=21.0, floor=0.15),
    )


def _default_days(days: Optional[float]) -> float:
    return float(days) if days is not None else float(paper.TRACE_SPAN_DAYS)


def _spec(name: str, description: str, seed: int, components) -> ScenarioSpec:
    return ScenarioSpec(
        name=name, description=description, seed=seed, components=tuple(components)
    )


def _build_ncar_baseline(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "ncar-baseline",
        "The paper's 1990-92 NCAR community, unchanged (one tenant).",
        seed,
        [_ncar_component(scale, days)],
    )


def _build_flash_crowd(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "flash-crowd",
        "Sudden read storm on a small hot set, opening mid-scenario.",
        seed,
        [_flash_crowd_component(scale, days, share=1.0)],
    )


def _build_backup_storm(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "backup-storm",
        "Nightly sequential write/read waves confined to a 00-06h window.",
        seed,
        [_backup_storm_component(scale, days, share=1.0)],
    )


def _build_archival_ingest(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "archival-ingest",
        "Write-once cold data; rare recalls on a months-long horizon.",
        seed,
        [_archival_ingest_component(scale, days, share=1.0)],
    )


def _build_ml_scan(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "ml-scan",
        "Repeated full-corpus read epochs in long working-hours sessions.",
        seed,
        [_ml_scan_component(scale, days, share=1.0)],
    )


def _build_mixed_tenant(scale: float, seed: int, days: float) -> ScenarioSpec:
    return _spec(
        "mixed-tenant",
        "NCAR baseline sharing one MSS with a flash crowd and nightly backups.",
        seed,
        [
            _ncar_component(scale, days, share=0.6),
            _flash_crowd_component(scale, days, share=0.2),
            _backup_storm_component(scale, days, share=0.2),
        ],
    )


#: name -> builder, in presentation order.
_BUILDERS: Dict[str, Builder] = {
    "ncar-baseline": _build_ncar_baseline,
    "flash-crowd": _build_flash_crowd,
    "backup-storm": _build_backup_storm,
    "archival-ingest": _build_archival_ingest,
    "ml-scan": _build_ml_scan,
    "mixed-tenant": _build_mixed_tenant,
}


def scenario_names() -> List[str]:
    """Names of every built-in archetype."""
    return list(_BUILDERS)


def build_scenario(
    name: str,
    scale: float = 0.01,
    seed: int = 0,
    days: Optional[float] = None,
) -> ScenarioSpec:
    """One built-in archetype at a chosen operating point."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    return builder(scale, seed, _default_days(days))


def describe_scenarios() -> List[dict]:
    """(name, description, tenant count) summaries for ``scenario list``.

    Built at a nominal operating point -- descriptions and tenant sets do
    not depend on scale/seed/days.
    """
    rows = []
    for name in scenario_names():
        spec = build_scenario(name, scale=0.01, seed=0, days=30.0)
        rows.append(
            {
                "name": name,
                "description": spec.description,
                "tenants": spec.tenants,
            }
        )
    return rows
