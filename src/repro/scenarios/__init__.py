"""Scenario subsystem: declarative workloads + streaming composition.

The paper's trace is one site, one community, one era; this package turns
the reproduction into a scenario-driven evaluation platform.  A
:class:`~repro.scenarios.spec.ScenarioSpec` declares a set of workload
*components* -- each a :class:`~repro.workload.config.WorkloadConfig`
variant plus a tenant label, population share, time window and intensity
envelope -- and the :class:`~repro.scenarios.compositor.ScenarioCompositor`
streams their generated (or store-cached) event-batch streams through a
k-way time merge with non-colliding remapped file/user id spaces.

Built-in archetypes live in :mod:`repro.scenarios.library`
(``ncar-baseline``, ``flash-crowd``, ``backup-storm``,
``archival-ingest``, ``ml-scan``, ``mixed-tenant``); the CLI front end is
``repro scenario list|show|run|compare``.
"""

from repro.scenarios.compositor import (
    ScenarioCompositor,
    compose,
    remap_ids,
    split_ids,
    tenant_of,
)
from repro.scenarios.library import build_scenario, scenario_names
from repro.scenarios.spec import ComponentSpec, Envelope, ScenarioSpec

__all__ = [
    "ComponentSpec",
    "Envelope",
    "ScenarioCompositor",
    "ScenarioSpec",
    "build_scenario",
    "compose",
    "remap_ids",
    "scenario_names",
    "split_ids",
    "tenant_of",
]
