"""repro: a reproduction of Miller & Katz (USENIX 1993).

"An Analysis of File Migration in a Unix Supercomputing Environment" --
trace synthesis, mass-storage-system simulation, migration policies, and
the analyses that regenerate every table and figure in the paper.

Quickstart::

    from repro import generate_trace, WorkloadConfig
    trace = generate_trace(WorkloadConfig(scale=0.01, seed=1))
    from repro.analysis import overall_statistics
    table = overall_statistics(trace.iter_records())
    print(table.render())
"""

__version__ = "1.0.0"

from repro.trace import (  # noqa: F401
    Device,
    ErrorKind,
    Flags,
    TraceReader,
    TraceRecord,
    TraceWriter,
    read_trace,
    write_trace,
)
from repro.workload import SyntheticTrace, WorkloadConfig, generate_trace  # noqa: F401

__all__ = [
    "Device",
    "ErrorKind",
    "Flags",
    "SyntheticTrace",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "WorkloadConfig",
    "__version__",
    "generate_trace",
    "read_trace",
    "write_trace",
]
