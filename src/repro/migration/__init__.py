"""Migration policies: STP, LRU, SAAC, size-based, FIFO, random, OPT."""

from repro.migration.basic import (
    FIFOPolicy,
    LRUPolicy,
    LargestFirstPolicy,
    MRUPolicy,
    RandomPolicy,
    SmallestFirstPolicy,
)
from repro.migration.opt import NEVER, OptimalPolicy
from repro.migration.policy import MigrationPolicy, ResidentFile
from repro.migration.registry import (
    available_policies,
    make_policy,
    register_policy,
)
from repro.migration.saac import SAACPolicy
from repro.migration.stp import SpaceTimePolicy, classic_stp, stp_14

__all__ = [
    "FIFOPolicy",
    "LRUPolicy",
    "LargestFirstPolicy",
    "MRUPolicy",
    "MigrationPolicy",
    "NEVER",
    "OptimalPolicy",
    "RandomPolicy",
    "ResidentFile",
    "SAACPolicy",
    "SmallestFirstPolicy",
    "SpaceTimePolicy",
    "available_policies",
    "classic_stp",
    "make_policy",
    "register_policy",
    "stp_14",
]
