"""Offline-optimal policy (Belady's MIN adapted to file migration).

Smith found "the best algorithms had access to the entire reference
string for a file" (Section 2.3).  This policy is given the full future
reference schedule and migrates the file whose next reference is farthest
away (never-again files first), providing the lower bound the online
policies are judged against.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.migration.policy import MigrationPolicy, ResidentFile

NEVER = float("inf")


class OptimalPolicy(MigrationPolicy):
    """Belady-style offline policy over a known reference string."""

    name = "opt"

    def __init__(self, schedule: Dict[int, Sequence[float]]) -> None:
        """``schedule`` maps file id -> sorted reference times (the full
        trace the simulation is about to replay)."""
        super().__init__()
        self._schedule: Dict[int, List[float]] = {
            fid: sorted(times) for fid, times in schedule.items()
        }

    @staticmethod
    def from_events(events: Iterable[Tuple[int, float]]) -> "OptimalPolicy":
        """Build the schedule from (file_id, time) pairs."""
        schedule: Dict[int, List[float]] = {}
        for file_id, time in events:
            schedule.setdefault(file_id, []).append(time)
        return OptimalPolicy(schedule)

    @staticmethod
    def from_batches(batches: Sequence) -> "OptimalPolicy":
        """Build the schedule from :class:`~repro.engine.batch.EventBatch`es.

        Vectorized: one lexsort over the concatenated (file, time) columns
        replaces the per-event dict appends of :meth:`from_events`.
        """
        import numpy as np

        arrays = [(b.file_id, b.time) for b in batches if len(b)]
        if not arrays:
            return OptimalPolicy({})
        file_ids = np.concatenate([a for a, _ in arrays])
        times = np.concatenate([t for _, t in arrays])
        order = np.lexsort((times, file_ids))
        file_ids = file_ids[order]
        times = times[order]
        boundaries = np.flatnonzero(np.diff(file_ids)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [file_ids.size]])
        policy = OptimalPolicy({})
        schedule = policy._schedule
        times_list = times.tolist()
        for start, stop, fid in zip(
            starts.tolist(), stops.tolist(), file_ids[starts].tolist()
        ):
            schedule[fid] = times_list[start:stop]
        return policy

    def next_reference_after(self, file_id: int, now: float) -> float:
        """First reference to the file strictly after ``now``."""
        times = self._schedule.get(file_id)
        if not times:
            return NEVER
        idx = bisect.bisect_right(times, now)
        if idx >= len(times):
            return NEVER
        return times[idx]

    def rank(self, meta: ResidentFile, now: float) -> float:
        """Farthest next reference migrates first."""
        return self.next_reference_after(meta.file_id, now)
