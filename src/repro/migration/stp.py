"""Space-Time Product policies (Smith [14,15]).

Smith's result, restated in Section 2.3: among criteria that use only the
last reference time, the best migrates the files with the highest value of
``size * (time since last reference) ** alpha`` with alpha ~= 1.4
(written STP**1.4).  Lawrie et al. [10] found the same criterion best on
an unrelated system.  The generalized form below exposes both exponents so
the ablation bench can sweep them.
"""

from __future__ import annotations

from repro.core import paper
from repro.migration.policy import MigrationPolicy, ResidentFile


class SpaceTimePolicy(MigrationPolicy):
    """Migrate the largest-and-coldest files first."""

    def __init__(
        self,
        time_exponent: float = paper.STP_TIME_EXPONENT,
        size_exponent: float = 1.0,
    ) -> None:
        super().__init__()
        if time_exponent < 0 or size_exponent < 0:
            raise ValueError("exponents must be non-negative")
        self.time_exponent = time_exponent
        self.size_exponent = size_exponent
        self.name = f"stp(t^{time_exponent:g},s^{size_exponent:g})"

    def rank(self, meta: ResidentFile, now: float) -> float:
        """size^beta * age^alpha."""
        age = max(now - meta.last_access, 0.0)
        return (meta.size ** self.size_exponent) * (age ** self.time_exponent)


def classic_stp() -> SpaceTimePolicy:
    """Smith's plain space-time product (alpha = beta = 1)."""
    return SpaceTimePolicy(time_exponent=1.0, size_exponent=1.0)


def stp_14() -> SpaceTimePolicy:
    """The STP**1.4 variant the paper cites as best."""
    return SpaceTimePolicy(time_exponent=paper.STP_TIME_EXPONENT, size_exponent=1.0)
