"""The migration-policy interface.

A policy decides which resident files to migrate off the managed disk when
space is needed (Section 6 / the Smith [14,15] and Lawrie [10] studies the
paper builds on).  Policies see every access and answer victim queries;
the cache in :mod:`repro.hsm` owns capacity accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(slots=True)
class ResidentFile:
    """Metadata a policy tracks for one cached file.

    Slotted: one instance exists per resident file and every policy's
    ``rank`` reads it on every migration wave.
    """

    file_id: int
    size: int
    inserted_at: float
    last_access: float
    access_count: int = 1


class MigrationPolicy:
    """Base class: bookkeeping plus the victim-selection hook."""

    name = "base"

    #: Whether ``rank`` is a monotone transform of a single static,
    #: capacity-independent per-file key (insertion time, last access,
    #: or size) at every instant.  Such policies produce nested victim
    #: orderings across capacities, so the stack-distance engine
    #: (:mod:`repro.engine.stackdist`) can replay a whole capacity sweep
    #: in one pass.  Policies with history-dependent or stochastic ranks
    #: (STP's size*age^alpha product, SAAC's decayed rates, random)
    #: must leave this False and take the per-capacity DES path.
    is_inclusion_preserving: bool = False

    def __init__(self) -> None:
        self._resident: Dict[int, ResidentFile] = {}

    # ------------------------------------------------------------------
    # Bookkeeping driven by the cache

    def on_insert(self, file_id: int, size: int, time: float) -> None:
        """A file has been staged onto the managed disk."""
        if file_id in self._resident:
            raise ValueError(f"file {file_id} is already resident")
        self._resident[file_id] = ResidentFile(
            file_id=file_id, size=size, inserted_at=time, last_access=time
        )

    def on_access(self, file_id: int, time: float, is_write: bool) -> None:
        """A resident file has been referenced."""
        meta = self._resident.get(file_id)
        if meta is None:
            raise KeyError(f"file {file_id} is not resident")
        meta.last_access = time
        meta.access_count += 1

    def on_access_batch(
        self, file_ids: Sequence[int], times: Sequence[float]
    ) -> None:
        """A run of read hits on resident files, in time order.

        Called by the batch replay loop between state-changing events.
        The base implementation updates the shared bookkeeping inline;
        policies that override :meth:`on_access` (to keep extra per-access
        state, like SAAC's decayed rates) are automatically fed one event
        at a time so their hook still sees every access.
        """
        if type(self).on_access is not MigrationPolicy.on_access:
            for file_id, time in zip(file_ids, times):
                self.on_access(file_id, time, is_write=False)
            return
        resident = self._resident
        for file_id, time in zip(file_ids, times):
            meta = resident[file_id]  # KeyError = not resident
            meta.last_access = time
            meta.access_count += 1

    def on_evict(self, file_id: int) -> None:
        """A file has been migrated off the disk."""
        if self._resident.pop(file_id, None) is None:
            raise KeyError(f"file {file_id} is not resident")

    # ------------------------------------------------------------------
    # Introspection

    def is_resident(self, file_id: int) -> bool:
        """Whether the policy believes the file is on disk."""
        return file_id in self._resident

    @property
    def resident_count(self) -> int:
        """Number of resident files."""
        return len(self._resident)

    def resident_metadata(self) -> Iterable[ResidentFile]:
        """All resident file metadata (for scoring)."""
        return self._resident.values()

    def metadata(self, file_id: int) -> ResidentFile:
        """Metadata for one resident file."""
        return self._resident[file_id]

    # ------------------------------------------------------------------
    # The decision hook

    def select_victims(
        self, needed_bytes: int, now: float, protect: Optional[int] = None
    ) -> List[int]:
        """Pick files to migrate until at least ``needed_bytes`` are freed.

        ``protect`` names a file that must not be chosen (typically the
        file currently being staged).  Subclasses implement ``rank``; the
        default selection greedily takes the highest-ranked victims.
        """
        chosen: List[int] = []
        freed = 0
        rank = self.rank
        # Lazy selection: heapify is O(candidates) and only the victims
        # actually taken pay a log-cost pop, instead of fully sorting the
        # residency list on every migration wave.  The index tiebreak
        # reproduces the stable descending sort exactly, so victim order
        # (and therefore every downstream metric) is unchanged.
        entries = [
            (-rank(meta, now), index, meta.file_id, meta.size)
            for index, meta in enumerate(self._resident.values())
            if meta.file_id != protect
        ]
        heapq.heapify(entries)
        pop = heapq.heappop
        while entries and freed < needed_bytes:
            _, _, file_id, size = pop(entries)
            chosen.append(file_id)
            freed += size
        return chosen

    def rank(self, meta: ResidentFile, now: float) -> float:
        """Migration priority; higher ranks migrate first."""
        raise NotImplementedError
