"""The migration-policy interface.

A policy decides which resident files to migrate off the managed disk when
space is needed (Section 6 / the Smith [14,15] and Lawrie [10] studies the
paper builds on).  Policies see every access and answer victim queries;
the cache in :mod:`repro.hsm` owns capacity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass
class ResidentFile:
    """Metadata a policy tracks for one cached file."""

    file_id: int
    size: int
    inserted_at: float
    last_access: float
    access_count: int = 1


class MigrationPolicy:
    """Base class: bookkeeping plus the victim-selection hook."""

    name = "base"

    def __init__(self) -> None:
        self._resident: Dict[int, ResidentFile] = {}

    # ------------------------------------------------------------------
    # Bookkeeping driven by the cache

    def on_insert(self, file_id: int, size: int, time: float) -> None:
        """A file has been staged onto the managed disk."""
        if file_id in self._resident:
            raise ValueError(f"file {file_id} is already resident")
        self._resident[file_id] = ResidentFile(
            file_id=file_id, size=size, inserted_at=time, last_access=time
        )

    def on_access(self, file_id: int, time: float, is_write: bool) -> None:
        """A resident file has been referenced."""
        meta = self._resident.get(file_id)
        if meta is None:
            raise KeyError(f"file {file_id} is not resident")
        meta.last_access = time
        meta.access_count += 1

    def on_evict(self, file_id: int) -> None:
        """A file has been migrated off the disk."""
        if self._resident.pop(file_id, None) is None:
            raise KeyError(f"file {file_id} is not resident")

    # ------------------------------------------------------------------
    # Introspection

    def is_resident(self, file_id: int) -> bool:
        """Whether the policy believes the file is on disk."""
        return file_id in self._resident

    @property
    def resident_count(self) -> int:
        """Number of resident files."""
        return len(self._resident)

    def resident_metadata(self) -> Iterable[ResidentFile]:
        """All resident file metadata (for scoring)."""
        return self._resident.values()

    def metadata(self, file_id: int) -> ResidentFile:
        """Metadata for one resident file."""
        return self._resident[file_id]

    # ------------------------------------------------------------------
    # The decision hook

    def select_victims(
        self, needed_bytes: int, now: float, protect: Optional[int] = None
    ) -> List[int]:
        """Pick files to migrate until at least ``needed_bytes`` are freed.

        ``protect`` names a file that must not be chosen (typically the
        file currently being staged).  Subclasses implement ``rank``; the
        default selection greedily takes the highest-ranked victims.
        """
        chosen: List[int] = []
        freed = 0
        candidates = [
            meta for meta in self._resident.values() if meta.file_id != protect
        ]
        candidates.sort(key=lambda meta: self.rank(meta, now), reverse=True)
        for meta in candidates:
            if freed >= needed_bytes:
                break
            chosen.append(meta.file_id)
            freed += meta.size
        return chosen

    def rank(self, meta: ResidentFile, now: float) -> float:
        """Migration priority; higher ranks migrate first."""
        raise NotImplementedError
