"""Name -> policy factory registry, used by the CLI and the benches."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

from repro.migration.basic import (
    FIFOPolicy,
    LRUPolicy,
    LargestFirstPolicy,
    MRUPolicy,
    RandomPolicy,
    SmallestFirstPolicy,
)
from repro.migration.policy import MigrationPolicy
from repro.migration.saac import SAACPolicy
from repro.migration.stp import SpaceTimePolicy, classic_stp, stp_14

PolicyFactory = Callable[[], MigrationPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {
    "stp": stp_14,
    "stp-1.0": classic_stp,
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "largest-first": LargestFirstPolicy,
    "smallest-first": SmallestFirstPolicy,
    "random": RandomPolicy,
    "mru": MRUPolicy,
    "saac": SAACPolicy,
}


def available_policies() -> List[str]:
    """Registered policy names (excludes OPT, which needs the trace)."""
    return sorted(_REGISTRY)


def make_policy(name: str, *, seed: Optional[int] = None) -> MigrationPolicy:
    """Instantiate a policy by name.

    ``seed`` reseeds stochastic policies (any factory accepting a
    ``seed`` keyword, currently ``random``) so independent experiment
    cells draw independent victim streams instead of all sharing the
    factory default.  Deterministic policies ignore it.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown policy {name!r}; choose from {available_policies()}"
        ) from exc
    if seed is not None:
        try:
            params = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # pragma: no cover - C factories
            params = {}
        if "seed" in params:
            return factory(seed=seed)
    return factory()


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Add a custom policy to the registry."""
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory


__all__ = [
    "available_policies",
    "make_policy",
    "register_policy",
    "SpaceTimePolicy",
]
