"""The simple baseline policies the prior studies compared against.

Lawrie et al. [10] evaluated "pure LRU, pure length (migrate large files
first)" against Smith's STP; we add FIFO, smallest-first and random as
additional controls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.migration.policy import MigrationPolicy, ResidentFile


class LRUPolicy(MigrationPolicy):
    """Migrate the least recently used file first."""

    name = "lru"
    is_inclusion_preserving = True

    def rank(self, meta: ResidentFile, now: float) -> float:
        return now - meta.last_access


class FIFOPolicy(MigrationPolicy):
    """Migrate the longest-resident file first, ignoring reuse."""

    name = "fifo"
    is_inclusion_preserving = True

    def rank(self, meta: ResidentFile, now: float) -> float:
        return now - meta.inserted_at


class LargestFirstPolicy(MigrationPolicy):
    """Lawrie's "pure length": migrate the biggest file first."""

    name = "largest-first"
    is_inclusion_preserving = True

    def rank(self, meta: ResidentFile, now: float) -> float:
        return float(meta.size)


class SmallestFirstPolicy(MigrationPolicy):
    """Migrate the smallest file first (a deliberately bad control)."""

    name = "smallest-first"
    is_inclusion_preserving = True

    def rank(self, meta: ResidentFile, now: float) -> float:
        return -float(meta.size)


class RandomPolicy(MigrationPolicy):
    """Uniformly random victims."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)

    def rank(self, meta: ResidentFile, now: float) -> float:
        return float(self._rng.random())


class MRUPolicy(MigrationPolicy):
    """Migrate the most recently used file (pathological control)."""

    name = "mru"
    is_inclusion_preserving = True

    def rank(self, meta: ResidentFile, now: float) -> float:
        return -(now - meta.last_access)
