"""SAAC: migrate files whose activity is declining (Lawrie et al. [10]).

The paper describes SAAC as the policy "which migrated files that became
less active".  We implement it as a space-age product damped by an
activity trend: each file keeps an exponentially decayed access rate, and
files whose recent rate has fallen relative to their lifetime rate rank
higher for migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.migration.policy import MigrationPolicy, ResidentFile
from repro.util.units import DAY


@dataclass
class _Activity:
    """Decayed-rate bookkeeping for one file."""

    decayed_rate: float = 0.0
    last_update: float = 0.0


class SAACPolicy(MigrationPolicy):
    """Space-Age-Activity-Change policy."""

    name = "saac"

    def __init__(self, half_life: float = 7 * DAY) -> None:
        super().__init__()
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._activity: Dict[int, _Activity] = {}

    def _decay(self, activity: _Activity, now: float) -> float:
        """Decayed access rate at ``now``."""
        dt = max(now - activity.last_update, 0.0)
        return activity.decayed_rate * 0.5 ** (dt / self.half_life)

    def on_insert(self, file_id: int, size: int, time: float) -> None:
        super().on_insert(file_id, size, time)
        self._activity[file_id] = _Activity(decayed_rate=1.0, last_update=time)

    def on_access(self, file_id: int, time: float, is_write: bool) -> None:
        super().on_access(file_id, time, is_write)
        activity = self._activity[file_id]
        activity.decayed_rate = self._decay(activity, time) + 1.0
        activity.last_update = time

    def on_evict(self, file_id: int) -> None:
        super().on_evict(file_id)
        self._activity.pop(file_id, None)

    def rank(self, meta: ResidentFile, now: float) -> float:
        """Large, old, and *cooling* files migrate first.

        Lifetime rate = accesses / residency; current rate = decayed rate.
        The (1 + lifetime/current) factor grows as activity falls off.
        """
        age = max(now - meta.last_access, 1.0)
        residency = max(now - meta.inserted_at, 1.0)
        lifetime_rate = meta.access_count / residency
        current_rate = max(
            self._decay(self._activity[meta.file_id], now) / self.half_life, 1e-12
        )
        cooling = 1.0 + lifetime_rate / current_rate
        return meta.size * age * cooling
