"""The hierarchical storage manager: cache + policy + prefetch, replaying
a reference stream and reporting migration metrics.

This is the engine behind the Section 6 experiments: compare STP / LRU /
size / SAAC / OPT at various managed-disk capacities, toggle lazy
write-back, and measure what prefetching buys.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple

from repro.hsm.cache import CacheConfig, ManagedDiskCache
from repro.hsm.metrics import HSMMetrics
from repro.hsm.prefetch import PrefetchConfig, SequentialPrefetcher
from repro.migration.opt import OptimalPolicy
from repro.migration.policy import MigrationPolicy
from repro.migration.registry import make_policy
from repro.namespace.model import Namespace
from repro.workload.generator import SyntheticTrace

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch

#: One reference: (file_id, size_bytes, time_seconds, is_write).  Legacy
#: per-tuple form; the pipeline moves :class:`EventBatch`es instead.
Event = Tuple[int, int, float, bool]


@dataclass
class HSMConfig:
    """Complete HSM experiment configuration."""

    cache: CacheConfig
    prefetch: PrefetchConfig = field(default_factory=lambda: PrefetchConfig(enabled=False))

    @staticmethod
    def with_capacity(
        capacity_bytes: int,
        writeback_delay: Optional[float] = 4 * 3600.0,
        prefetch: bool = False,
        prefetch_depth: int = 2,
    ) -> "HSMConfig":
        """Convenience constructor used by the benches."""
        return HSMConfig(
            cache=CacheConfig(
                capacity_bytes=capacity_bytes, writeback_delay=writeback_delay
            ),
            prefetch=PrefetchConfig(enabled=prefetch, depth=prefetch_depth),
        )


class HSM:
    """A managed disk tier in front of the tape archive."""

    def __init__(
        self,
        config: HSMConfig,
        policy: MigrationPolicy,
        namespace: Optional[Namespace] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.cache = ManagedDiskCache(config.cache, policy)
        self.prefetcher: Optional[SequentialPrefetcher] = None
        if config.prefetch.enabled:
            if namespace is None:
                raise ValueError("prefetching needs the namespace for siblings")
            self.prefetcher = SequentialPrefetcher(namespace, config.prefetch)

    @property
    def metrics(self) -> HSMMetrics:
        """Counters accumulated so far."""
        return self.cache.metrics

    def handle(self, event: Event) -> None:
        """Apply one reference."""
        file_id, size, time, is_write = event
        if self.prefetcher is not None and not is_write:
            if self.cache.is_resident(file_id) and self.prefetcher.consume_hit(file_id):
                self.metrics.prefetch_hits += 1
        outcome = self.cache.access(file_id, size, time, is_write)
        if self.prefetcher is not None:
            for evicted in outcome.evicted:
                self.prefetcher.cancel(evicted)
            if not is_write and not outcome.hit:
                self._prefetch_around(file_id, time)

    def _prefetch_around(self, file_id: int, time: float) -> None:
        assert self.prefetcher is not None
        for sibling_id, sibling_size in self.prefetcher.candidates(file_id):
            if self.cache.is_resident(sibling_id):
                continue
            if sibling_size > self.config.cache.capacity_bytes // 4:
                continue  # do not wipe the cache for speculation
            self.metrics.prefetches_issued += 1
            self.metrics.bytes_staged += sibling_size
            self.cache._insert(sibling_id, sibling_size, time, dirty=False)
            self.prefetcher.note_prefetched(sibling_id)

    def run(self, events: Iterable[Event]) -> HSMMetrics:
        """Replay a whole per-tuple reference stream.

        Legacy entry point kept for unit tests and ad-hoc streams; the
        pipeline path is :meth:`replay` over :class:`EventBatch`es.
        """
        for event in events:
            self.handle(event)
        self.cache.flush_all()
        return self.metrics

    def replay(self, batches: Iterable["EventBatch"]) -> HSMMetrics:
        """Replay a stream of columnar :class:`EventBatch`es.

        Produces metrics identical to feeding the same events through
        :meth:`run` one tuple at a time, but drives the cache through its
        batch access path (buffered hit runs, no per-event allocations).
        With prefetching enabled the per-event path is used, because every
        access outcome feeds the prefetcher.

        With ``REPRO_CHECK_INVARIANTS=1`` every batch is followed by a
        conservation-law check (and ``flush_all`` by the at-finalize
        laws); the ``hsm-batch`` fault point lets the chaos harness
        corrupt a counter deliberately to prove the checker catches it.
        """
        from repro.engine.resilience import fault_point
        from repro.verify.invariants import (
            HSMInvariantChecker, invariants_enabled,
        )

        checker = (
            HSMInvariantChecker(
                self.cache, prefetch=self.prefetcher is not None
            )
            if invariants_enabled()
            else None
        )
        faulted = bool(os.environ.get("REPRO_FAULT_PLAN"))
        index = 0
        if self.prefetcher is not None:
            for batch in batches:
                handle = self.handle
                for event in zip(
                    batch.file_id.tolist(),
                    batch.size.tolist(),
                    batch.time.tolist(),
                    batch.is_write.tolist(),
                ):
                    handle(event)
                if faulted and "corrupt" in fault_point(
                    "hsm-batch", f"batch:{index}"
                ):
                    self.cache.metrics.read_hits += 1
                if checker is not None:
                    checker.after_batch(batch)
                index += 1
        else:
            for batch in batches:
                self.cache.access_batch(
                    batch.file_id.tolist(),
                    batch.size.tolist(),
                    batch.time.tolist(),
                    batch.is_write.tolist(),
                )
                if faulted and "corrupt" in fault_point(
                    "hsm-batch", f"batch:{index}"
                ):
                    self.cache.metrics.read_hits += 1
                if checker is not None:
                    checker.after_batch(batch)
                index += 1
        self.cache.flush_all()
        if checker is not None:
            checker.finalize()
        return self.metrics


# ---------------------------------------------------------------------------
# Event-stream construction


def events_from_trace(
    trace: SyntheticTrace, deduped: bool = True
) -> List[Event]:
    """Reference stream for HSM replay from a synthetic trace.

    Failed references are dropped; by default the 8-hour dedupe is applied
    (migration decisions would not see batch-script re-requests, Section 6).

    Legacy record-walking implementation, kept as the reference the
    engine's columnar pipeline (:func:`repro.engine.stream.hsm_event_batches`)
    is verified against; new code should use the engine path.
    """
    from repro.trace.filters import dedupe_for_file_analysis, strip_errors

    records = strip_errors(trace.iter_records())
    if deduped:
        records = dedupe_for_file_analysis(records)
    events: List[Event] = []
    for record in records:
        entry = trace.namespace.file_by_path(record.mss_path)
        events.append(
            (entry.file_id, max(entry.size, 1), record.start_time, record.is_write)
        )
    return events


def run_policy(
    events: List[Event],
    policy_name: str,
    capacity_bytes: int,
    namespace: Optional[Namespace] = None,
    writeback_delay: Optional[float] = 4 * 3600.0,
    prefetch: bool = False,
) -> HSMMetrics:
    """Run one named policy over an event stream."""
    if policy_name == "opt":
        policy: MigrationPolicy = OptimalPolicy.from_events(
            (file_id, time) for file_id, _, time, _ in events
        )
    else:
        policy = make_policy(policy_name)
    config = HSMConfig.with_capacity(
        capacity_bytes, writeback_delay=writeback_delay, prefetch=prefetch
    )
    hsm = HSM(config, policy, namespace=namespace)
    return hsm.run(events)


def capacity_sweep(
    events: List[Event],
    policy_name: str,
    total_bytes: int,
    fractions: Iterable[float],
    namespace: Optional[Namespace] = None,
) -> Iterator[Tuple[float, HSMMetrics]]:
    """Miss ratio vs capacity: the Smith-style curve of Section 2.3."""
    for fraction in fractions:
        capacity = max(int(total_bytes * fraction), 1)
        metrics = run_policy(events, policy_name, capacity, namespace=namespace)
        yield fraction, metrics
