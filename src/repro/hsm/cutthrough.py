"""Cut-through opens: the Section 5.1.1 latency optimization.

"One possible way to improve perceived response time in the system would
be to use cut-through, as in [7].  Under this scheme, a call to open a
file returns immediately, while the operating system continues to load the
file from the MSS ...  This scheme works because applications often do not
read data as fast as the MSS can deliver it.  Instead of delaying the
application, then, it allows the application and file retrieval from the
MSS to overlap."

The model: the MSS starts delivering after ``startup_latency`` and streams
at ``mss_rate``; the application consumes the file at ``app_rate``.

* **Blocking open** (NCAR's explicit ``iread``): the application waits for
  the whole file to be staged -- a stall of ``startup + size/mss_rate``.
* **Cut-through open**: consumption overlaps delivery; the application
  only stalls by however much delivery finishes after its own consumption
  would have: ``max(0, startup + size/mss_rate - size/app_rate)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.trace.record import TraceRecord
from repro.util.stats import StreamingMoments
from repro.util.units import MB

#: Default application consumption rate: a visualization tool decoding
#: model output reads well below the 2 MB/s channel.
DEFAULT_APP_RATE = 0.5 * MB


def blocking_stall(startup_latency: float, size: int, mss_rate: float) -> float:
    """Seconds a blocking open keeps the application waiting."""
    if mss_rate <= 0:
        raise ValueError("mss_rate must be positive")
    if size < 0 or startup_latency < 0:
        raise ValueError("size and latency must be non-negative")
    return startup_latency + size / mss_rate


def cutthrough_stall(
    startup_latency: float, size: int, mss_rate: float, app_rate: float
) -> float:
    """Seconds a cut-through open keeps the application waiting.

    Consumption overlaps delivery, so only the portion of staging that
    outlasts the application's own reading is felt.
    """
    if app_rate <= 0:
        raise ValueError("app_rate must be positive")
    total_delivery = blocking_stall(startup_latency, size, mss_rate)
    consumption = size / app_rate
    return max(0.0, total_delivery - consumption)


@dataclass
class CutThroughReport:
    """Perceived-latency comparison over a record stream."""

    blocking: StreamingMoments
    cutthrough: StreamingMoments

    @property
    def mean_blocking_stall(self) -> float:
        """Mean stall with ordinary (blocking) opens."""
        return self.blocking.mean

    @property
    def mean_cutthrough_stall(self) -> float:
        """Mean stall with cut-through opens."""
        return self.cutthrough.mean

    @property
    def improvement(self) -> float:
        """Fraction of perceived read latency removed by cut-through."""
        if self.blocking.mean == 0:
            return 0.0
        return 1.0 - self.cutthrough.mean / self.blocking.mean


def evaluate_cutthrough(
    records: Iterable[TraceRecord],
    app_rate: float = DEFAULT_APP_RATE,
) -> CutThroughReport:
    """Compare blocking vs cut-through perceived stalls over read records.

    Records must carry startup latencies and transfer times (analytic or
    DES-produced).  Only successful reads participate: "humans wait for
    reads, while computers wait for writes."
    """
    blocking = StreamingMoments()
    cut = StreamingMoments()
    for record in records:
        if record.is_error or record.is_write:
            continue
        if record.transfer_time <= 0 or record.file_size <= 0:
            continue
        mss_rate = record.file_size / record.transfer_time
        blocking.add(blocking_stall(record.startup_latency, record.file_size, mss_rate))
        cut.add(
            cutthrough_stall(
                record.startup_latency, record.file_size, mss_rate, app_rate
            )
        )
    if blocking.count == 0:
        raise ValueError("no successful reads with timing information")
    return CutThroughReport(blocking=blocking, cutthrough=cut)
