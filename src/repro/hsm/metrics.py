"""Counters and derived metrics for HSM simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import paper
from repro.trace.record import Device
from repro.util.units import DAY, MINUTE

#: Default hit/miss costs: the paper's measured disk and tape latencies.
DISK_HIT_LATENCY = paper.TABLE3_DEVICE_TOTALS[Device.MSS_DISK].secs_to_first_byte
TAPE_MISS_LATENCY = paper.TAPE_AVG_ACCESS


@dataclass(slots=True)
class HSMMetrics:
    """Everything a migration experiment reports.

    Slotted: the replay loop increments these counters millions of times
    per sweep cell.
    """

    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    #: Misses on files never seen before (unavoidable for any policy).
    compulsory_misses: int = 0
    bytes_staged: int = 0
    writes: int = 0
    bytes_written: int = 0
    tape_writes: int = 0
    bytes_flushed: int = 0
    rewrites_absorbed: int = 0
    evictions: int = 0
    bytes_evicted: int = 0
    forced_flushes: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    #: References to files larger than the managed disk, which move
    #: directly between the Cray and tape without touching the cache.
    bypassed_reads: int = 0
    bypassed_writes: int = 0
    span_seconds: float = field(default=0.0)

    @property
    def read_miss_ratio(self) -> float:
        """Fraction of reads that had to be staged from tape."""
        if self.reads == 0:
            return 0.0
        return self.read_misses / self.reads

    @property
    def read_hit_ratio(self) -> float:
        """Fraction of reads served from the managed disk."""
        return 1.0 - self.read_miss_ratio if self.reads else 0.0

    @property
    def capacity_miss_ratio(self) -> float:
        """Miss ratio excluding compulsory (first-touch) misses -- the
        part a migration policy is actually responsible for."""
        if self.reads == 0:
            return 0.0
        return (self.read_misses - self.compulsory_misses) / self.reads

    def mean_read_latency(
        self,
        hit_latency: float = DISK_HIT_LATENCY,
        miss_latency: float = TAPE_MISS_LATENCY,
    ) -> float:
        """Expected seconds to first byte given the hit ratio.

        Defaults: a hit costs the paper's disk latency, a miss the paper's
        average tape access.
        """
        if self.reads == 0:
            return 0.0
        return (
            self.read_hits * hit_latency + self.read_misses * miss_latency
        ) / self.reads

    def person_minutes_per_day(
        self, stall_seconds: float = paper.TAPE_AVG_ACCESS
    ) -> float:
        """Human time lost to misses, the Section 2.3 currency.

        Each read miss stalls a human for roughly one tape access; the
        paper quotes 6.26 person-minutes/day at a 1 % miss ratio.
        """
        if self.span_seconds <= 0:
            return 0.0
        days = self.span_seconds / DAY
        return (self.read_misses * stall_seconds / MINUTE) / days

    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched files later read."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued
