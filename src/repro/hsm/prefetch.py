"""Sequential prefetch across directory siblings.

Section 5.2.1: "a researcher interested in day 1 of a climate model
simulation will usually be interested in day 2, and both days will
probably be in separate files."  Section 7 recommends using spare space
and idle drives to "prefetch files which might be read shortly."  The
prefetcher stages the next file(s) in sequence whenever a read misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.namespace.model import Namespace


@dataclass(frozen=True)
class PrefetchConfig:
    """How aggressively to read ahead."""

    depth: int = 2          # siblings staged per triggering miss
    enabled: bool = True


class SequentialPrefetcher:
    """Chooses prefetch candidates from namespace sequence order."""

    def __init__(self, namespace: Namespace, config: PrefetchConfig = PrefetchConfig()) -> None:
        self.namespace = namespace
        self.config = config
        self._outstanding: Set[int] = set()

    def candidates(self, file_id: int) -> List[Tuple[int, int]]:
        """(file_id, size) of the next ``depth`` siblings of a file."""
        if not self.config.enabled:
            return []
        out: List[Tuple[int, int]] = []
        entry = self.namespace.files[file_id]
        for _ in range(self.config.depth):
            sibling = self.namespace.sibling_after(entry)
            if sibling is None:
                break
            out.append((sibling.file_id, sibling.size))
            entry = sibling
        return out

    def note_prefetched(self, file_id: int) -> None:
        """Record that a file was staged speculatively."""
        self._outstanding.add(file_id)

    def consume_hit(self, file_id: int) -> bool:
        """True (once) if this read was satisfied by a prior prefetch."""
        if file_id in self._outstanding:
            self._outstanding.discard(file_id)
            return True
        return False

    def cancel(self, file_id: int) -> None:
        """The file left the cache before being used."""
        self._outstanding.discard(file_id)
