"""Hierarchical storage management: managed disk cache over tape."""

from repro.hsm.cache import AccessOutcome, CacheConfig, ManagedDiskCache
from repro.hsm.cutthrough import (
    CutThroughReport,
    blocking_stall,
    cutthrough_stall,
    evaluate_cutthrough,
)
from repro.hsm.manager import (
    HSM,
    HSMConfig,
    capacity_sweep,
    events_from_trace,
    run_policy,
)
from repro.hsm.metrics import DISK_HIT_LATENCY, HSMMetrics, TAPE_MISS_LATENCY
from repro.hsm.prefetch import PrefetchConfig, SequentialPrefetcher

__all__ = [
    "AccessOutcome",
    "CacheConfig",
    "CutThroughReport",
    "blocking_stall",
    "cutthrough_stall",
    "evaluate_cutthrough",
    "DISK_HIT_LATENCY",
    "HSM",
    "HSMConfig",
    "HSMMetrics",
    "ManagedDiskCache",
    "PrefetchConfig",
    "SequentialPrefetcher",
    "TAPE_MISS_LATENCY",
    "capacity_sweep",
    "events_from_trace",
    "run_policy",
]
