"""The managed disk cache in front of tertiary storage.

This models the disk tier a migration policy manages: reads hit or stage
from tape, writes land on disk and flush to tape (lazily or immediately),
and a watermark pair triggers migration.  Section 6's recommendation --
"it should write data to tape relatively quickly, and then mark the file
as 'deleteable'" -- is the lazy write-back mode: once flushed, a file's
space can be reclaimed without further tape work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hsm.metrics import HSMMetrics
from repro.migration.policy import MigrationPolicy
from repro.util.units import HOUR


@dataclass(frozen=True)
class CacheConfig:
    """Managed-disk parameters."""

    capacity_bytes: int
    #: Migration starts above ``high_watermark`` and stops below
    #: ``low_watermark`` (fractions of capacity).
    high_watermark: float = 0.95
    low_watermark: float = 0.85
    #: Lazy write-back: flush dirty files this long after their last
    #: write; None = write-through (flush immediately).
    writeback_delay: Optional[float] = 4 * HOUR

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("need 0 < low <= high <= 1")


@dataclass(slots=True)
class AccessOutcome:
    """What one reference did to the cache."""

    hit: bool
    staged_bytes: int = 0
    evicted: List[int] = field(default_factory=list)
    forced_flush: bool = False


class ManagedDiskCache:
    """Byte-capacity cache driven by a migration policy.

    The caller feeds time-ordered accesses; the cache tracks residency,
    dirtiness, and the flush queue, and asks the policy for victims when
    the high watermark is crossed.
    """

    def __init__(self, config: CacheConfig, policy: MigrationPolicy) -> None:
        self.config = config
        self.policy = policy
        self.metrics = HSMMetrics()
        self._sizes: Dict[int, int] = {}
        self._ever_seen: Set[int] = set()
        self._dirty: Set[int] = set()
        #: Min-heap of (due time, file, version); entries whose version no
        #: longer matches ``_flush_version`` are stale and skipped on pop
        #: (lazy invalidation -- cheaper than rebuilding the queue on every
        #: rewrite, which the old sorted-list queue did).
        self._flush_queue: List[Tuple[float, int, int]] = []
        self._flush_version: Dict[int, int] = {}
        self._usage = 0
        # Hot-loop constants (the config is frozen, so these never move).
        self._high_bytes = config.high_watermark * config.capacity_bytes
        self._writeback_delay = config.writeback_delay
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    # State inspection

    @property
    def usage_bytes(self) -> int:
        """Bytes currently resident."""
        return self._usage

    @property
    def resident_files(self) -> int:
        """Files currently resident."""
        return len(self._sizes)

    def is_resident(self, file_id: int) -> bool:
        """Whether a file is on the managed disk."""
        return file_id in self._sizes

    def is_dirty(self, file_id: int) -> bool:
        """Whether a resident file still owes a tape copy."""
        return file_id in self._dirty

    def check_invariants(self) -> None:
        """Raise if internal accounting is inconsistent (test hook)."""
        if self._usage != sum(self._sizes.values()):
            raise AssertionError("usage does not match resident sizes")
        if self._usage > self.config.capacity_bytes:
            raise AssertionError("capacity exceeded")
        if not self._dirty <= set(self._sizes):
            raise AssertionError("dirty files not resident")
        if self.policy.resident_count != len(self._sizes):
            raise AssertionError("policy and cache disagree on residency")

    # ------------------------------------------------------------------
    # The access path

    def access(
        self, file_id: int, size: int, time: float, is_write: bool
    ) -> AccessOutcome:
        """Apply one reference; returns what happened."""
        if size <= 0:
            raise ValueError("file size must be positive")
        self._note_time(time)
        self.flush_due(time)
        if size > self.config.capacity_bytes:
            return self._bypass(file_id, size, time, is_write)
        if is_write:
            return self._write(file_id, size, time)
        return self._read(file_id, size, time)

    def _bypass(
        self, file_id: int, size: int, time: float, is_write: bool
    ) -> AccessOutcome:
        """A file larger than the managed disk cannot be staged: it moves
        directly between the Cray and tape, leaving the cache untouched."""
        metrics = self.metrics
        if is_write:
            metrics.writes += 1
            metrics.bytes_written += size
            metrics.bypassed_writes += 1
            metrics.tape_writes += 1
            metrics.bytes_flushed += size
            # The tape copy exists now, so a later read is not compulsory.
            self._ever_seen.add(file_id)
            return AccessOutcome(hit=False)
        metrics.reads += 1
        metrics.read_misses += 1
        metrics.bypassed_reads += 1
        if file_id not in self._ever_seen:
            metrics.compulsory_misses += 1
            self._ever_seen.add(file_id)
        metrics.bytes_staged += size
        return AccessOutcome(hit=False, staged_bytes=size)

    def access_batch(
        self,
        file_ids: Sequence[int],
        sizes: Sequence[int],
        times: Sequence[float],
        writes: Sequence[bool],
    ) -> None:
        """Apply one time-ordered batch of references.

        Semantically identical to calling :meth:`access` per event (final
        metrics and cache/policy state match exactly), but the read-hit
        fast path is inlined: hits neither allocate an
        :class:`AccessOutcome` nor call into the policy one event at a
        time -- consecutive hits are buffered and handed to the policy as
        one :meth:`~repro.migration.policy.MigrationPolicy.on_access_batch`
        run just before the next state-changing event.  This is the hot
        loop of every Section 6 sweep.
        """
        n = len(file_ids)
        if n == 0:
            return
        capacity = self.config.capacity_bytes
        # Whole-batch pre-check: when every size is positive and fits the
        # cache (the normal case) the hot loop can skip two comparisons
        # per event.  A batch containing nonpositive or oversized sizes
        # is split at those indices: the degenerate events take the
        # per-event path (raise / bypass exactly where `access` would),
        # and every clean span between them still runs the fast loop.
        if min(sizes) <= 0 or max(sizes) > capacity:
            self._access_batch_split(file_ids, sizes, times, writes)
            return
        self._access_batch_fast(file_ids, sizes, times, writes)

    def _access_batch_fast(
        self,
        file_ids: Sequence[int],
        sizes: Sequence[int],
        times: Sequence[float],
        writes: Sequence[bool],
    ) -> None:
        """The buffered-hit hot loop; callers guarantee clean sizes."""
        n = len(file_ids)
        sizes_map = self._sizes
        queue = self._flush_queue
        policy = self.policy
        metrics = self.metrics
        hit_files: List[int] = []
        hit_times: List[float] = []
        append_hit_file = hit_files.append
        append_hit_time = hit_times.append
        flush_due = self.flush_due
        stage_miss = self._stage_miss
        write = self._write_batch

        def drain_hits() -> None:
            metrics.reads += len(hit_files)
            metrics.read_hits += len(hit_files)
            policy.on_access_batch(hit_files, hit_times)
            hit_files.clear()
            hit_times.clear()

        for file_id, size, time, is_write in zip(file_ids, sizes, times, writes):
            if queue and queue[0][0] <= time:
                flush_due(time)
            if not is_write and file_id in sizes_map:
                append_hit_file(file_id)
                append_hit_time(time)
                continue
            if hit_files:
                drain_hits()
            if is_write:
                write(file_id, size, time)
            else:
                stage_miss(file_id, size, time)
        if hit_files:
            drain_hits()
        if self._first_time is None:
            self._first_time = float(times[0])
        self._last_time = float(times[n - 1])
        metrics.span_seconds = self._last_time - self._first_time

    def _access_batch_split(
        self,
        file_ids: Sequence[int],
        sizes: Sequence[int],
        times: Sequence[float],
        writes: Sequence[bool],
    ) -> None:
        """Batch path for streams containing oversized or bad sizes.

        Only the degenerate events drop to per-event handling; the clean
        spans between them replay through :meth:`_access_batch_fast`, so
        one oversized file no longer demotes a whole batch to the scalar
        loop.  Raises on a nonpositive size exactly where the per-event
        path would, with every earlier event already applied.
        """
        capacity = self.config.capacity_bytes
        n = len(file_ids)
        start = 0
        for i, size in enumerate(sizes):
            if 0 < size <= capacity:
                continue
            if i > start:
                self._access_batch_fast(
                    file_ids[start:i], sizes[start:i],
                    times[start:i], writes[start:i],
                )
            if size <= 0:
                raise ValueError("file size must be positive")
            time = times[i]
            self._note_time(float(time))
            self.flush_due(time)
            self._bypass(file_ids[i], size, time, writes[i])
            start = i + 1
        if start < n:
            self._access_batch_fast(
                file_ids[start:n], sizes[start:n], times[start:n], writes[start:n]
            )

    def _read(self, file_id: int, size: int, time: float) -> AccessOutcome:
        if file_id in self._sizes:
            self.metrics.reads += 1
            self.metrics.read_hits += 1
            self.policy.on_access(file_id, time, is_write=False)
            return AccessOutcome(hit=True)
        evicted = self._stage_miss(file_id, size, time)
        return AccessOutcome(hit=False, staged_bytes=size, evicted=evicted)

    def _stage_miss(self, file_id: int, size: int, time: float) -> List[int]:
        """Read-miss bookkeeping + staging (shared by both access paths)."""
        metrics = self.metrics
        metrics.reads += 1
        metrics.read_misses += 1
        if file_id not in self._ever_seen:
            metrics.compulsory_misses += 1
        metrics.bytes_staged += size
        return self._insert(file_id, size, time, dirty=False)

    def _write(self, file_id: int, size: int, time: float) -> AccessOutcome:
        self.metrics.writes += 1
        self.metrics.bytes_written += size
        delay = self._writeback_delay
        if file_id in self._sizes:
            hit = True
            self.policy.on_access(file_id, time, is_write=True)
            if file_id in self._dirty:
                # Re-written before its flush: the pending tape copy is
                # superseded ("write lazily" pays off here).
                self.metrics.rewrites_absorbed += 1
                self._unschedule_flush(file_id)
            evicted: List[int] = []
        else:
            hit = False
            evicted = self._insert(file_id, size, time, dirty=True)
        if delay is None:
            self._flush_now(file_id)
        else:
            self._dirty.add(file_id)
            heapq.heappush(
                self._flush_queue,
                (time + delay, file_id, self._flush_version.get(file_id, 0)),
            )
        return AccessOutcome(hit=hit, evicted=evicted)

    def _write_batch(self, file_id: int, size: int, time: float) -> None:
        """Outcome-free mirror of :meth:`_write` for the batch hot loop.

        Keep in sync with :meth:`_write`; the replay-equivalence tests
        pin the two paths to identical metrics and state.
        """
        metrics = self.metrics
        metrics.writes += 1
        metrics.bytes_written += size
        sizes_map = self._sizes
        if file_id in sizes_map:
            self.policy.on_access(file_id, time, is_write=True)
            if file_id in self._dirty:
                metrics.rewrites_absorbed += 1
                self._unschedule_flush(file_id)
        else:
            self._insert(file_id, size, time, dirty=True)
        delay = self._writeback_delay
        if delay is None:
            self._flush_now(file_id)
        else:
            self._dirty.add(file_id)
            heapq.heappush(
                self._flush_queue,
                (time + delay, file_id, self._flush_version.get(file_id, 0)),
            )

    # ------------------------------------------------------------------
    # Flushing (tape writes)

    def flush_due(self, now: float) -> int:
        """Flush dirty files whose write-back timer expired."""
        flushed = 0
        queue = self._flush_queue
        while queue and queue[0][0] <= now:
            _, file_id, version = heapq.heappop(queue)
            if (
                version == self._flush_version.get(file_id, 0)
                and file_id in self._dirty
            ):
                self._flush_now(file_id)
                flushed += 1
        return flushed

    def flush_all(self) -> int:
        """Flush every dirty file (end-of-run cleanup)."""
        dirty = list(self._dirty)
        for file_id in dirty:
            self._flush_now(file_id)
        self._flush_queue.clear()
        return len(dirty)

    def _flush_now(self, file_id: int) -> None:
        size = self._sizes.get(file_id, 0)
        self.metrics.tape_writes += 1
        self.metrics.bytes_flushed += size
        self._dirty.discard(file_id)

    def _unschedule_flush(self, file_id: int) -> None:
        self._flush_version[file_id] = self._flush_version.get(file_id, 0) + 1

    # ------------------------------------------------------------------
    # Insertion and migration

    def _insert(
        self, file_id: int, size: int, time: float, dirty: bool
    ) -> List[int]:
        if self._usage + size > self._high_bytes:
            evicted = self._make_room(size, time, protect=file_id)
        else:
            evicted = []
        self._sizes[file_id] = size
        self._ever_seen.add(file_id)
        self._usage += size
        self.policy.on_insert(file_id, size, time)
        if dirty:
            self._dirty.add(file_id)
        return evicted

    def _make_room(
        self, incoming: int, time: float, protect: Optional[int]
    ) -> List[int]:
        """Evict (via the policy) so the incoming file fits and usage
        drops to the low watermark if the high one was crossed."""
        capacity = self.config.capacity_bytes
        evicted: List[int] = []
        target = None
        if self._usage + incoming > self.config.high_watermark * capacity:
            target = self.config.low_watermark * capacity - incoming
        elif self._usage + incoming > capacity:
            target = capacity - incoming
        if target is None:
            return evicted
        needed = self._usage - max(target, 0)
        if needed <= 0:
            return evicted
        victims = self.policy.select_victims(int(needed), time, protect=protect)
        for victim in victims:
            self._evict(victim)
            evicted.append(victim)
        # Defensive: if the policy under-delivered, evict by policy rank
        # until the incoming file physically fits.
        while self._usage + incoming > capacity and self._sizes:
            extra = self.policy.select_victims(1, time, protect=protect)
            if not extra:
                raise RuntimeError("policy returned no victims but cache is full")
            for victim in extra:
                self._evict(victim)
                evicted.append(victim)
                if self._usage + incoming <= capacity:
                    break
        return evicted

    def _evict(self, file_id: int) -> None:
        if file_id in self._dirty:
            # Migrating a dirty file forces its tape copy first.
            self.metrics.forced_flushes += 1
            self._flush_now(file_id)
            self._unschedule_flush(file_id)
        size = self._sizes.pop(file_id)
        self._usage -= size
        self.policy.on_evict(file_id)
        self.metrics.evictions += 1
        self.metrics.bytes_evicted += size

    # ------------------------------------------------------------------

    def _note_time(self, time: float) -> None:
        if self._first_time is None:
            self._first_time = time
        self._last_time = time
        self.metrics.span_seconds = (self._last_time or 0.0) - (
            self._first_time or 0.0
        )
