"""The managed disk cache in front of tertiary storage.

This models the disk tier a migration policy manages: reads hit or stage
from tape, writes land on disk and flush to tape (lazily or immediately),
and a watermark pair triggers migration.  Section 6's recommendation --
"it should write data to tape relatively quickly, and then mark the file
as 'deleteable'" -- is the lazy write-back mode: once flushed, a file's
space can be reclaimed without further tape work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hsm.metrics import HSMMetrics
from repro.migration.policy import MigrationPolicy
from repro.util.units import HOUR


@dataclass(frozen=True)
class CacheConfig:
    """Managed-disk parameters."""

    capacity_bytes: int
    #: Migration starts above ``high_watermark`` and stops below
    #: ``low_watermark`` (fractions of capacity).
    high_watermark: float = 0.95
    low_watermark: float = 0.85
    #: Lazy write-back: flush dirty files this long after their last
    #: write; None = write-through (flush immediately).
    writeback_delay: Optional[float] = 4 * HOUR

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("need 0 < low <= high <= 1")


@dataclass
class AccessOutcome:
    """What one reference did to the cache."""

    hit: bool
    staged_bytes: int = 0
    evicted: List[int] = field(default_factory=list)
    forced_flush: bool = False


class ManagedDiskCache:
    """Byte-capacity cache driven by a migration policy.

    The caller feeds time-ordered accesses; the cache tracks residency,
    dirtiness, and the flush queue, and asks the policy for victims when
    the high watermark is crossed.
    """

    def __init__(self, config: CacheConfig, policy: MigrationPolicy) -> None:
        self.config = config
        self.policy = policy
        self.metrics = HSMMetrics()
        self._sizes: Dict[int, int] = {}
        self._ever_seen: Set[int] = set()
        self._dirty: Set[int] = set()
        self._flush_queue: List[Tuple[float, int]] = []  # (due time, file)
        self._usage = 0
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    # State inspection

    @property
    def usage_bytes(self) -> int:
        """Bytes currently resident."""
        return self._usage

    @property
    def resident_files(self) -> int:
        """Files currently resident."""
        return len(self._sizes)

    def is_resident(self, file_id: int) -> bool:
        """Whether a file is on the managed disk."""
        return file_id in self._sizes

    def is_dirty(self, file_id: int) -> bool:
        """Whether a resident file still owes a tape copy."""
        return file_id in self._dirty

    def check_invariants(self) -> None:
        """Raise if internal accounting is inconsistent (test hook)."""
        if self._usage != sum(self._sizes.values()):
            raise AssertionError("usage does not match resident sizes")
        if self._usage > self.config.capacity_bytes:
            raise AssertionError("capacity exceeded")
        if not self._dirty <= set(self._sizes):
            raise AssertionError("dirty files not resident")
        if self.policy.resident_count != len(self._sizes):
            raise AssertionError("policy and cache disagree on residency")

    # ------------------------------------------------------------------
    # The access path

    def access(
        self, file_id: int, size: int, time: float, is_write: bool
    ) -> AccessOutcome:
        """Apply one reference; returns what happened."""
        if size <= 0:
            raise ValueError("file size must be positive")
        if size > self.config.capacity_bytes:
            raise ValueError(
                f"file of {size} bytes cannot fit a "
                f"{self.config.capacity_bytes}-byte cache"
            )
        self._note_time(time)
        self.flush_due(time)
        if is_write:
            return self._write(file_id, size, time)
        return self._read(file_id, size, time)

    def _read(self, file_id: int, size: int, time: float) -> AccessOutcome:
        self.metrics.reads += 1
        if file_id in self._sizes:
            self.metrics.read_hits += 1
            self.policy.on_access(file_id, time, is_write=False)
            return AccessOutcome(hit=True)
        # Miss: stage from tape.
        self.metrics.read_misses += 1
        if file_id not in self._ever_seen:
            self.metrics.compulsory_misses += 1
        self.metrics.bytes_staged += size
        evicted = self._insert(file_id, size, time, dirty=False)
        return AccessOutcome(hit=False, staged_bytes=size, evicted=evicted)

    def _write(self, file_id: int, size: int, time: float) -> AccessOutcome:
        self.metrics.writes += 1
        self.metrics.bytes_written += size
        delay = self.config.writeback_delay
        if file_id in self._sizes:
            hit = True
            self.policy.on_access(file_id, time, is_write=True)
            if file_id in self._dirty:
                # Re-written before its flush: the pending tape copy is
                # superseded ("write lazily" pays off here).
                self.metrics.rewrites_absorbed += 1
                self._unschedule_flush(file_id)
            evicted: List[int] = []
        else:
            hit = False
            evicted = self._insert(file_id, size, time, dirty=True)
        if delay is None:
            self._flush_now(file_id)
        else:
            self._dirty.add(file_id)
            self._flush_queue.append((time + delay, file_id))
            self._flush_queue.sort()
        return AccessOutcome(hit=hit, evicted=evicted)

    # ------------------------------------------------------------------
    # Flushing (tape writes)

    def flush_due(self, now: float) -> int:
        """Flush dirty files whose write-back timer expired."""
        flushed = 0
        while self._flush_queue and self._flush_queue[0][0] <= now:
            _, file_id = self._flush_queue.pop(0)
            if file_id in self._dirty:
                self._flush_now(file_id)
                flushed += 1
        return flushed

    def flush_all(self) -> int:
        """Flush every dirty file (end-of-run cleanup)."""
        dirty = list(self._dirty)
        for file_id in dirty:
            self._flush_now(file_id)
        self._flush_queue.clear()
        return len(dirty)

    def _flush_now(self, file_id: int) -> None:
        size = self._sizes.get(file_id, 0)
        self.metrics.tape_writes += 1
        self.metrics.bytes_flushed += size
        self._dirty.discard(file_id)

    def _unschedule_flush(self, file_id: int) -> None:
        self._flush_queue = [
            entry for entry in self._flush_queue if entry[1] != file_id
        ]

    # ------------------------------------------------------------------
    # Insertion and migration

    def _insert(
        self, file_id: int, size: int, time: float, dirty: bool
    ) -> List[int]:
        evicted = self._make_room(size, time, protect=file_id)
        self._sizes[file_id] = size
        self._ever_seen.add(file_id)
        self._usage += size
        self.policy.on_insert(file_id, size, time)
        if dirty:
            self._dirty.add(file_id)
        return evicted

    def _make_room(
        self, incoming: int, time: float, protect: Optional[int]
    ) -> List[int]:
        """Evict (via the policy) so the incoming file fits and usage
        drops to the low watermark if the high one was crossed."""
        capacity = self.config.capacity_bytes
        evicted: List[int] = []
        target = None
        if self._usage + incoming > self.config.high_watermark * capacity:
            target = self.config.low_watermark * capacity - incoming
        elif self._usage + incoming > capacity:
            target = capacity - incoming
        if target is None:
            return evicted
        needed = self._usage - max(target, 0)
        if needed <= 0:
            return evicted
        victims = self.policy.select_victims(int(needed), time, protect=protect)
        for victim in victims:
            self._evict(victim)
            evicted.append(victim)
        # Defensive: if the policy under-delivered, evict by policy rank
        # until the incoming file physically fits.
        while self._usage + incoming > capacity and self._sizes:
            extra = self.policy.select_victims(1, time, protect=protect)
            if not extra:
                raise RuntimeError("policy returned no victims but cache is full")
            for victim in extra:
                self._evict(victim)
                evicted.append(victim)
                if self._usage + incoming <= capacity:
                    break
        return evicted

    def _evict(self, file_id: int) -> None:
        if file_id in self._dirty:
            # Migrating a dirty file forces its tape copy first.
            self.metrics.forced_flushes += 1
            self._flush_now(file_id)
            self._unschedule_flush(file_id)
        size = self._sizes.pop(file_id)
        self._usage -= size
        self.policy.on_evict(file_id)
        self.metrics.evictions += 1
        self.metrics.bytes_evicted += size

    # ------------------------------------------------------------------

    def _note_time(self, time: float) -> None:
        if self._first_time is None:
            self._first_time = time
        self._last_time = time
        self.metrics.span_seconds = (self._last_time or 0.0) - (
            self._first_time or 0.0
        )
