"""Stage-level wall-clock profiler for trace generation.

The generator pipeline runs eight named stages (namespace, lifecycles,
chains, bursts, placement, sessions, errors, latencies, plus the sorts
between them).  A :class:`StageProfiler` collects one wall-time entry per
stage so regressions in any single stage are visible without a full
cProfile run; ``repro report --profile`` and ``repro bench`` print the
resulting table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class StageProfiler:
    """Ordered per-stage wall-clock accumulator.

    Re-entering a stage name accumulates into the same bucket, so a
    stage split across code paths (e.g. the two sorts) still reports one
    line.
    """

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one pipeline stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate seconds into one stage bucket."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        """Sum over all recorded stages."""
        return sum(self.stages.values())

    def render(self, indent: str = "") -> str:
        """The stage table as printed by ``report --profile`` / ``bench``."""
        if not self.stages:
            return f"{indent}(no stages recorded)"
        total = self.total_seconds
        width = max(len(name) for name in self.stages)
        lines = []
        for name, seconds in self.stages.items():
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{indent}{name:{width}s} {seconds:9.4f} s  {share:6.1%}"
            )
        lines.append(f"{indent}{'total':{width}s} {total:9.4f} s")
        return "\n".join(lines)
