"""Hour-of-day activity profiles (Figure 4).

"The amount of data read jumps greatly at 8 AM when the scientists usually
arrive, and slowly tails off after 4 PM as they leave.  The fall is slower
than the rise because most scientists are more likely to stay late than to
arrive early. ... writes remain almost constant regardless of the number of
humans requesting data."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Relative read intensity per hour (0 = midnight).  Low overnight, sharp
#: rise at 8, plateau through the working day, slow evening tail.
READ_HOURLY_WEIGHTS: Tuple[float, ...] = (
    0.22, 0.18, 0.16, 0.15, 0.15, 0.16,   # 00-05  overnight batch-driven reads
    0.20, 0.38, 0.80, 1.00, 1.05, 1.08,   # 06-11  arrival ramp and morning peak
    1.02, 1.05, 1.08, 1.05, 1.00, 0.88,   # 12-17  afternoon plateau
    0.72, 0.60, 0.52, 0.45, 0.35, 0.28,   # 18-23  slow tail-off
)

#: Relative write intensity per hour: machine-driven, nearly flat, with a
#: mild working-hours bump from users issuing explicit lwrite requests
#: ("there is a small increase in write requests during the day").
WRITE_HOURLY_WEIGHTS: Tuple[float, ...] = (
    0.95, 0.95, 0.96, 0.96, 0.95, 0.95,
    0.96, 0.98, 1.02, 1.06, 1.08, 1.08,
    1.05, 1.06, 1.08, 1.07, 1.05, 1.02,
    1.00, 0.98, 0.97, 0.96, 0.95, 0.95,
)


@dataclass(frozen=True)
class HourlyProfile:
    """Normalized hour-of-day weights with sampling support."""

    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != 24:
            raise ValueError("an hourly profile needs exactly 24 weights")
        if any(w < 0 for w in self.weights):
            raise ValueError("hourly weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("hourly weights must not all be zero")

    @property
    def probabilities(self) -> np.ndarray:
        """Weights normalized to a probability vector."""
        arr = np.asarray(self.weights, dtype=float)
        return arr / arr.sum()

    def factor(self, hour: int) -> float:
        """Relative intensity of one hour (mean-normalized)."""
        arr = np.asarray(self.weights, dtype=float)
        return float(arr[hour] / arr.mean())

    def sample_hours(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` hours of day according to the profile."""
        return rng.choice(24, size=n, p=self.probabilities)

    def peak_hour(self) -> int:
        """The busiest hour."""
        return int(np.argmax(self.weights))

    def peak_to_trough(self) -> float:
        """Ratio of the busiest to the quietest hour."""
        arr = np.asarray(self.weights, dtype=float)
        low = arr.min()
        if low == 0:
            return float("inf")
        return float(arr.max() / low)


READ_PROFILE = HourlyProfile(READ_HOURLY_WEIGHTS)
WRITE_PROFILE = HourlyProfile(WRITE_HOURLY_WEIGHTS)


def profile_for(is_write: bool) -> HourlyProfile:
    """The calibrated profile for one direction."""
    return WRITE_PROFILE if is_write else READ_PROFILE


def validate_shape(weights: Sequence[float]) -> None:
    """Sanity-check a custom profile against the paper's qualitative shape.

    Raises ``ValueError`` unless working hours (9-17) are busier than the
    small hours (0-6) -- the minimum structure Figures 4-5 demand.
    """
    arr = np.asarray(list(weights), dtype=float)
    if len(arr) != 24:
        raise ValueError("expected 24 hourly weights")
    if arr[9:17].mean() <= arr[0:6].mean():
        raise ValueError("working hours must be busier than the small hours")
