"""Synthetic NCAR workload generation, calibrated to the paper."""

from repro.workload.clustering import expand_bursts, pack_sessions
from repro.workload.config import (
    BurstConfig,
    ErrorConfig,
    GapConfig,
    NCAR_BENCH_CONFIG,
    NCAR_TEST_CONFIG,
    PlacementConfig,
    SessionConfig,
    WorkloadConfig,
)
from repro.workload.diurnal import (
    HourlyProfile,
    READ_PROFILE,
    WRITE_PROFILE,
    profile_for,
)
from repro.workload.generator import SyntheticTrace, generate_trace
from repro.workload.intensity import IntensityModel, IntensityPair
from repro.workload.latency import AnalyticLatencyModel
from repro.workload.lifecycle import (
    ARCHETYPE_PROBABILITIES,
    Archetype,
    LifecycleSample,
    direction_sequence,
    draw_lifecycles,
    expected_marginals,
)
from repro.workload.placement import DevicePlacement
from repro.workload.trend import READ_TREND, SecularTrend, WRITE_TREND, trend_for
from repro.workload.users import UserPopulation
from repro.workload.weekly import READ_WEEKLY, WRITE_WEEKLY, WeeklyProfile, weekly_for

__all__ = [
    "ARCHETYPE_PROBABILITIES",
    "AnalyticLatencyModel",
    "Archetype",
    "BurstConfig",
    "DevicePlacement",
    "ErrorConfig",
    "GapConfig",
    "HourlyProfile",
    "IntensityModel",
    "IntensityPair",
    "LifecycleSample",
    "NCAR_BENCH_CONFIG",
    "NCAR_TEST_CONFIG",
    "PlacementConfig",
    "READ_PROFILE",
    "READ_TREND",
    "READ_WEEKLY",
    "SecularTrend",
    "SessionConfig",
    "SyntheticTrace",
    "UserPopulation",
    "WRITE_PROFILE",
    "WRITE_TREND",
    "WRITE_WEEKLY",
    "WeeklyProfile",
    "WorkloadConfig",
    "direction_sequence",
    "draw_lifecycles",
    "expand_bursts",
    "expected_marginals",
    "generate_trace",
    "pack_sessions",
    "profile_for",
    "trend_for",
    "weekly_for",
]
