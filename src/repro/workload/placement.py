"""Device placement: which storage level serves each reference.

Section 3.1: "The MSS tries to keep all files under 30 MB on the 3090
disks, and immediately sends all files over 30 MB to tape.  Usually, the
tapes written are those in the cartridge silo."  Shelf tape serves old,
cold files -- 97 % of its traffic is reads (Table 3) -- so tape-class reads
go to the silo while the file is *recent* and to the shelf once it has gone
cold (or if it pre-dates the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.trace.record import Device
from repro.workload.config import PlacementConfig


@dataclass
class _FileState:
    """Mutable per-file placement state during trace generation."""

    on_shelf: bool
    last_access: float


@dataclass
class DevicePlacement:
    """Stateful per-reference device assignment.

    Feed references in nondecreasing time order; the placement tracks each
    tape-class file's recency to decide silo vs shelf.
    """

    config: PlacementConfig = field(default_factory=PlacementConfig)

    def __post_init__(self) -> None:
        self._tape_state: Dict[int, _FileState] = {}

    def is_tape_class(self, size: int) -> bool:
        """True for files the MSS sends straight to tape."""
        return size >= self.config.disk_threshold_bytes

    def register_preexisting(
        self, rng: np.random.Generator, file_id: int, size: int
    ) -> None:
        """Mark a file that existed before the trace started.

        Old tape files mostly sit on shelved cartridges; a minority are
        still in the silo from recent activity.
        """
        if not self.is_tape_class(size):
            return
        on_shelf = bool(rng.random() < self.config.preexisting_shelf_fraction)
        self._tape_state[file_id] = _FileState(
            on_shelf=on_shelf, last_access=float("-inf")
        )

    def assign(
        self,
        rng: np.random.Generator,
        file_id: int,
        size: int,
        time: float,
        is_write: bool,
    ) -> Device:
        """Pick the storage level for one reference and update state."""
        if not self.is_tape_class(size):
            return Device.MSS_DISK

        state = self._tape_state.get(file_id)
        if is_write:
            # Fresh data lands on silo cartridges, rarely on shelf tapes
            # (special operator-mounted requests).
            to_shelf = bool(rng.random() < self.config.tape_write_shelf_fraction)
            self._tape_state[file_id] = _FileState(on_shelf=to_shelf, last_access=time)
            return Device.TAPE_SHELF if to_shelf else Device.TAPE_SILO

        if state is None:
            # First sighting is a read: the file pre-dates the trace but was
            # never registered (defensive path) -- treat as shelved archive.
            state = _FileState(on_shelf=True, last_access=float("-inf"))
            self._tape_state[file_id] = state

        if not state.on_shelf:
            if (time - state.last_access) > self.config.silo_residency:
                # The silo holds only 6,000 cartridges; inactive ones are
                # ejected to shelf storage.  A fresh write always lands the
                # data back on a silo cartridge.
                state.on_shelf = True
            else:
                state.last_access = time
                return Device.TAPE_SILO
        # Reading off the shelf sometimes gets the cartridge re-entered
        # into the silo (hot data the operators expect to be used again).
        if rng.random() < self.config.promote_on_read:
            state.on_shelf = False
            state.last_access = time
        return Device.TAPE_SHELF
