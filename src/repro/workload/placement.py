"""Device placement: which storage level serves each reference.

Section 3.1: "The MSS tries to keep all files under 30 MB on the 3090
disks, and immediately sends all files over 30 MB to tape.  Usually, the
tapes written are those in the cartridge silo."  Shelf tape serves old,
cold files -- 97 % of its traffic is reads (Table 3) -- so tape-class reads
go to the silo while the file is *recent* and to the shelf once it has gone
cold (or if it pre-dates the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.trace.record import Device
from repro.workload.config import PlacementConfig

#: Index of each storage device in :meth:`Device.storage_devices` order,
#: the encoding ``SyntheticTrace.device_idx`` carries.
DEVICE_INDEX = {device: i for i, device in enumerate(Device.storage_devices())}

_DISK_IDX = np.int8(DEVICE_INDEX[Device.MSS_DISK])
_SILO_IDX = np.int8(DEVICE_INDEX[Device.TAPE_SILO])
_SHELF_IDX = np.int8(DEVICE_INDEX[Device.TAPE_SHELF])


@dataclass
class _FileState:
    """Mutable per-file placement state during trace generation."""

    on_shelf: bool
    last_access: float


@dataclass
class DevicePlacement:
    """Stateful per-reference device assignment.

    Feed references in nondecreasing time order; the placement tracks each
    tape-class file's recency to decide silo vs shelf.
    """

    config: PlacementConfig = field(default_factory=PlacementConfig)

    def __post_init__(self) -> None:
        self._tape_state: Dict[int, _FileState] = {}

    def is_tape_class(self, size: int) -> bool:
        """True for files the MSS sends straight to tape."""
        return size >= self.config.disk_threshold_bytes

    def register_preexisting(
        self, rng: np.random.Generator, file_id: int, size: int
    ) -> None:
        """Mark a file that existed before the trace started.

        Old tape files mostly sit on shelved cartridges; a minority are
        still in the silo from recent activity.
        """
        if not self.is_tape_class(size):
            return
        on_shelf = bool(rng.random() < self.config.preexisting_shelf_fraction)
        self._tape_state[file_id] = _FileState(
            on_shelf=on_shelf, last_access=float("-inf")
        )

    def assign(
        self,
        rng: np.random.Generator,
        file_id: int,
        size: int,
        time: float,
        is_write: bool,
    ) -> Device:
        """Pick the storage level for one reference and update state."""
        if not self.is_tape_class(size):
            return Device.MSS_DISK

        state = self._tape_state.get(file_id)
        if is_write:
            # Fresh data lands on silo cartridges, rarely on shelf tapes
            # (special operator-mounted requests).
            to_shelf = bool(rng.random() < self.config.tape_write_shelf_fraction)
            self._tape_state[file_id] = _FileState(on_shelf=to_shelf, last_access=time)
            return Device.TAPE_SHELF if to_shelf else Device.TAPE_SILO

        if state is None:
            # First sighting is a read: the file pre-dates the trace but was
            # never registered (defensive path) -- treat as shelved archive.
            state = _FileState(on_shelf=True, last_access=float("-inf"))
            self._tape_state[file_id] = state

        if not state.on_shelf:
            if (time - state.last_access) > self.config.silo_residency:
                # The silo holds only 6,000 cartridges; inactive ones are
                # ejected to shelf storage.  A fresh write always lands the
                # data back on a silo cartridge.
                state.on_shelf = True
            else:
                state.last_access = time
                return Device.TAPE_SILO
        # Reading off the shelf sometimes gets the cartridge re-entered
        # into the silo (hot data the operators expect to be used again).
        if rng.random() < self.config.promote_on_read:
            state.on_shelf = False
            state.last_access = time
        return Device.TAPE_SHELF


def assign_devices_batch(
    rng: np.random.Generator,
    config: PlacementConfig,
    file_ids: np.ndarray,
    sizes: np.ndarray,
    times: np.ndarray,
    is_write: np.ndarray,
) -> np.ndarray:
    """Array-level :class:`DevicePlacement` over a time-sorted stream.

    Returns ``device_idx`` (int8, :data:`DEVICE_INDEX` encoding) for every
    event.  Statistically equivalent to feeding the stream through
    :meth:`DevicePlacement.assign` one event at a time -- the per-decision
    probabilities are identical -- but RNG draws are batched (one block of
    write-landing coins, one block of promote coins), so the realized
    stream differs from the scalar path for a fixed seed.

    The silo/shelf recency machine collapses to a boolean set/reset/hold
    recurrence per file.  With ``expired`` = inter-access gap beyond the
    silo residency (a silo cartridge would have been ejected) and
    ``promote`` = the operator re-enters a recalled shelf tape::

        shelf_after(read)  = not promote  if (shelf_before or expired)
                             else shelf_before          # silo hit: hold
        shelf_after(write) = write_shelf_coin           # reset

    Every hold copies the previous state, so the state at any event is
    the value at its most recent *deciding* event -- found for all events
    at once with ``np.maximum.accumulate`` over deciding indices.  A
    file's first event always decides (a write, or a read whose gap from
    ``-inf`` is expired), so holds never leak across files and the rare
    promote-chains need no Python loop either.

    Pre-existing tape files need no explicit registration here: their
    first read has an infinite gap, which lands on the shelf and rolls
    the promote coin exactly as the scalar path's shelved-archive state
    does (a registered silo start is ejected on first touch the same
    way).
    """
    n = times.size
    device = np.full(n, _DISK_IDX, dtype=np.int8)
    if n == 0:
        return device
    tape_idx = np.where(np.asarray(sizes) >= config.disk_threshold_bytes)[0]
    if tape_idx.size == 0:
        return device

    # Group per file: stable sort keeps time order inside each file.
    order = np.argsort(file_ids[tape_idx], kind="stable")
    tape_idx = tape_idx[order]
    fid = file_ids[tape_idx]
    t = times[tape_idx].astype(np.float64, copy=False)
    w = is_write[tape_idx]
    m = fid.size

    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(fid[1:], fid[:-1], out=first[1:])
    gap = np.empty(m, dtype=np.float64)
    gap[0] = np.inf
    np.subtract(t[1:], t[:-1], out=gap[1:])
    gap[first] = np.inf
    expired = gap > config.silo_residency

    # Batched RNG: one landing coin per write, one promote coin per read.
    # The promote coin only *matters* when the file is (or just became)
    # shelved -- exactly the events the scalar path draws it for -- so
    # drawing it unconditionally leaves the outcome law unchanged.
    coins = rng.random(m)
    w_coin = w & (coins < config.tape_write_shelf_fraction)
    promote = ~w & (coins < config.promote_on_read)

    # State after each event, solved as a gather from the last deciding
    # event (writes always decide; reads decide unless they are silo
    # holds, i.e. neither expired nor promoted).
    decides = w | expired | promote
    decided_state = np.where(w, w_coin, ~promote)
    last_decider = np.where(decides, np.arange(m, dtype=np.int64), -1)
    np.maximum.accumulate(last_decider, out=last_decider)
    shelf_after = decided_state[last_decider]

    shelf_before = np.empty(m, dtype=bool)
    shelf_before[0] = True
    shelf_before[1:] = shelf_after[:-1]
    shelf_before[first] = True  # unseen tape files start as shelved archive

    # Device: writes land by their coin; reads hit the silo only when the
    # file is silo-resident and still inside the residency window.
    on_shelf_event = np.where(w, w_coin, shelf_before | expired)
    out = np.where(on_shelf_event, _SHELF_IDX, _SILO_IDX).astype(np.int8)
    device[tape_idx] = out
    return device
