"""Analytic latency models for trace generation.

The discrete-event simulator in :mod:`repro.mss` produces latencies from
first principles (queueing + mounts + seeks); these closed-form samplers
exist so a standalone trace can carry plausible latency fields without a
full simulation.  Component means follow Section 5.1.1:

* disk: median 4 s with a long queueing tail (mean ~25-30 s);
* silo tape: disk-like queueing + ~8 s robot pick-and-mount + ~50 s seek;
* shelf tape: queueing + ~2 minute human mount (long tail: 10 % of manual
  mounts exceeded 400 s) + seek;
* writes see smaller seeks than reads (appends vs positioning).

Transfer rate: "Both the tapes and the disks can transfer at a peak rate of
3 MB/sec, but the observed rates are usually closer to 2 MB/sec."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.record import Device
from repro.util.units import MB


@dataclass(frozen=True)
class LatencyComponents:
    """Parameters of one device/direction latency distribution."""

    queue_median: float       # lognormal queueing delay median (seconds)
    queue_sigma: float
    mount_low: float          # uniform mount window (seconds)
    mount_high: float
    seek_mean: float          # exponential seek (seconds)
    backlog_mean: float       # extra exponential delay (operator backlog)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` startup latencies in seconds."""
        queue = rng.lognormal(np.log(self.queue_median), self.queue_sigma, n)
        mount = rng.uniform(self.mount_low, self.mount_high, n)
        seek = rng.exponential(self.seek_mean, n) if self.seek_mean > 0 else 0.0
        backlog = (
            rng.exponential(self.backlog_mean, n) if self.backlog_mean > 0 else 0.0
        )
        return queue + mount + seek + backlog

    def mean(self) -> float:
        """Analytic mean of the composed distribution."""
        queue_mean = self.queue_median * float(np.exp(self.queue_sigma ** 2 / 2.0))
        mount_mean = (self.mount_low + self.mount_high) / 2.0
        return queue_mean + mount_mean + self.seek_mean + self.backlog_mean


# (device, is_write) -> components.  Means target Table 3's seconds-to-
# first-byte: disk 32.5/25.4, silo 115.1/81.9, shelf 292.6/203.8.
_COMPONENTS = {
    # Disk: pure queueing; median ~4 s, heavy tail from busy spindles.
    (Device.MSS_DISK, False): LatencyComponents(4.0, 1.45, 0.0, 0.5, 0.0, 20.8),
    (Device.MSS_DISK, True): LatencyComponents(4.0, 1.35, 0.0, 0.5, 0.0, 15.2),
    # Silo: queueing + robot pick/mount (6-10 s) + tape seek.
    (Device.TAPE_SILO, False): LatencyComponents(6.0, 1.3, 6.0, 10.0, 55.0, 38.0),
    (Device.TAPE_SILO, True): LatencyComponents(6.0, 1.3, 6.0, 10.0, 25.0, 35.0),
    # Shelf: queueing + operator fetch-and-mount (~2-3 min, heavy tail:
    # the exponential seek+backlog pair puts ~10 % of reads past 400 s).
    (Device.TAPE_SHELF, False): LatencyComponents(10.0, 1.2, 100.0, 220.0, 40.0, 68.0),
    (Device.TAPE_SHELF, True): LatencyComponents(10.0, 1.2, 100.0, 220.0, 15.0, 8.0),
}

#: Effective transfer rate distribution: lognormal around 2 MB/s, clipped
#: to the 3 MB/s channel peak.
TRANSFER_RATE_MEDIAN = 2.0 * MB
TRANSFER_RATE_SIGMA = 0.25
TRANSFER_RATE_PEAK = 3.0 * MB
TRANSFER_FIXED_OVERHEAD = 0.05  # seconds of per-request protocol overhead


class AnalyticLatencyModel:
    """Samples startup latency and transfer time per reference."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def startup_latencies(
        self, device: Device, is_write: bool, n: int
    ) -> np.ndarray:
        """Draw ``n`` startup latencies for one device/direction."""
        try:
            components = _COMPONENTS[(device, is_write)]
        except KeyError as exc:
            raise ValueError(f"no latency model for {device}") from exc
        return components.sample(self._rng, n)

    def transfer_times(self, sizes: np.ndarray) -> np.ndarray:
        """Draw transfer durations for an array of byte sizes."""
        n = sizes.size
        rates = self._rng.lognormal(
            np.log(TRANSFER_RATE_MEDIAN), TRANSFER_RATE_SIGMA, n
        )
        rates = np.minimum(rates, TRANSFER_RATE_PEAK)
        return TRANSFER_FIXED_OVERHEAD + np.asarray(sizes, dtype=float) / rates

    @staticmethod
    def expected_mean(device: Device, is_write: bool) -> float:
        """Analytic mean startup latency for one device/direction."""
        return _COMPONENTS[(device, is_write)].mean()
