"""Day-of-week activity profiles (Figure 5).

"Read activity is lower on the weekends, since there are fewer researchers
around to initiate read requests.  Write requests, on the other hand,
experience little variation over the course of the week, as the Cray CPU
runs batch jobs all weekend. ... less data is transferred early Monday
morning than on any other day" (maintenance plus drained weekend queues).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.timeutil import MONDAY

#: Relative read intensity per day of week, 0 = Sunday (Figure 5 x-axis).
READ_DAY_FACTORS: Tuple[float, ...] = (0.48, 0.96, 1.06, 1.08, 1.08, 1.04, 0.55)

#: Relative write intensity per day of week: batch jobs run all weekend.
WRITE_DAY_FACTORS: Tuple[float, ...] = (0.97, 0.90, 1.02, 1.03, 1.03, 1.02, 0.99)

#: Early-Monday maintenance window: the Cray "might be taken down early on
#: Monday morning for maintenance", and weekend queues have drained.
MAINTENANCE_DAY = MONDAY
MAINTENANCE_END_HOUR = 8
MAINTENANCE_FACTOR = 0.45


@dataclass(frozen=True)
class WeeklyProfile:
    """Normalized day-of-week factors with the Monday-morning dip."""

    day_factors: Tuple[float, ...]
    maintenance_factor: float = MAINTENANCE_FACTOR

    def __post_init__(self) -> None:
        if len(self.day_factors) != 7:
            raise ValueError("a weekly profile needs exactly 7 factors")
        if any(f < 0 for f in self.day_factors):
            raise ValueError("day factors must be non-negative")

    def factor(self, day_of_week: int, hour: int = 12) -> float:
        """Relative intensity of (day, hour); day 0 = Sunday."""
        base = self.day_factors[day_of_week]
        if day_of_week == MAINTENANCE_DAY and hour < MAINTENANCE_END_HOUR:
            base *= self.maintenance_factor
        return float(base)

    def weekend_to_weekday(self) -> float:
        """Mean weekend factor over mean weekday factor."""
        arr = np.asarray(self.day_factors, dtype=float)
        weekend = (arr[0] + arr[6]) / 2.0
        weekday = arr[1:6].mean()
        if weekday == 0:
            return float("inf")
        return float(weekend / weekday)


READ_WEEKLY = WeeklyProfile(READ_DAY_FACTORS)
WRITE_WEEKLY = WeeklyProfile(WRITE_DAY_FACTORS, maintenance_factor=0.7)


def weekly_for(is_write: bool) -> WeeklyProfile:
    """The calibrated weekly profile for one direction."""
    return WRITE_WEEKLY if is_write else READ_WEEKLY
