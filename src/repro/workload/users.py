"""User population model.

NCAR had about 4,000 user accounts (Section 5.1: "each of the 4,000
users").  Interactive scientists drive reads during working hours; a much
smaller set of batch production accounts generates the steady write stream.
Activity is Zipf-skewed -- a few heavy groups dominate, as in any shared
computing centre.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import paper
from repro.util.stats import zipf_weights

#: Skew of user activity (rank-frequency exponent).
USER_ACTIVITY_SKEW = 0.9

#: Batch production accounts as a fraction of the population.
BATCH_ACCOUNT_FRACTION = 0.08

#: Probability that a read is issued by the file's owning group rather
#: than a collaborator.
OWNER_READ_PROBABILITY = 0.7


@dataclass
class UserPopulation:
    """Interactive readers and batch writers with Zipf activity."""

    n_users: int = paper.USER_COUNT
    seed_rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError("need at least two users")
        rng = self.seed_rng or np.random.default_rng(0)
        n_batch = max(1, int(round(self.n_users * BATCH_ACCOUNT_FRACTION)))
        ids = rng.permutation(self.n_users)
        self.batch_ids = np.sort(ids[:n_batch])
        self.interactive_ids = np.sort(ids[n_batch:])
        self._batch_weights = zipf_weights(self.batch_ids.size, USER_ACTIVITY_SKEW)
        self._interactive_weights = zipf_weights(
            self.interactive_ids.size, USER_ACTIVITY_SKEW
        )

    @staticmethod
    def scaled(scale: float, rng: Optional[np.random.Generator] = None) -> "UserPopulation":
        """Population scaled with the workload (but never below 50 users)."""
        n = max(50, int(round(paper.USER_COUNT * scale)))
        return UserPopulation(n_users=n, seed_rng=rng)

    def sample_writers(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Batch accounts for ``n`` write sessions."""
        if n == 0:
            return np.empty(0, dtype=np.int32)
        picks = rng.choice(self.batch_ids.size, size=n, p=self._batch_weights)
        return self.batch_ids[picks].astype(np.int32)

    def sample_readers(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Interactive users for ``n`` read sessions."""
        if n == 0:
            return np.empty(0, dtype=np.int32)
        picks = rng.choice(
            self.interactive_ids.size, size=n, p=self._interactive_weights
        )
        return self.interactive_ids[picks].astype(np.int32)

    def owner_of_directory(self, dir_id: int) -> int:
        """Deterministic owning user for a directory subtree."""
        return int(self.interactive_ids[dir_id % self.interactive_ids.size])

    def owners_of_directories(self, dir_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of_directory` for an id array."""
        idx = np.asarray(dir_ids, dtype=np.int64) % self.interactive_ids.size
        return self.interactive_ids[idx].astype(np.int32)
