"""Combined arrival-intensity model over the whole trace period.

Multiplies the hour-of-day (Figure 4), day-of-week (Figure 5) and secular
(Figure 6) profiles -- plus the holiday dips -- into one weight per trace
hour and direction.  The workload generator samples file birth times from
these weights and uses the per-day conditionals to place follow-on
references at realistic hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.util.timeutil import TraceCalendar
from repro.util.units import DAY, HOUR
from repro.workload.diurnal import HourlyProfile, profile_for
from repro.workload.trend import SecularTrend, trend_for
from repro.workload.weekly import WeeklyProfile, weekly_for


@dataclass
class IntensityModel:
    """Per-hour arrival weights for one direction over the trace span."""

    is_write: bool
    duration_seconds: float
    hourly: Optional[HourlyProfile] = None
    weekly: Optional[WeeklyProfile] = None
    trend: Optional[SecularTrend] = None
    calendar: Optional[TraceCalendar] = None

    def __post_init__(self) -> None:
        self.hourly = self.hourly or profile_for(self.is_write)
        self.weekly = self.weekly or weekly_for(self.is_write)
        self.trend = self.trend or trend_for(self.is_write)
        self.calendar = self.calendar or TraceCalendar()
        self._n_days = int(np.ceil(self.duration_seconds / DAY))
        self._hour_weights = self._build_hour_weights()

    def _build_hour_weights(self) -> np.ndarray:
        """Weight of every trace hour (n_days x 24, flattened)."""
        cal = self.calendar
        hourly_p = np.asarray(self.hourly.weights, dtype=float)
        weights = np.empty(self._n_days * 24, dtype=float)
        for day in range(self._n_days):
            day_start = day * DAY
            dow = cal.day_of_week(day_start)
            week = cal.week_of_trace(day_start)
            holiday = cal.is_holiday(day_start)
            secular = self.trend.week_factor(week) * self.trend.holiday_factor(holiday)
            for hour in range(24):
                day_factor = self.weekly.factor(dow, hour)
                weights[day * 24 + hour] = hourly_p[hour] * day_factor * secular
        total = weights.sum()
        if total <= 0:
            raise ValueError("intensity collapsed to zero everywhere")
        return weights

    # ------------------------------------------------------------------
    # Sampling

    def sample_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` timestamps distributed by the intensity."""
        if n == 0:
            return np.empty(0)
        probabilities = self._hour_weights / self._hour_weights.sum()
        hour_bins = rng.choice(self._hour_weights.size, size=n, p=probabilities)
        offsets = rng.random(n) * HOUR
        times = hour_bins * HOUR + offsets
        return np.minimum(times, self.duration_seconds - 1.0)

    def day_factor(self, sim_time: float) -> float:
        """Day-level relative intensity at an instant (mean-normalized).

        Used for the acceptance step that shifts chain events off quiet
        days (weekends/holidays for reads); excludes the hour shape so a
        night-time tentative event is not double-penalized.
        """
        cal = self.calendar
        dow = cal.day_of_week(sim_time)
        week = cal.week_of_trace(sim_time)
        holiday = cal.is_holiday(sim_time)
        factor = self.weekly.day_factors[dow]
        factor *= self.trend.holiday_factor(holiday)
        return float(factor)

    def hour_weights_for_day(self, sim_time: float) -> np.ndarray:
        """Conditional hour-of-day probabilities for the day containing
        ``sim_time`` (includes the Monday-morning maintenance window)."""
        return self._dow_hour_probabilities(self.calendar.day_of_week(sim_time))

    def hour_probabilities_for_dow(self, dow: int) -> np.ndarray:
        """Conditional hour-of-day probabilities for one day of week."""
        if not 0 <= dow <= 6:
            raise ValueError("day of week must be in 0..6")
        return self._dow_hour_probabilities(dow)

    def _dow_hour_probabilities(self, dow: int) -> np.ndarray:
        """Cached conditional hour profile for one day of week."""
        cached = getattr(self, "_dow_cache", None)
        if cached is None:
            cached = {}
            self._dow_cache = cached
        if dow not in cached:
            weights = np.asarray(self.hourly.weights, dtype=float).copy()
            base = max(self.weekly.day_factors[dow], 1e-12)
            for hour in range(24):
                weights[hour] *= self.weekly.factor(dow, hour) / base
            cached[dow] = weights / weights.sum()
        return cached[dow]

    def redraw_hours(
        self, rng: np.random.Generator, times: np.ndarray
    ) -> np.ndarray:
        """Replace the hour-of-day of each timestamp by one drawn from that
        day's conditional profile, keeping the day fixed."""
        if times.size == 0:
            return times
        day_starts = (times // DAY) * DAY
        # The trace epoch is a Monday (python weekday 0 -> paper dow 1).
        dows = ((day_starts // DAY).astype(int) % 7 + 1) % 7
        out = np.empty_like(times)
        for dow in range(7):
            mask = dows == dow
            count = int(mask.sum())
            if count == 0:
                continue
            hours = rng.choice(24, size=count, p=self._dow_hour_probabilities(dow))
            out[mask] = day_starts[mask] + hours * HOUR + rng.random(count) * HOUR
        return np.minimum(out, self.duration_seconds - 1.0)

    # ------------------------------------------------------------------
    # Introspection used by tests and the periodicity analysis

    def hour_weights(self) -> np.ndarray:
        """Copy of the full per-hour weight vector."""
        return self._hour_weights.copy()

    def max_day_factor(self) -> float:
        """Largest day-level factor over the trace (acceptance normalizer)."""
        factors = [self.day_factor(day * DAY) for day in range(self._n_days)]
        return max(factors)


class IntensityPair:
    """Read and write intensity models built once and shared."""

    def __init__(self, duration_seconds: float) -> None:
        self.read = IntensityModel(is_write=False, duration_seconds=duration_seconds)
        self.write = IntensityModel(is_write=True, duration_seconds=duration_seconds)
        self._cache: Dict[bool, IntensityModel] = {True: self.write, False: self.read}

    def for_direction(self, is_write: bool) -> IntensityModel:
        """The model for one direction."""
        return self._cache[is_write]
