"""The synthetic-trace generator.

Pipeline (each stage keyed to the statistic it reproduces):

1. **Namespace** -- files, sizes, directories (Table 4, Figures 11-12).
2. **Lifecycles** -- deduped read/write counts per file (Figure 8).
3. **Event chains** -- per-file event times: birth sampled from the
   direction's intensity (Figures 4-6), follow-on events by gap mixture
   (Figure 9), day-shift acceptance onto busy days, hour redraw onto the
   diurnal profile.
4. **Bursts** -- batch-script re-requests inside the 8-hour window
   (Section 6's "one third of all requests").
5. **Placement** -- disk / silo / shelf per reference (Table 3 shares).
6. **Sessions** -- within-hour clustering and user assignment (Figure 7).
7. **Errors** -- 4.76 % failed references (Section 5.1).
8. **Latencies** -- analytic device models (Table 3 / Figure 3), unless
   the trace will be replayed through the DES instead.

The result is a :class:`SyntheticTrace` holding compact numpy arrays;
records are materialized lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.core import paper
from repro.namespace.dirtree import generate_namespace
from repro.namespace.model import Namespace
from repro.trace.errors import ErrorKind
from repro.trace.record import Device, TraceRecord
from repro.trace.writer import TraceWriter
from repro.util.rng import SeedSequenceFactory
from repro.util.units import DAY
from repro.workload.clustering import (
    expand_bursts,
    pack_sessions,
    pack_sessions_scalar,
)
from repro.workload.config import WorkloadConfig
from repro.workload.intensity import IntensityPair
from repro.workload.latency import AnalyticLatencyModel
from repro.workload.lifecycle import LifecycleSample, draw_lifecycles
from repro.workload.placement import (
    DEVICE_INDEX,
    DevicePlacement,
    assign_devices_batch,
)
from repro.workload.profiler import StageProfiler
from repro.workload.users import OWNER_READ_PROBABILITY, UserPopulation

_DEVICE_INDEX = DEVICE_INDEX
_INDEX_DEVICE = {i: device for device, i in _DEVICE_INDEX.items()}

#: Version of the generation pipeline.  Part of every trace-store cache
#: key: bump it whenever a change alters the stream a fixed
#: :class:`WorkloadConfig` produces, and every cached store invalidates
#: at once (see :mod:`repro.engine.store`).  v3: placement, session
#: packing and the chain hour redraw went array-level, which reorders
#: RNG consumption (statistically equivalent, bit-different streams).
GENERATOR_VERSION = 3

#: Rounds of +1 day shifting before an event is accepted unconditionally.
_MAX_DAY_SHIFTS = 28


@dataclass
class SyntheticTrace:
    """A generated trace: parallel arrays plus the namespace behind it.

    ``file_ids`` are indices into ``namespace.files``; negative ids mark
    references to files that never existed (the NO_SUCH_FILE errors).
    """

    config: WorkloadConfig
    namespace: Namespace
    times: np.ndarray          # float64 seconds, sorted nondecreasing
    file_ids: np.ndarray       # int64
    is_write: np.ndarray       # bool
    device_idx: np.ndarray     # int8 index into Device.storage_devices()
    sizes: np.ndarray          # int64 bytes
    users: np.ndarray          # int32
    errors: np.ndarray         # int8 ErrorKind values
    latencies: np.ndarray      # float64 seconds
    transfers: np.ndarray      # float64 seconds
    lifecycles: LifecycleSample
    #: Wall-clock seconds per generation stage (``repro report --profile``
    #: and ``repro bench`` print this table).
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        """Total raw references including errors."""
        return int(self.times.size)

    def device_of(self, index: int) -> Device:
        """Storage device of one event."""
        return _INDEX_DEVICE[int(self.device_idx[index])]

    def path_of(self, index: int) -> str:
        """MSS path of one event (synthesized for never-existed files)."""
        return self.namespace.path_of(int(self.file_ids[index]))

    def iter_batches(self, chunk_size: int = 65_536) -> Iterator["EventBatch"]:
        """Yield the trace as columnar :class:`EventBatch` chunks.

        This is the engine-facing view: zero-copy slices of the trace's
        arrays, carrying every column (including users and latencies) so
        downstream layers never need per-record objects.
        """
        from repro.engine.batch import EventBatch

        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for start in range(0, self.n_events, chunk_size):
            stop = start + chunk_size
            yield EventBatch(
                file_id=self.file_ids[start:stop],
                size=self.sizes[start:stop],
                time=self.times[start:stop],
                is_write=self.is_write[start:stop],
                device=self.device_idx[start:stop],
                error=self.errors[start:stop],
                user=self.users[start:stop],
                latency=self.latencies[start:stop],
                transfer=self.transfers[start:stop],
            )

    def iter_records(self) -> Iterator[TraceRecord]:
        """Yield the trace as :class:`TraceRecord` objects, in time order.

        Lazy record views over the columnar batches -- the engine's
        adapter owns the row-materialization logic.
        """
        from repro.engine.records import records_from_batches

        return records_from_batches(self.iter_batches(), self.namespace)

    def records(self) -> List[TraceRecord]:
        """Materialize the full record list (use iter_records at scale)."""
        return list(self.iter_records())

    def write(self, path, comments: Optional[dict] = None) -> int:
        """Write the trace to an ASCII trace file; returns record count."""
        meta = {"generator": "repro.workload", "scale": self.config.scale,
                "seed": self.config.seed}
        meta.update(comments or {})
        with TraceWriter(path, comments=meta) as writer:
            return writer.write_all(self.iter_records())


def generate_trace(
    config: Optional[WorkloadConfig] = None,
    profiler: Optional[StageProfiler] = None,
) -> SyntheticTrace:
    """Generate a synthetic NCAR trace from a configuration.

    Pass a :class:`~repro.workload.profiler.StageProfiler` to collect
    per-stage wall time; the table also lands on the returned trace's
    :attr:`~SyntheticTrace.stage_seconds`.
    """
    config = config or WorkloadConfig()
    seeds = SeedSequenceFactory(config.seed)
    prof = profiler if profiler is not None else StageProfiler()

    with prof.stage("namespace"):
        namespace = generate_namespace(
            config.namespace_profile(), rng=seeds.named("namespace")
        )
    with prof.stage("lifecycles"):
        n_files = namespace.file_count
        large_mask = (
            _file_size_array(namespace) >= config.placement.disk_threshold_bytes
        )
        lifecycles = draw_lifecycles(seeds.named("lifecycle"), n_files, large_mask)
        _apply_history_atom(config, namespace, lifecycles, seeds.named("atom"))
        _shrink_preexisting_archives(
            config, namespace, lifecycles, seeds.named("shrink")
        )

    with prof.stage("chains"):
        times, file_idx, event_is_write = _build_event_chains(
            config, lifecycles, seeds.named("chains"), large_mask, namespace
        )
    with prof.stage("bursts"):
        times, event_is_write, file_idx = expand_bursts(
            seeds.named("bursts"), times, event_is_write, file_idx,
            config.bursts, config.duration_seconds,
        )

        order = np.argsort(times, kind="stable")
        times = times[order]
        file_idx = file_idx[order]
        event_is_write = event_is_write[order]

    with prof.stage("placement"):
        sizes = _file_size_array(namespace)[file_idx]
        device_idx = _assign_devices(
            config, lifecycles, namespace, times, file_idx, event_is_write,
            sizes, seeds.named("placement"),
        )

    with prof.stage("sessions"):
        file_dirs = _file_dir_array(namespace)
        times, session_ids = pack_sessions(
            seeds.named("sessions"), times, config.sessions,
            group_keys=file_dirs[file_idx],
        )
    with prof.stage("users"):
        users = _assign_users(
            file_dirs, file_idx, event_is_write, session_ids,
            config, seeds.named("users"),
        )

    with prof.stage("errors"):
        errors = np.zeros(times.size, dtype=np.int8)
        (times, file_idx, event_is_write, device_idx, sizes, users, errors) = (
            _inject_errors(
                config, namespace, seeds.named("errors"),
                times, file_idx, event_is_write, device_idx, sizes, users,
                errors,
            )
        )

        order = np.argsort(times, kind="stable")
        times = times[order]
        file_idx = file_idx[order]
        event_is_write = event_is_write[order]
        device_idx = device_idx[order]
        sizes = sizes[order]
        users = users[order]
        errors = errors[order]

    with prof.stage("latencies"):
        latencies, transfers = _fill_latencies(
            config, seeds.named("latency"), event_is_write, device_idx, sizes,
            errors,
        )

    return SyntheticTrace(
        config=config,
        namespace=namespace,
        times=times,
        file_ids=file_idx,
        is_write=event_is_write,
        device_idx=device_idx,
        sizes=sizes,
        users=users,
        errors=errors,
        latencies=latencies,
        transfers=transfers,
        lifecycles=lifecycles,
        stage_seconds=dict(prof.stages),
    )


def generate_batches(
    config: Optional[WorkloadConfig] = None, chunk_size: int = 65_536
) -> Iterator["EventBatch"]:
    """Generate a trace and stream it as :class:`EventBatch` chunks.

    The batch producer the engine pipeline plugs into directly: no record
    objects are ever built, and consumers see the stream chunk by chunk.
    """
    yield from generate_trace(config).iter_batches(chunk_size=chunk_size)


# ---------------------------------------------------------------------------
# Stage helpers


def _apply_history_atom(
    config: WorkloadConfig,
    namespace: Namespace,
    lifecycles: LifecycleSample,
    rng: np.random.Generator,
) -> None:
    """Give a slice of write-once files the ~8 MB standard-history size.

    Produces Figure 10's "small jump in file writes at approximately 8 MB":
    climate-model history files are written once at a standard size and
    rarely read back.
    """
    from repro.workload.lifecycle import Archetype

    candidates = np.where(
        lifecycles.archetypes == int(Archetype.WRITE_ONCE_NEVER_READ)
    )[0]
    if candidates.size == 0:
        return
    chosen = candidates[rng.random(candidates.size) < config.history_atom_fraction]
    jitter = rng.normal(1.0, 0.03, size=chosen.size)
    for idx, j in zip(chosen, jitter):
        namespace.files[int(idx)].size = max(1, int(config.history_atom_bytes * j))


def _shrink_preexisting_archives(
    config: WorkloadConfig,
    namespace: Namespace,
    lifecycles: LifecycleSample,
    rng: np.random.Generator,
) -> None:
    """Shrink tape-class files that pre-date the trace.

    The shelved archive was written in earlier years when files were
    smaller, which is why Table 3's shelf reads average 47 MB against the
    silo's 80 MB.  Sizes stay above the 30 MB threshold so the files remain
    tape-class.
    """
    threshold = config.placement.disk_threshold_bytes
    sizes = _file_size_array(namespace)
    targets = np.where(lifecycles.preexisting & (sizes >= threshold))[0]
    if targets.size == 0:
        return
    factors = rng.lognormal(np.log(0.55), 0.30, size=targets.size)
    for idx, factor in zip(targets, factors):
        entry = namespace.files[int(idx)]
        entry.size = int(min(max(entry.size * factor, threshold), entry.size))


def _file_size_array(namespace: Namespace) -> np.ndarray:
    """File sizes as an int64 array indexed by file id."""
    return np.fromiter(
        (f.size for f in namespace.files), dtype=np.int64, count=namespace.file_count
    )


def _file_dir_array(namespace: Namespace) -> np.ndarray:
    """Directory ids as an int64 array indexed by file id."""
    return np.fromiter(
        (f.dir_id for f in namespace.files),
        dtype=np.int64,
        count=namespace.file_count,
    )


def _day_factor_table(
    intensities: IntensityPair, is_write: bool, n_days: int
) -> np.ndarray:
    """Relative day-level intensity per trace day, normalized to max 1."""
    model = intensities.for_direction(is_write)
    factors = np.array(
        [model.day_factor(day * DAY + DAY / 2) for day in range(n_days)]
    )
    peak = factors.max()
    if peak <= 0:
        raise ValueError("day factors collapsed to zero")
    return factors / peak


#: Mean files per birth run and mean spacing between run members.
_RUN_LENGTH_MEAN = 12.0
_RUN_SPACING_MEAN = 240.0


def _sample_run_births(
    config: WorkloadConfig,
    namespace: Namespace,
    first_is_write: np.ndarray,
    intensities: IntensityPair,
    rng: np.random.Generator,
) -> np.ndarray:
    """Birth time per file, correlated in sequence runs per directory."""
    births = np.empty(namespace.file_count)
    horizon = config.duration_seconds - 1.0
    for directory in namespace.directories:
        if not directory.file_ids:
            continue
        for direction in (True, False):
            members = [
                fid for fid in directory.file_ids
                if bool(first_is_write[fid]) == direction
            ]
            model = intensities.for_direction(direction)
            index = 0
            while index < len(members):
                run = min(
                    int(rng.geometric(1.0 / _RUN_LENGTH_MEAN)),
                    len(members) - index,
                )
                base = float(model.sample_times(rng, 1)[0])
                offsets = np.cumsum(rng.exponential(_RUN_SPACING_MEAN, size=run))
                for j in range(run):
                    births[members[index + j]] = min(base + offsets[j], horizon)
                index += run
    return births


def _hour_cumulative_tables(intensities: IntensityPair) -> np.ndarray:
    """Cumulative hour-of-day profiles, one row per (direction, dow).

    Row ``int(direction) * 7 + dow`` holds the normalized cumulative
    distribution over the 24 hours, ready for
    :func:`_draw_hours_grouped`'s one-shot inverse-CDF lookup.
    """
    cum = np.empty((14, 24))
    for direction in (False, True):
        model = intensities.for_direction(direction)
        for dow in range(7):
            row = np.cumsum(model.hour_probabilities_for_dow(dow))
            cum[int(direction) * 7 + dow] = row / row[-1]
    return cum


def _draw_hours_grouped(
    rng: np.random.Generator,
    hour_cum: np.ndarray,
    dirs: np.ndarray,
    dows: np.ndarray,
) -> np.ndarray:
    """Fractional hour-of-day per event from its (direction, dow) profile.

    Equivalent to one ``rng.choice(24, p=...)`` per (direction, dow)
    group plus a uniform within-hour offset, but drawn for all groups at
    once: each row's cumulative table is offset by its row index, so a
    single ``np.searchsorted`` over the flattened tables inverts every
    event's own CDF.
    """
    n = dirs.size
    if n == 0:
        return np.empty(0)
    n_rows, n_hours = hour_cum.shape
    flat = (hour_cum + np.arange(n_rows)[:, None]).ravel()
    row = dirs.astype(np.int64) * 7 + dows
    u = rng.random(n)
    drawn = np.searchsorted(flat, u + row, side="right") - row * n_hours
    np.clip(drawn, 0, n_hours - 1, out=drawn)
    return drawn + rng.random(n)


def _build_event_chains(
    config: WorkloadConfig,
    lifecycles: LifecycleSample,
    rng: np.random.Generator,
    large_mask: np.ndarray,
    namespace: Namespace,
):
    """Deduped event times, file indices and directions for every file."""
    writes = lifecycles.write_counts.astype(np.int64)
    reads = lifecycles.read_counts.astype(np.int64)
    counts = writes + reads
    n_files = counts.size
    total = int(counts.sum())

    file_idx = np.repeat(np.arange(n_files, dtype=np.int64), counts)
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    slots = np.arange(total, dtype=np.int64) - seg_starts[file_idx]
    first_mask = slots == 0

    intensities = IntensityPair(config.duration_seconds)

    # Birth times: write-born files follow the write intensity, read-only
    # (pre-existing) files follow the read intensity.  Births come in
    # *runs*: a model job writes h0001.nc, h0002.nc, ... minutes apart
    # (and an archive scan first-reads old files the same way), which is
    # what makes sequential prefetch and cartridge affinity meaningful
    # ("a researcher interested in day 1 ... will usually be interested
    # in day 2", Section 5.2.1).
    first_is_write = writes > 0
    births = _sample_run_births(
        config, namespace, first_is_write, intensities, rng
    )

    # Directions: the first event of a written file is its creating write;
    # the remaining writes and reads interleave in random order.
    is_write = np.zeros(total, dtype=bool)
    is_write[first_mask] = first_is_write
    extra_writes = np.maximum(writes - 1, 0)
    nf_positions = np.where(~first_mask)[0]
    if nf_positions.size:
        nf_files = file_idx[nf_positions]
        keys = rng.random(nf_positions.size)
        order = np.lexsort((keys, nf_files))
        sorted_nf = nf_positions[order]
        per_file_nf = (counts - 1).astype(np.int64)
        run_starts = np.concatenate([[0], np.cumsum(per_file_nf)[:-1]])
        present = per_file_nf > 0
        ranks = (
            np.arange(sorted_nf.size, dtype=np.int64)
            - np.repeat(run_starts[present], per_file_nf[present])
        )
        thresholds = np.repeat(extra_writes[present], per_file_nf[present])
        is_write[sorted_nf] = ranks < thresholds

    # Chain times, slot by slot: each follow-on event lands the same day
    # (later 8-hour block, or a short write->read turnaround) or 1 + tail
    # days later at a profile-drawn hour, skipping quiet days.
    times = np.empty(total)
    times[seg_starts] = births
    n_days = int(np.ceil(config.duration_seconds / DAY))
    day_tables = {
        direction: _day_factor_table(intensities, direction, n_days)
        for direction in (False, True)
    }
    hour_cum = _hour_cumulative_tables(intensities)
    g = config.gaps
    prev_time = births.copy()
    max_count = int(counts.max()) if counts.size else 0
    block_len = 8.0 * 3600.0
    for s in range(1, max_count):
        active = np.where(counts > s)[0]
        if active.size == 0:
            break
        pos = seg_starts[active] + s
        prev = prev_time[active]
        cur_w = is_write[pos]
        cross = cur_w != is_write[pos - 1]
        large = large_mask[active]
        p0 = np.where(
            cross, g.p0_cross, np.where(large, g.p0_same_large, g.p0_same_small)
        )
        same_day = rng.random(active.size) < p0
        new_times = np.empty(active.size)

        sd = np.where(same_day)[0]
        fallback = np.empty(0, dtype=np.int64)
        if sd.size:
            prev_sd = prev[sd]
            day_start = (prev_sd // DAY) * DAY
            frac = prev_sd - day_start
            turnaround = rng.lognormal(
                np.log(g.cross_same_day_median), g.cross_same_day_sigma, sd.size
            )
            t_cross = prev_sd + turnaround
            block = (frac // block_len).astype(np.int64)
            next_block_start = day_start + (block + 1) * block_len
            t_same = next_block_start + rng.random(sd.size) * block_len
            candidate = np.where(cross[sd], t_cross, t_same)
            overflow = candidate >= day_start + DAY
            ok = ~overflow
            new_times[sd[ok]] = candidate[ok]
            fallback = sd[overflow]

        nd = np.concatenate([np.where(~same_day)[0], fallback])
        if nd.size:
            n_fallback = fallback.size
            q = np.where(
                cross[nd],
                g.q_short_cross,
                np.where(large[nd], g.q_short_large, g.q_short_small),
            )
            short = rng.random(nd.size) < q
            delta_days = np.empty(nd.size, dtype=np.int64)
            n_short = int(short.sum())
            delta_days[short] = rng.geometric(g.geom_p, n_short)
            delta_days[~short] = np.ceil(
                rng.lognormal(np.log(g.long_median_days), g.long_sigma, nd.size - n_short)
            ).astype(np.int64)
            if n_fallback:
                # Same-day attempts that ran past midnight move to tomorrow.
                delta_days[-n_fallback:] = 1
            day_idx = (prev[nd] // DAY).astype(np.int64) + delta_days
            dirs_nd = cur_w[nd]
            for direction in (False, True):
                table = day_tables[direction]
                pend = np.where(dirs_nd == direction)[0]
                for _ in range(_MAX_DAY_SHIFTS):
                    if pend.size == 0:
                        break
                    clamped = np.minimum(day_idx[pend], n_days - 1)
                    accept = rng.random(pend.size) < table[clamped]
                    rejected = pend[~accept]
                    # Spread deferred demand over the following week rather
                    # than piling it onto the first day back: a scientist
                    # away for Christmas does not do two weeks of reading
                    # on January 2nd (keeps the Figure 6 dips visible).
                    day_idx[rejected] += rng.integers(1, 8, size=rejected.size)
                    pend = rejected
            dows = ((day_idx % 7) + 1) % 7  # trace epoch is a Monday
            hours = _draw_hours_grouped(rng, hour_cum, dirs_nd, dows)
            new_times[nd] = day_idx * DAY + hours * (DAY / 24.0)

        times[pos] = new_times
        prev_time[active] = new_times

    keep = times < config.duration_seconds
    return times[keep], file_idx[keep], is_write[keep]


def _assign_devices(
    config: WorkloadConfig,
    lifecycles: LifecycleSample,
    namespace: Namespace,
    times: np.ndarray,
    file_idx: np.ndarray,
    is_write: np.ndarray,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Storage level per event (requires time-sorted events).

    One :func:`~repro.workload.placement.assign_devices_batch` call over
    the whole stream; the per-event reference path lives on as
    :func:`_assign_devices_scalar` for the equivalence tests and the
    cold-generation benchmark baseline.
    """
    return assign_devices_batch(
        rng, config.placement, file_idx, sizes, times, is_write
    )


def _assign_devices_scalar(
    config: WorkloadConfig,
    lifecycles: LifecycleSample,
    namespace: Namespace,
    times: np.ndarray,
    file_idx: np.ndarray,
    is_write: np.ndarray,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """The seed's per-event placement loop (reference implementation)."""
    placement = DevicePlacement(config.placement)
    size_array = _file_size_array(namespace)
    for fid in np.where(lifecycles.preexisting)[0]:
        placement.register_preexisting(rng, int(fid), int(size_array[fid]))
    device_idx = np.empty(times.size, dtype=np.int8)
    for i in range(times.size):
        device = placement.assign(
            rng,
            int(file_idx[i]),
            int(sizes[i]),
            float(times[i]),
            bool(is_write[i]),
        )
        device_idx[i] = _DEVICE_INDEX[device]
    return device_idx


def time_generation_stage_paths(trace: SyntheticTrace, rounds: int = 1) -> dict:
    """Best-of-``rounds`` wall time of scalar vs vectorized placement and
    session packing on one trace's good-event stream.

    The shared measurement harness behind ``repro bench`` and
    ``benchmarks/test_generate_throughput.py``: both compare the seed's
    per-event reference implementations against the array-level stages
    on the same realistic time-sorted stream.  Each path draws from its
    own named seed, so repeated rounds are deterministic.  Returns the
    four timings plus the outputs (device arrays, packed times) for
    statistical-equivalence checks.
    """
    import time

    config = trace.config
    good = trace.errors == 0
    times = trace.times[good]
    file_idx = trace.file_ids[good]
    sizes = trace.sizes[good]
    is_write = trace.is_write[good]
    group_keys = _file_dir_array(trace.namespace)[file_idx]
    seeds = SeedSequenceFactory(config.seed)

    def best_of(fn):
        best = float("inf")
        result = None
        for _ in range(max(rounds, 1)):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    scalar_placement, scalar_devices = best_of(lambda: _assign_devices_scalar(
        config, trace.lifecycles, trace.namespace, times, file_idx,
        is_write, sizes, seeds.named("p-scalar"),
    ))
    vector_placement, vector_devices = best_of(lambda: _assign_devices(
        config, trace.lifecycles, trace.namespace, times, file_idx,
        is_write, sizes, seeds.named("p-vector"),
    ))
    scalar_sessions, scalar_packed = best_of(lambda: pack_sessions_scalar(
        seeds.named("s-scalar"), times, config.sessions, group_keys=group_keys,
    ))
    vector_sessions, vector_packed = best_of(lambda: pack_sessions(
        seeds.named("s-vector"), times, config.sessions, group_keys=group_keys,
    ))
    scalar_seconds = scalar_placement + scalar_sessions
    vector_seconds = vector_placement + vector_sessions
    return {
        "n_events": int(times.size),
        "times": times,
        "scalar_placement_seconds": scalar_placement,
        "vector_placement_seconds": vector_placement,
        "scalar_sessions_seconds": scalar_sessions,
        "vector_sessions_seconds": vector_sessions,
        "speedup": (
            scalar_seconds / vector_seconds if vector_seconds else float("inf")
        ),
        "scalar_devices": scalar_devices,
        "vector_devices": vector_devices,
        "scalar_packed_times": scalar_packed[0],
        "vector_packed_times": vector_packed[0],
    }


def _assign_users(
    file_dirs: np.ndarray,
    file_idx: np.ndarray,
    is_write: np.ndarray,
    session_ids: np.ndarray,
    config: WorkloadConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """One user per session: batch accounts write, scientists read."""
    population = UserPopulation.scaled(config.scale, rng=rng)
    users = np.empty(file_idx.size, dtype=np.int32)
    if file_idx.size == 0:
        return users
    unique_sessions, inverse = np.unique(session_ids, return_inverse=True)
    n_sessions = unique_sessions.size
    # Decide each session's flavour from its first event (the smallest
    # event index per session; unbuffered ufunc.at has guaranteed
    # semantics for duplicate indices, unlike fancy assignment).
    first_event = np.full(n_sessions, file_idx.size, dtype=np.int64)
    np.minimum.at(first_event, inverse, np.arange(file_idx.size, dtype=np.int64))
    session_is_write = is_write[first_event]
    writer_draws = population.sample_writers(rng, n_sessions)
    reader_draws = population.sample_readers(rng, n_sessions)
    owner_coin = rng.random(n_sessions) < OWNER_READ_PROBABILITY
    owners = population.owners_of_directories(file_dirs[file_idx[first_event]])
    session_users = np.where(
        session_is_write,
        writer_draws,
        np.where(owner_coin, owners, reader_draws),
    ).astype(np.int32)
    users[:] = session_users[inverse]
    return users


def _inject_errors(
    config: WorkloadConfig,
    namespace: Namespace,
    rng: np.random.Generator,
    times: np.ndarray,
    file_idx: np.ndarray,
    is_write: np.ndarray,
    device_idx: np.ndarray,
    sizes: np.ndarray,
    users: np.ndarray,
    errors: np.ndarray,
):
    """Add failed references so errors are ERROR_FRACTION of raw refs."""
    e = config.errors
    n_good = times.size
    n_err = int(round(n_good * e.error_fraction / (1.0 - e.error_fraction)))
    if n_err == 0:
        return times, file_idx, is_write, device_idx, sizes, users, errors

    intensities = IntensityPair(config.duration_seconds)
    err_times = intensities.read.sample_times(rng, n_err)
    kinds = rng.choice(
        [
            int(ErrorKind.NO_SUCH_FILE),
            int(ErrorKind.MEDIA_ERROR),
            int(ErrorKind.PREMATURE_TERMINATION),
            int(ErrorKind.OTHER),
        ],
        size=n_err,
        p=[
            e.no_such_file_share,
            e.media_error_share,
            e.premature_share,
            1.0 - e.no_such_file_share - e.media_error_share - e.premature_share,
        ],
    ).astype(np.int8)
    # Failed requests are mostly users asking for files that never existed,
    # which are read attempts against disk (the MSCP looks there first).
    err_is_write = rng.random(n_err) < 0.15
    shares = [paper.DEVICE_REFERENCE_SHARES[d] for d in Device.storage_devices()]
    shares = np.asarray(shares) / sum(shares)
    err_devices = rng.choice(len(shares), size=n_err, p=shares).astype(np.int8)
    err_files = np.empty(n_err, dtype=np.int64)
    err_sizes = np.zeros(n_err, dtype=np.int64)
    real_error = kinds != int(ErrorKind.NO_SUCH_FILE)
    n_real = int(real_error.sum())
    if n_real and namespace.file_count:
        picks = rng.integers(0, namespace.file_count, size=n_real)
        err_files[real_error] = picks
        err_sizes[real_error] = _file_size_array(namespace)[picks]
    err_files[~real_error] = -(np.arange(int((~real_error).sum()), dtype=np.int64) + 1)
    population = UserPopulation.scaled(config.scale, rng=rng)
    err_users = population.sample_readers(rng, n_err)

    return (
        np.concatenate([times, err_times]),
        np.concatenate([file_idx, err_files]),
        np.concatenate([is_write, err_is_write]),
        np.concatenate([device_idx, err_devices]),
        np.concatenate([sizes, err_sizes]),
        np.concatenate([users, err_users]),
        np.concatenate([errors, kinds]),
    )


def _fill_latencies(
    config: WorkloadConfig,
    rng: np.random.Generator,
    is_write: np.ndarray,
    device_idx: np.ndarray,
    sizes: np.ndarray,
    errors: np.ndarray,
):
    """Startup latency and transfer time per event."""
    n = is_write.size
    latencies = np.zeros(n)
    transfers = np.zeros(n)
    if not config.fill_latencies or n == 0:
        return latencies, transfers
    model = AnalyticLatencyModel(rng)
    good = errors == int(ErrorKind.NONE)
    for device, idx in _DEVICE_INDEX.items():
        for direction in (False, True):
            mask = good & (device_idx == idx) & (is_write == direction)
            count = int(mask.sum())
            if count == 0:
                continue
            latencies[mask] = model.startup_latencies(device, direction, count)
            transfers[mask] = model.transfer_times(sizes[mask])
    # Failed requests surface quickly (lookup failures) or abort mid-way.
    bad = ~good
    n_bad = int(bad.sum())
    if n_bad:
        latencies[bad] = rng.uniform(1.0, 30.0, size=n_bad)
    return latencies, transfers
