"""Workload generator configuration.

One :class:`WorkloadConfig` fully determines a synthetic trace (together
with the seed).  The defaults reproduce the NCAR 1990-92 environment at a
chosen ``scale``; every knob maps to a published statistic, noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import paper
from repro.namespace.dirtree import NamespaceProfile
from repro.util.units import DAY, HOUR


@dataclass(frozen=True)
class BurstConfig:
    """Raw-request bursts around each deduped reference.

    Section 6: "About one third of all requests came within eight hours of
    another request for the same file", typically batch scripts re-reading
    the same input.  Each deduped event expands into 1 + Geometric extras.
    """

    read_extra_mean: float = 0.34    # extra raw reads per deduped read
    write_extra_mean: float = 0.20   # extra raw writes per deduped write
    follower_gap_mean: float = 1500.0  # seconds; well inside the 8 h window
    follower_gap_cap: float = 7.9 * HOUR

    def extra_mean(self, is_write: bool) -> float:
        """Mean number of burst followers for one deduped event."""
        return self.write_extra_mean if is_write else self.read_extra_mean


@dataclass(frozen=True)
class SessionConfig:
    """Within-hour session clustering (Figure 7).

    Requests arrive in program-driven clusters: "90% of all references
    followed another by less than 10 seconds" while the overall mean
    interarrival is 18 s.  Events inside one hour bin are grouped into
    sessions whose members are seconds apart.
    """

    mean_session_length: float = 10.0   # geometric mean cluster size
    intra_gap_mean: float = 3.0         # seconds between cluster members
    intra_gap_cap: float = 60.0


@dataclass(frozen=True)
class GapConfig:
    """Per-file interreference gaps on the deduped stream (Figure 9).

    Gaps are day-grained: a follow-on reference lands either later the
    same day (probability ``p0_*``, e.g. a batch write at 03:00 read back
    at 09:30, or a morning read revisited in the evening), or ``1 + tail``
    days later.  The tail mixes a short geometric run (the next few
    working days) with a heavy lognormal component (files revisited months
    later).  Small working files re-reference quickly; large tape-class
    model output comes back on a much longer horizon -- which is also what
    routes cold tape reads to shelved cartridges (Table 3's manual-tape
    column).  Targets: ~70 % of gaps under one day, a tail past one year.
    """

    p0_cross: float = 0.70        # write->read / read->write, same day
    p0_same_small: float = 0.52   # read->read / write->write, small files
    p0_same_large: float = 0.22   # ... large (tape-class) files
    q_short_cross: float = 0.75   # P(short tail | next-day+, cross)
    q_short_small: float = 0.78
    q_short_large: float = 0.45
    geom_p: float = 0.60          # short tail: Geometric(p) days, mean 1/p
    long_median_days: float = 12.0
    long_sigma: float = 1.8
    cross_same_day_median: float = 2.5 * HOUR  # write->read turnaround
    cross_same_day_sigma: float = 0.8
    same_day_block_gap: float = 8.05 * HOUR    # dedupe-surviving spacing


@dataclass(frozen=True)
class PlacementConfig:
    """Which storage level serves each reference (Table 3 device shares)."""

    disk_threshold_bytes: int = 30_000_000   # Section 3.1: 30 MB split
    silo_residency: float = 21.0 * DAY       # recency horizon for silo hits
    tape_write_shelf_fraction: float = 0.03  # writes bypassing the silo
    preexisting_shelf_fraction: float = 1.0  # old tape files start shelved
    #: Probability that recalled shelf data is re-staged onto a silo
    #: cartridge after a manual-tape read (operators re-enter hot tapes).
    promote_on_read: float = 0.15


@dataclass(frozen=True)
class ErrorConfig:
    """Failed-reference injection (Section 5.1: 4.76 % of raw refs)."""

    error_fraction: float = paper.ERROR_FRACTION
    no_such_file_share: float = 0.75
    media_error_share: float = 0.15
    premature_share: float = 0.08
    # remainder -> ErrorKind.OTHER


@dataclass(frozen=True)
class WorkloadConfig:
    """Complete recipe for one synthetic NCAR trace."""

    #: Fraction of the full-scale population (1.0 = 900 k files, ~3.7 M refs).
    scale: float = 0.02
    seed: int = 0
    duration_seconds: float = paper.TRACE_SPAN_DAYS * DAY
    bursts: BurstConfig = field(default_factory=BurstConfig)
    sessions: SessionConfig = field(default_factory=SessionConfig)
    gaps: GapConfig = field(default_factory=GapConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    errors: ErrorConfig = field(default_factory=ErrorConfig)
    #: Fill startup latency / transfer time from the analytic device models
    #: (True) or leave them zero for later DES replay (False).
    fill_latencies: bool = True
    #: Fraction of write-once-never-read files given the ~8 MB "standard
    #: history file" size (the Figure 10 write bump).
    history_atom_fraction: float = 0.12
    history_atom_bytes: int = paper.WRITE_SIZE_BUMP_BYTES

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.duration_seconds <= DAY:
            raise ValueError("duration must exceed one day")

    @property
    def n_files(self) -> int:
        """File population at this scale."""
        return max(20, int(round(paper.FILE_COUNT * self.scale)))

    def namespace_profile(self) -> NamespaceProfile:
        """Namespace shape for this scale."""
        return NamespaceProfile(n_files=self.n_files)


#: The configuration used by the benchmark suite.
NCAR_BENCH_CONFIG = WorkloadConfig(scale=0.02, seed=42)

#: A small configuration for fast unit tests.
NCAR_TEST_CONFIG = WorkloadConfig(scale=0.004, seed=7)
