"""Long-term (secular) activity trend over the 104 trace weeks (Figure 6).

"The MSS data request rate increases over the period shown by the graph,
but this gain is due almost entirely to increases in read requests. ...
There are drops in read request rate around Thanksgiving and Christmas for
both 1990 and 1991.  Note, however, that write request rate does not drop
on these holidays.  In fact, write requests increased at the end of the
year."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutil import TRACE_WEEKS, TraceCalendar


@dataclass(frozen=True)
class SecularTrend:
    """Week-indexed rate multipliers for one direction."""

    is_write: bool
    #: Read volume roughly triples over the two years; the ramp below runs
    #: from 0.45x to 1.55x of the period mean.  Writes stay flat: the Cray
    #: was "already running at full capacity".
    read_start: float = 0.38
    read_end: float = 1.72
    write_level: float = 1.0
    #: Read activity on a holiday collapses with the human population.
    holiday_read_factor: float = 0.35
    #: "write requests increased at the end of the year" -- year-end batch
    #: crunch while the scientists are away.
    yearend_write_factor: float = 1.18

    def week_factor(self, week: int) -> float:
        """Secular multiplier for a trace week (clamped to the trace)."""
        week = max(0, min(week, TRACE_WEEKS - 1))
        if self.is_write:
            factor = self.write_level
            if _is_yearend_week(week):
                factor *= self.yearend_write_factor
            return factor
        span = max(1, TRACE_WEEKS - 1)
        return self.read_start + (self.read_end - self.read_start) * week / span

    def holiday_factor(self, is_holiday: bool) -> float:
        """Multiplier applied on holiday dates."""
        if not is_holiday:
            return 1.0
        if self.is_write:
            return 1.0  # "the Cray doesn't take a Christmas vacation"
        return self.holiday_read_factor


def _is_yearend_week(week: int) -> bool:
    """True for trace weeks containing late December."""
    calendar = TraceCalendar()
    start, end = calendar.span_of_week(week)
    midpoint = calendar.datetime_at((start + end) / 2.0)
    return midpoint.month == 12 and midpoint.day >= 15


READ_TREND = SecularTrend(is_write=False)
WRITE_TREND = SecularTrend(is_write=True)


def trend_for(is_write: bool) -> SecularTrend:
    """The calibrated secular trend for one direction."""
    return WRITE_TREND if is_write else READ_TREND
