"""Burst expansion and session clustering.

Two clustering effects shape the request stream:

* **Bursts** (Section 6): batch scripts re-request the same file within a
  working day -- "about one third of all requests came within eight hours
  of another request for the same file".  Each deduped event expands into
  one or more raw requests.

* **Sessions** (Figure 7 / Section 5.2.1): programs access many files in
  quick succession ("several files are accessed together by the same
  program"; day-1 and day-2 of a model run live in separate files), so 90 %
  of system-level interarrivals are under 10 seconds while the overall mean
  is 18 s.  We impose this by regrouping the events inside each hour into
  sessions whose members are seconds apart.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.units import HOUR
from repro.workload.config import BurstConfig, SessionConfig


def expand_bursts(
    rng: np.random.Generator,
    times: np.ndarray,
    is_write: np.ndarray,
    file_ids: np.ndarray,
    config: BurstConfig,
    horizon: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand deduped events into raw request events.

    Returns (times, is_write, file_ids) including the originals plus burst
    followers at small positive offsets, all clipped to the horizon.  The
    result is unsorted.
    """
    if times.size == 0:
        return times, is_write, file_ids
    extras_mean = np.where(
        is_write, config.write_extra_mean, config.read_extra_mean
    )
    # Geometric extras with the configured mean m: success prob 1/(1+m).
    extra_counts = rng.geometric(1.0 / (1.0 + extras_mean)) - 1
    total_extra = int(extra_counts.sum())
    if total_extra == 0:
        return times, is_write, file_ids
    parent_idx = np.repeat(np.arange(times.size), extra_counts)
    offsets = rng.exponential(config.follower_gap_mean, size=total_extra)
    offsets = np.minimum(offsets, config.follower_gap_cap)
    follower_times = times[parent_idx] + offsets
    keep = follower_times < horizon
    all_times = np.concatenate([times, follower_times[keep]])
    all_writes = np.concatenate([is_write, is_write[parent_idx][keep]])
    all_files = np.concatenate([file_ids, file_ids[parent_idx][keep]])
    return all_times, all_writes, all_files


def pack_sessions(
    rng: np.random.Generator,
    times: np.ndarray,
    config: SessionConfig,
    group_keys: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Regroup events into sessions within their hour bins (vectorized).

    Events keep their hour (so Figures 4-6 are untouched) but are re-timed
    inside it: each hour's events are partitioned into sessions of
    geometric size, sessions start at uniform instants, and members follow
    the session head by exponential seconds-scale gaps.  Member times are
    clamped into ``[hour_start, hour_start + HOUR)`` so a long session
    can never spill past its hour bin.

    ``group_keys`` (e.g. the directory id of each event's file) makes
    sessions *locality-aware*: events with the same key pack into the same
    session, the way one job reads consecutive history files from one
    directory.  This is what drives spindle and cartridge affinity in the
    MSS simulator.

    The whole pass is segmented array work -- one ``np.lexsort`` for the
    hour/locality order, one Bernoulli draw for session boundaries (a
    fresh boundary after each event with probability ``1/mean`` yields
    i.i.d. geometric session sizes, truncated at the hour edge exactly
    like the drawn-then-clipped sizes of the scalar path), and a
    segment-reset cumulative sum for intra-session offsets.  The scalar
    reference lives on as :func:`pack_sessions_scalar`.

    Returns ``(new_times, session_ids)`` aligned with the input order,
    where ``session_ids`` are globally unique ints (used to pin one user
    per session).
    """
    n = times.size
    if n == 0:
        return times, np.empty(0, dtype=np.int64)
    hour_bins = (times // HOUR).astype(np.int64)
    # Hour-major order; inside an hour, same-key events become adjacent
    # (random tiebreak), or the hour is fully shuffled when keyless.
    tiebreak = rng.random(n)
    if group_keys is None:
        order = np.lexsort((tiebreak, hour_bins))
    else:
        order = np.lexsort((tiebreak, group_keys, hour_bins))
    sorted_bins = hour_bins[order]
    first_in_hour = np.empty(n, dtype=bool)
    first_in_hour[0] = True
    np.not_equal(sorted_bins[1:], sorted_bins[:-1], out=first_in_hour[1:])

    # Geometric(p) session sizes == independent Bernoulli(p) boundaries
    # after each member; the hour edge truncates the last session of the
    # hour, which the memoryless geometric makes distribution-identical
    # to drawing sizes and clipping the remainder.
    p = 1.0 / config.mean_session_length
    session_start = (rng.random(n) < p) | first_in_hour
    session_of = np.cumsum(session_start) - 1  # per sorted event
    start_idx = np.where(session_start)[0]
    n_sessions = start_idx.size

    hour_start = sorted_bins[start_idx].astype(np.float64) * HOUR
    heads = hour_start + rng.random(n_sessions) * (
        HOUR - config.intra_gap_cap * 2
    )
    gaps = np.minimum(
        rng.exponential(config.intra_gap_mean, size=n), config.intra_gap_cap
    )
    # Segmented cumulative offsets: running sum reset at each session
    # head (the head itself sits at offset zero).
    running = np.cumsum(gaps)
    offsets = running - running[start_idx][session_of]
    packed = heads[session_of] + offsets
    # Events keep their hour: clamp stragglers to just inside the edge
    # (and guard the lower edge for degenerate gap-cap configs).
    hour_end = hour_start[session_of] + HOUR
    np.clip(packed, hour_start[session_of], np.nextafter(hour_end, 0.0),
            out=packed)

    new_times = np.empty_like(times)
    session_ids = np.empty(n, dtype=np.int64)
    new_times[order] = packed
    session_ids[order] = session_of
    return new_times, session_ids


def pack_sessions_scalar(
    rng: np.random.Generator,
    times: np.ndarray,
    config: SessionConfig,
    group_keys: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-hour-bin reference implementation of :func:`pack_sessions`.

    The seed's original Python loop, kept as the statistical baseline the
    vectorized path is tested and benchmarked against.  Note it predates
    the hour-clamp fix: long sessions may spill past their hour bin.
    """
    if times.size == 0:
        return times, np.empty(0, dtype=np.int64)
    hour_bins = (times // HOUR).astype(np.int64)
    order = np.argsort(hour_bins, kind="stable")
    new_times = np.empty_like(times)
    session_ids = np.empty(times.size, dtype=np.int64)
    next_session = 0
    start = 0
    sorted_bins = hour_bins[order]
    while start < order.size:
        end = start
        current = sorted_bins[start]
        while end < order.size and sorted_bins[end] == current:
            end += 1
        members = order[start:end]
        n = members.size
        # Partition this hour's events into geometric-size sessions.
        p = 1.0 / config.mean_session_length
        sizes = []
        remaining = n
        while remaining > 0:
            size = min(int(rng.geometric(p)), remaining)
            sizes.append(size)
            remaining -= size
        if group_keys is None:
            rng.shuffle(members)
        else:
            # Keep same-directory events adjacent (random tiebreak) so a
            # session reads one directory, as a real job would.
            keys = group_keys[members]
            tiebreak = rng.random(n)
            members = members[np.lexsort((tiebreak, keys))]
        cursor = 0
        hour_start = current * HOUR
        for size in sizes:
            chunk = members[cursor:cursor + size]
            cursor += size
            head = hour_start + rng.random() * (HOUR - config.intra_gap_cap * 2)
            gaps = np.minimum(
                rng.exponential(config.intra_gap_mean, size=size),
                config.intra_gap_cap,
            )
            offsets = np.cumsum(gaps) - gaps[0]
            new_times[chunk] = head + offsets
            session_ids[chunk] = next_session
            next_session += 1
        start = end
    return new_times, session_ids
