"""Per-file reference lifecycles (Figure 8 / Section 5.3).

Each file gets a *deduped* read count and write count -- the number of
distinct 8-hour-separated accesses the Section 5.3 analysis would see.  The
archetype mixture below was solved from the paper's marginals:

* 50 % of files never read, 25 % read exactly once;
* 21 % never written, 65 % written exactly once;
* 44 % written once and never read;
* 57 % accessed exactly once, 19 % exactly twice, median 1;
* ~5 % referenced more than ten times, max ~250 (Figure 8 x-axis).

Archetypes (w = writes, r = reads, G = geometric extra, T = heavy tail):

====  =========  =========  =====  =========================================
name  writes     reads      prob   meaning
====  =========  =========  =====  =========================================
A     1          0          0.440  archive dump: written once, never read
B     2 + G      0          0.060  re-written archive, never read
C     0          1          0.130  pre-existing file read once
D     0          2 + T      0.080  pre-existing file re-read over time
E     1          1          0.106  written once, read back once
F     1          2 + T      0.104  written once, read repeatedly
G     2 + G      1 + T      0.080  active working file
====  =========  =========  =====  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core import paper


class Archetype(enum.IntEnum):
    """File lifecycle classes; see the module docstring for the table."""

    WRITE_ONCE_NEVER_READ = 0   # A
    REWRITTEN_NEVER_READ = 1    # B
    PREEXISTING_READ_ONCE = 2   # C
    PREEXISTING_REREAD = 3      # D
    WRITE_ONCE_READ_ONCE = 4    # E
    WRITE_ONCE_READ_MANY = 5    # F
    ACTIVE_WORKING_FILE = 6     # G


#: Mixture probabilities, in Archetype order.  Solved from the Figure 8
#: marginals (module docstring); they sum to 1.
ARCHETYPE_PROBABILITIES: Tuple[float, ...] = (
    0.440, 0.060, 0.130, 0.080, 0.106, 0.104, 0.080,
)

#: Geometric "extra writes" parameter: P(extra = k) = (1-q) q^k, mean 2/3.
EXTRA_WRITE_Q = 0.4

#: Heavy read tail T: with probability 1 - HOT_FRACTION a truncated
#: discrete Pareto, P(T = k) proportional to (k+1)^-TAIL_EXPONENT for
#: k = 0..TAIL_CAP; with probability HOT_FRACTION a uniform "hot file"
#: plateau on [HOT_LOW, HOT_HIGH].  Together these set the Figure 8
#: ">10 references" mass (~5 %) without inflating the mean.
TAIL_EXPONENT = 1.85
TAIL_CAP = paper.MAX_PLOTTED_REFERENCES - 4
HOT_FRACTION = 0.13
HOT_LOW = 8
HOT_HIGH = 40


@dataclass(frozen=True)
class LifecycleSample:
    """Vectorized lifecycle draw for a file population."""

    archetypes: np.ndarray      # int8, Archetype values
    write_counts: np.ndarray    # int32, deduped writes per file
    read_counts: np.ndarray     # int32, deduped reads per file
    preexisting: np.ndarray     # bool: file existed before the trace

    @property
    def n_files(self) -> int:
        """Population size."""
        return int(self.archetypes.size)

    @property
    def total_reads(self) -> int:
        """Total deduped read events."""
        return int(self.read_counts.sum())

    @property
    def total_writes(self) -> int:
        """Total deduped write events."""
        return int(self.write_counts.sum())


def _heavy_tail_pmf() -> np.ndarray:
    """PMF of the truncated discrete-Pareto read tail."""
    support = np.arange(TAIL_CAP + 1, dtype=float)
    weights = (support + 1.0) ** (-TAIL_EXPONENT)
    return weights / weights.sum()


_TAIL_PMF = _heavy_tail_pmf()


def sample_heavy_tail(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` values of the heavy read tail T (Pareto + hot plateau)."""
    if n == 0:
        return np.empty(0, dtype=np.int32)
    pareto = rng.choice(TAIL_CAP + 1, size=n, p=_TAIL_PMF).astype(np.int32)
    hot = rng.integers(HOT_LOW, HOT_HIGH + 1, size=n).astype(np.int32)
    use_hot = rng.random(n) < HOT_FRACTION
    return np.where(use_hot, hot, pareto)


def sample_extra_writes(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` geometric extra-write counts (mean q/(1-q) = 2/3)."""
    if n == 0:
        return np.empty(0, dtype=np.int32)
    # numpy's geometric counts trials to first success (support 1..);
    # subtract 1 for the "number of failures" convention.
    return (rng.geometric(1.0 - EXTRA_WRITE_Q, size=n) - 1).astype(np.int32)


#: Archetype tilt for tape-class (large) files, in Archetype order.  Large
#: files are the interesting ones -- model output that gets re-read -- so
#: read-heavy archetypes (D, F, G) and pre-existing archives (C, D) are
#: over-represented among them, write-once dumps (A) under-represented.
#: Small files compensate so the global marginals of Figure 8 still hold.
LARGE_FILE_TILT: Tuple[float, ...] = (0.72, 0.85, 3.00, 2.60, 0.95, 1.80, 1.80)


def _tilted_probabilities(large_fraction: float):
    """(probs_for_large, probs_for_small) preserving global marginals.

    probs_large is proportional to base * tilt; probs_small is solved from
    ``base = p_L * probs_large + (1 - p_L) * probs_small`` and clipped at
    zero (renormalized) if the tilt overshoots.
    """
    base = np.asarray(ARCHETYPE_PROBABILITIES)
    tilt = np.asarray(LARGE_FILE_TILT)
    probs_large = base * tilt
    probs_large = probs_large / probs_large.sum()
    if large_fraction >= 1.0:
        return probs_large, base
    probs_small = (base - large_fraction * probs_large) / (1.0 - large_fraction)
    probs_small = np.clip(probs_small, 0.0, None)
    probs_small = probs_small / probs_small.sum()
    return probs_large, probs_small


def draw_lifecycles(
    rng: np.random.Generator,
    n_files: int,
    large_mask: "np.ndarray | None" = None,
) -> LifecycleSample:
    """Draw lifecycles for a population of ``n_files`` files.

    ``large_mask`` (optional boolean array) marks tape-class files, which
    receive the read-heavy archetype tilt; marginals over the whole
    population still match the Figure 8 targets.
    """
    if n_files <= 0:
        raise ValueError("n_files must be positive")
    if large_mask is None:
        archetypes = rng.choice(
            len(ARCHETYPE_PROBABILITIES), size=n_files, p=ARCHETYPE_PROBABILITIES
        ).astype(np.int8)
    else:
        large_mask = np.asarray(large_mask, dtype=bool)
        if large_mask.shape != (n_files,):
            raise ValueError("large_mask must have one entry per file")
        large_fraction = float(large_mask.mean())
        probs_large, probs_small = _tilted_probabilities(large_fraction)
        archetypes = np.empty(n_files, dtype=np.int8)
        n_large = int(large_mask.sum())
        archetypes[large_mask] = rng.choice(
            len(ARCHETYPE_PROBABILITIES), size=n_large, p=probs_large
        )
        archetypes[~large_mask] = rng.choice(
            len(ARCHETYPE_PROBABILITIES), size=n_files - n_large, p=probs_small
        )
    writes = np.zeros(n_files, dtype=np.int32)
    reads = np.zeros(n_files, dtype=np.int32)

    def mask_of(kind: Archetype) -> np.ndarray:
        return archetypes == int(kind)

    m = mask_of(Archetype.WRITE_ONCE_NEVER_READ)
    writes[m] = 1

    m = mask_of(Archetype.REWRITTEN_NEVER_READ)
    writes[m] = 2 + sample_extra_writes(rng, int(m.sum()))

    m = mask_of(Archetype.PREEXISTING_READ_ONCE)
    reads[m] = 1

    m = mask_of(Archetype.PREEXISTING_REREAD)
    reads[m] = 2 + sample_heavy_tail(rng, int(m.sum()))

    m = mask_of(Archetype.WRITE_ONCE_READ_ONCE)
    writes[m] = 1
    reads[m] = 1

    m = mask_of(Archetype.WRITE_ONCE_READ_MANY)
    writes[m] = 1
    reads[m] = 2 + sample_heavy_tail(rng, int(m.sum()))

    m = mask_of(Archetype.ACTIVE_WORKING_FILE)
    writes[m] = 2 + sample_extra_writes(rng, int(m.sum()))
    reads[m] = 1 + sample_heavy_tail(rng, int(m.sum()))

    preexisting = (
        mask_of(Archetype.PREEXISTING_READ_ONCE)
        | mask_of(Archetype.PREEXISTING_REREAD)
    )
    return LifecycleSample(
        archetypes=archetypes,
        write_counts=writes,
        read_counts=reads,
        preexisting=preexisting,
    )


def direction_sequence(
    rng: np.random.Generator, writes: int, reads: int
) -> np.ndarray:
    """Order of one file's deduped events as a boolean is-write array.

    Files born inside the trace are written before they can be read, so a
    file with any writes starts with one; the remaining writes and reads
    interleave randomly (model output is often updated between reads).
    """
    total = writes + reads
    if total == 0:
        return np.empty(0, dtype=bool)
    if writes == 0:
        return np.zeros(total, dtype=bool)
    rest = np.concatenate(
        [np.ones(writes - 1, dtype=bool), np.zeros(reads, dtype=bool)]
    )
    rng.shuffle(rest)
    return np.concatenate([[True], rest])


def expected_marginals() -> dict:
    """Analytic marginals of the mixture, for calibration tests."""
    p = dict(zip(Archetype, ARCHETYPE_PROBABILITIES))
    return {
        "never_read": p[Archetype.WRITE_ONCE_NEVER_READ]
        + p[Archetype.REWRITTEN_NEVER_READ],
        "never_written": p[Archetype.PREEXISTING_READ_ONCE]
        + p[Archetype.PREEXISTING_REREAD],
        "written_once": p[Archetype.WRITE_ONCE_NEVER_READ]
        + p[Archetype.WRITE_ONCE_READ_ONCE]
        + p[Archetype.WRITE_ONCE_READ_MANY],
        "write_once_never_read": p[Archetype.WRITE_ONCE_NEVER_READ],
        "exactly_one_access": p[Archetype.WRITE_ONCE_NEVER_READ]
        + p[Archetype.PREEXISTING_READ_ONCE],
    }
