"""The cross-run SQLite index: ``registry.sqlite``.

One database per runs root folds every run directory -- sweeps, bench
timings, report comparisons, chaos soaks, differential checks -- into
four tables:

* ``runs``: one row per run hash, carrying the full canonical record
  JSON (so nothing is lost in projection: unknown keys, nested metric
  payloads, and v1-synthesized records all survive round trips).
* ``cells``: one row per (run, cell, metric) scalar -- the comparable
  surface ``repro runs compare`` diffs.  Values keep SQLite's dynamic
  typing: JSON ints stay INTEGER, floats stay REAL (both are exact
  binary64 round trips), so the index reproduces the run-dir numbers
  bit for bit.
* ``bench``: the per-benchmark projection of bench-kind runs, the
  substrate of ``repro runs trajectory`` and the ``BENCH_sweep.json``
  view.
* ``baselines``: named promoted runs (content-addressed by run hash).

Indexing is idempotent: the run hash is a content address, so re-running
``repro runs index`` over an unchanged root touches nothing, while a
rewritten run directory (a resumed sweep, a re-run bench) replaces the
stale rows recorded at the same path.  WAL mode keeps readers (CI
queries, trajectory renders) from blocking a concurrent index pass.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.registry.record import (
    RunRecord,
    canonical_json,
    flatten_metrics,
    load_run_record,
    scan_runs_root,
)

#: Default database filename inside a runs root.
DB_FILENAME = "registry.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_hash       TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    config_hash    TEXT,
    schema_version INTEGER NOT NULL,
    status         TEXT NOT NULL,
    created_at     REAL,
    wall_seconds   REAL,
    path           TEXT,
    record         TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    run_hash          TEXT NOT NULL,
    cell              TEXT NOT NULL,
    scenario          TEXT,
    seed              INTEGER,
    policy            TEXT,
    capacity_fraction REAL,
    metric            TEXT NOT NULL,
    value,
    PRIMARY KEY (run_hash, cell, metric)
);
CREATE TABLE IF NOT EXISTS bench (
    run_hash  TEXT NOT NULL,
    benchmark TEXT NOT NULL,
    metric    TEXT NOT NULL,
    value,
    PRIMARY KEY (run_hash, benchmark, metric)
);
CREATE TABLE IF NOT EXISTS baselines (
    name        TEXT PRIMARY KEY,
    run_hash    TEXT NOT NULL,
    promoted_at REAL
);
CREATE INDEX IF NOT EXISTS cells_by_policy
    ON cells (policy, metric);
CREATE INDEX IF NOT EXISTS bench_by_benchmark
    ON bench (benchmark, metric);
"""


class RegistryError(RuntimeError):
    """An index operation that cannot proceed (bad ref, missing DB)."""


class RegistryIndex:
    """An open ``registry.sqlite`` handle."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    @classmethod
    def open(cls, path: Union[str, Path]) -> "RegistryIndex":
        return cls(path)

    @classmethod
    def open_existing(cls, path: Union[str, Path]) -> "RegistryIndex":
        """Open a database that must already exist (query-side verbs)."""
        if not Path(path).is_file():
            raise RegistryError(
                f"no registry database at {path}; run `repro runs index` first"
            )
        return cls(path)

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RegistryIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- indexing ----------------------------------------------------------

    def index_record(self, record: RunRecord) -> str:
        """Fold one record in; returns ``indexed|unchanged|replaced``.

        Keyed by the content-addressed run hash: an already-present hash
        is a no-op (idempotent re-index), and any *older* run recorded
        at the same directory path is dropped first -- a resumed sweep
        or re-run bench rewrites its dir in place, so the path can only
        honestly describe one run at a time.
        """
        run_hash = record.run_hash()
        replaced = False
        if record.path is not None:
            stale = self._db.execute(
                "SELECT run_hash FROM runs WHERE path = ? AND run_hash != ?",
                (str(record.path), run_hash),
            ).fetchall()
            for row in stale:
                self._delete_run(row["run_hash"])
                replaced = True
        exists = self._db.execute(
            "SELECT 1 FROM runs WHERE run_hash = ?", (run_hash,)
        ).fetchone()
        if exists:
            self._db.commit()
            return "replaced" if replaced else "unchanged"
        self._db.execute(
            "INSERT INTO runs (run_hash, kind, config_hash, schema_version,"
            " status, created_at, wall_seconds, path, record)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_hash, record.kind, record.config_hash,
                record.schema_version, record.status, record.created_at,
                record.wall_seconds,
                str(record.path) if record.path is not None else None,
                canonical_json(record.to_payload()),
            ),
        )
        self._insert_cells(run_hash, record)
        if record.kind == "bench":
            self._insert_bench(run_hash, record)
        self._db.commit()
        return "replaced" if replaced else "indexed"

    def _delete_run(self, run_hash: str) -> None:
        self._db.execute("DELETE FROM cells WHERE run_hash = ?", (run_hash,))
        self._db.execute("DELETE FROM bench WHERE run_hash = ?", (run_hash,))
        self._db.execute("DELETE FROM runs WHERE run_hash = ?", (run_hash,))

    def _insert_cells(self, run_hash: str, record: RunRecord) -> None:
        for row in record.rows:
            cell = str(row.get("cell", ""))
            for metric, value in (row.get("values", {}) or {}).items():
                if not isinstance(value, (bool, int, float, str)):
                    continue
                self._db.execute(
                    "INSERT OR REPLACE INTO cells (run_hash, cell, scenario,"
                    " seed, policy, capacity_fraction, metric, value)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_hash, cell, row.get("scenario"), row.get("seed"),
                        row.get("policy"), row.get("capacity_fraction"),
                        metric, value,
                    ),
                )

    def _insert_bench(self, run_hash: str, record: RunRecord) -> None:
        benchmark = record.config.get("benchmark")
        for name, payload in record.metrics.items():
            bench_name = benchmark or name
            for metric, value in flatten_metrics({name: payload}).items():
                # Strip the redundant leading benchmark key.
                metric = metric.split(".", 1)[1] if "." in metric else metric
                self._db.execute(
                    "INSERT OR REPLACE INTO bench"
                    " (run_hash, benchmark, metric, value)"
                    " VALUES (?, ?, ?, ?)",
                    (run_hash, bench_name, metric, value),
                )

    def index_root(self, runs_root: Union[str, Path]) -> Dict[str, Any]:
        """Fold every run directory under the root into the database."""
        counts = {"indexed": 0, "unchanged": 0, "replaced": 0}
        kinds: Dict[str, int] = {}
        skipped: List[str] = []
        for entry in scan_runs_root(runs_root):
            record = load_run_record(entry["path"])
            if record is None:
                skipped.append(entry["name"])
                continue
            outcome = self.index_record(record)
            counts[outcome] += 1
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        return {**counts, "kinds": kinds, "skipped": skipped}

    # -- queries -----------------------------------------------------------

    def runs(
        self,
        kind: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Run summaries, ordered by (created_at, run_hash)."""
        query = (
            "SELECT run_hash, kind, config_hash, schema_version, status,"
            " created_at, wall_seconds, path,"
            " (SELECT COUNT(DISTINCT cell) FROM cells"
            "   WHERE cells.run_hash = runs.run_hash) AS n_cells"
            " FROM runs"
        )
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY COALESCE(created_at, 0), run_hash"
        return [dict(row) for row in self._db.execute(query, params)]

    def get_record(self, run_hash: str) -> Dict[str, Any]:
        """The full stored record payload of one run."""
        row = self._db.execute(
            "SELECT record FROM runs WHERE run_hash = ?", (run_hash,)
        ).fetchone()
        if row is None:
            raise RegistryError(f"no indexed run {run_hash!r}")
        return json.loads(row["record"])

    def resolve(self, ref: str) -> Dict[str, Any]:
        """One run by hash prefix, directory name, or config-hash prefix.

        Raises :class:`RegistryError` when the reference is unknown or
        ambiguous (two runs sharing a prefix).
        """
        rows = [dict(row) for row in self._db.execute(
            "SELECT run_hash, kind, config_hash, status, created_at, path"
            " FROM runs"
        )]
        matches = [
            row for row in rows
            if row["run_hash"].startswith(ref)
            or (row["config_hash"] or "").startswith(ref)
            or (row["path"] or "").rstrip("/").rsplit("/", 1)[-1] == ref
        ]
        if not matches:
            raise RegistryError(f"no indexed run matches {ref!r}")
        if len(matches) > 1:
            # A v2 sweep dir matches by both run and config hash; distinct
            # hashes are only ambiguous when they are truly different runs.
            unique = {row["run_hash"] for row in matches}
            if len(unique) > 1:
                names = ", ".join(sorted(unique))
                raise RegistryError(
                    f"{ref!r} is ambiguous: matches runs {names}"
                )
        return matches[0]

    def cells(self, run_hash: str) -> Dict[str, Dict[str, Any]]:
        """``{cell: {metric: value}}`` straight from the cells table."""
        out: Dict[str, Dict[str, Any]] = {}
        for row in self._db.execute(
            "SELECT cell, metric, value FROM cells WHERE run_hash = ?"
            " ORDER BY cell, metric",
            (run_hash,),
        ):
            out.setdefault(row["cell"], {})[row["metric"]] = row["value"]
        return out

    # -- baselines ---------------------------------------------------------

    def promote(self, name: str, run_hash: str) -> Dict[str, Any]:
        """Pin one indexed run as the named baseline."""
        if self._db.execute(
            "SELECT 1 FROM runs WHERE run_hash = ?", (run_hash,)
        ).fetchone() is None:
            raise RegistryError(
                f"cannot promote {run_hash!r}: not an indexed run"
            )
        promoted_at = time.time()
        self._db.execute(
            "INSERT OR REPLACE INTO baselines (name, run_hash, promoted_at)"
            " VALUES (?, ?, ?)",
            (name, run_hash, promoted_at),
        )
        self._db.commit()
        return {"name": name, "run_hash": run_hash, "promoted_at": promoted_at}

    def baseline(self, name: str) -> Dict[str, Any]:
        """The named baseline, or a :class:`RegistryError`."""
        row = self._db.execute(
            "SELECT name, run_hash, promoted_at FROM baselines WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            known = [r["name"] for r in self._db.execute(
                "SELECT name FROM baselines ORDER BY name"
            )]
            hint = f"; promoted baselines: {known}" if known else \
                "; none promoted yet (see `repro runs promote`)"
            raise RegistryError(f"no baseline named {name!r}{hint}")
        return dict(row)

    def baselines(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._db.execute(
            "SELECT name, run_hash, promoted_at FROM baselines ORDER BY name"
        )]

    # -- bench trajectory --------------------------------------------------

    def bench_history(self, benchmark: str) -> List[Dict[str, Any]]:
        """Every indexed run of one benchmark, oldest first.

        Each entry carries the run identity plus the benchmark's
        *top-level* metrics (dotted breakdown keys stay in the full
        record); ordering is (created_at, run_hash) so the trajectory is
        deterministic even for runs with equal timestamps.
        """
        history: List[Dict[str, Any]] = []
        runs = self._db.execute(
            "SELECT DISTINCT bench.run_hash, runs.created_at"
            " FROM bench JOIN runs ON runs.run_hash = bench.run_hash"
            " WHERE bench.benchmark = ?"
            " ORDER BY COALESCE(runs.created_at, 0), bench.run_hash",
            (benchmark,),
        ).fetchall()
        for run in runs:
            metrics = {
                row["metric"]: row["value"]
                for row in self._db.execute(
                    "SELECT metric, value FROM bench"
                    " WHERE run_hash = ? AND benchmark = ? AND"
                    " metric NOT LIKE '%.%' ORDER BY metric",
                    (run["run_hash"], benchmark),
                )
            }
            history.append({
                "run_hash": run["run_hash"],
                "created_at": run["created_at"],
                "metrics": metrics,
            })
        return history

    def benchmarks(self) -> List[str]:
        """Every benchmark name with at least one indexed run."""
        return [row["benchmark"] for row in self._db.execute(
            "SELECT DISTINCT benchmark FROM bench ORDER BY benchmark"
        )]


def db_path_for(
    runs_root: Union[str, Path], db: Optional[str] = None
) -> Path:
    """The database path a CLI invocation addresses."""
    return Path(db) if db is not None else Path(runs_root) / DB_FILENAME
