"""The versioned ``RunRecord``: one schema for every run artifact.

PR 7 gave sweeps a content-addressed run directory (``config.json`` +
``tasks/*.json`` + ``run_summary.json``); since then the repo has grown
four more run-producing surfaces -- ``report``, ``bench``, ``chaos
run``, ``verify diff`` -- each dumping its own ad-hoc JSON.  This module
generalizes the run-dir format: every surface emits one
``run_record.json`` (schema v2) describing *what kind* of run it was,
*which configuration* produced it, *what it measured* (per-cell rows +
free-form metric payloads), and *how it ended* -- so the SQLite index
(:mod:`repro.registry.index`) can fold heterogeneous runs into one
queryable ledger.

Two compatibility contracts, both pinned by tests:

* **Backward:** a v1 (PR-7) sweep run-dir with no ``run_record.json``
  still loads -- :func:`load_run_record` synthesizes a v2 record from
  ``config.json`` + ``run_summary.json`` + the checkpointed task rows,
  so two years of old run dirs index cleanly.
* **Forward:** unknown top-level JSON keys written by a future schema
  are preserved in :attr:`RunRecord.extra` and round-trip through load,
  re-write, and re-index untouched.

Identity is content-addressed: :meth:`RunRecord.run_hash` digests the
canonical JSON payload, so a byte-identical record has one identity no
matter where it sits on disk, and re-indexing is idempotent by
construction.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.resilience import (
    list_runs as _list_sweep_runs,
    load_checkpoints,
    load_run_summary,
    write_json_atomic,
)

#: ``format`` marker inside every v2 run record.
RECORD_FORMAT = "repro-run-record"

#: Current schema version.  v1 is the PR-7 sweep run-dir layout (no
#: ``run_record.json`` at all); bump this when a field changes meaning.
RECORD_VERSION = 2

#: The record's filename inside a run directory.
RECORD_FILENAME = "run_record.json"

#: Run kinds the index knows how to project into typed tables.  Unknown
#: kinds still index (runs + cells); they just get no special views.
KNOWN_KINDS = ("sweep", "bench", "report", "chaos", "verify")

#: Fields of the serialized payload that belong to the schema; anything
#: else round-trips through :attr:`RunRecord.extra`.
_SCHEMA_FIELDS = frozenset({
    "format", "schema_version", "kind", "config", "config_hash", "rows",
    "metrics", "status", "created_at", "wall_seconds", "code_versions",
})


def canonical_json(payload: Any) -> str:
    """Key-sorted, separator-stable JSON: the hashing wire format."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def default_code_versions() -> Dict[str, Any]:
    """The code versions that determine a run's numbers."""
    from repro import __version__
    from repro.engine.store import STORE_FORMAT_VERSION
    from repro.workload.generator import GENERATOR_VERSION

    return {
        "repro": __version__,
        "generator": GENERATOR_VERSION,
        "store_format": STORE_FORMAT_VERSION,
    }


def cell_key(
    scenario: Optional[str], seed: int, policy: str, fraction: float
) -> str:
    """Canonical cell id for one sweep grid cell.

    ``repr`` keeps the capacity fraction exact (shortest round-trip
    float), so two runs of the same grid always name cells identically.
    """
    return f"{scenario or 'classic'}:s{seed}:{policy}:{fraction!r}"


def flatten_metrics(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Nested metric payload -> flat ``{dotted.name: scalar}`` mapping.

    Non-scalar leaves that are not dicts (lists, None) are dropped: the
    flat form feeds the SQLite ``cells``/``bench`` tables, which hold
    comparable scalars only.  The full nested payload stays available in
    the record itself.
    """
    flat: Dict[str, Any] = {}
    if isinstance(payload, dict):
        for name in sorted(payload):
            flat.update(flatten_metrics(payload[name], f"{prefix}{name}."))
    elif prefix and isinstance(payload, (bool, int, float, str)):
        flat[prefix[:-1]] = payload
    return flat


@dataclass
class RunRecord:
    """One run of any kind, in the registry's common shape."""

    #: ``sweep`` | ``bench`` | ``report`` | ``chaos`` | ``verify`` (open set).
    kind: str
    #: The result-determining configuration (JSON-stable dict).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Per-cell results.  Each row is a dict with a ``cell`` key naming
    #: the cell, a ``values`` dict of comparable scalars, and optional
    #: identity columns (``scenario``/``seed``/``policy``/
    #: ``capacity_fraction``) plus a non-compared ``meta`` dict.
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Free-form JSON metric payloads (e.g. the full nested bench
    #: timings, keyed by benchmark name).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: ``complete`` | ``degraded`` | ``interrupted`` | ``failed`` | ...
    status: str = "complete"
    #: Wall-clock the run started/was recorded (epoch seconds).
    created_at: Optional[float] = None
    wall_seconds: Optional[float] = None
    schema_version: int = RECORD_VERSION
    #: Content hash of ``config`` (precomputed by emitters that already
    #: have one, e.g. the sweep's ``sweep_config_hash``).
    config_hash: Optional[str] = None
    code_versions: Dict[str, Any] = field(default_factory=dict)
    #: Unknown top-level payload keys, preserved verbatim (forward
    #: compatibility: a v3 writer's extra fields survive a v2 re-index).
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Directory the record was loaded from (not serialized, not hashed).
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("a RunRecord needs a kind")
        if self.config_hash is None:
            canon = canonical_json(self.config)
            self.config_hash = hashlib.sha256(
                canon.encode("utf-8")
            ).hexdigest()[:16]

    def to_payload(self) -> Dict[str, Any]:
        """The serialized JSON form (schema fields + preserved extras)."""
        payload = {
            "format": RECORD_FORMAT,
            "schema_version": self.schema_version,
            "kind": self.kind,
            "config": self.config,
            "config_hash": self.config_hash,
            "rows": self.rows,
            "metrics": self.metrics,
            "status": self.status,
            "created_at": self.created_at,
            "wall_seconds": self.wall_seconds,
            "code_versions": self.code_versions,
        }
        for name, value in self.extra.items():
            payload.setdefault(name, value)
        return payload

    def run_hash(self) -> str:
        """Content address of this run: a digest of the full payload."""
        canon = canonical_json(self.to_payload())
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], path: Optional[str] = None
    ) -> "RunRecord":
        """Rebuild a record; unknown top-level keys land in ``extra``."""
        extra = {
            name: value
            for name, value in payload.items()
            if name not in _SCHEMA_FIELDS
        }
        return cls(
            kind=payload["kind"],
            config=payload.get("config", {}) or {},
            rows=payload.get("rows", []) or [],
            metrics=payload.get("metrics", {}) or {},
            status=payload.get("status", "complete"),
            created_at=payload.get("created_at"),
            wall_seconds=payload.get("wall_seconds"),
            schema_version=int(payload.get("schema_version", RECORD_VERSION)),
            config_hash=payload.get("config_hash"),
            code_versions=payload.get("code_versions", {}) or {},
            extra=extra,
            path=path,
        )

    def cells(self) -> Dict[str, Dict[str, Any]]:
        """``{cell: {metric: value}}`` -- the comparable view of the run."""
        out: Dict[str, Dict[str, Any]] = {}
        for row in self.rows:
            cell = str(row.get("cell", ""))
            values = row.get("values", {}) or {}
            out.setdefault(cell, {}).update(values)
        return out


def sweep_rows_to_record_rows(
    row_dicts: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """SweepRow checkpoint dicts -> registry rows, value-preserving.

    The ``values`` dict carries every metrics counter plus the cell's
    ``capacity_bytes`` exactly as the checkpoint stored them (JSON
    floats round-trip, ints stay ints), so the index can later hand the
    identical numbers back.  ``attempts``/``status`` are execution
    metadata, not results: they go under ``meta`` where ``compare``
    never looks (a retried cell is not a regression).
    """
    rows = []
    for data in row_dicts:
        values = dict(data.get("metrics", {}))
        values["capacity_bytes"] = data["capacity_bytes"]
        rows.append({
            "cell": cell_key(
                data.get("scenario"), data["seed"], data["policy"],
                data["capacity_fraction"],
            ),
            "scenario": data.get("scenario"),
            "seed": data["seed"],
            "policy": data["policy"],
            "capacity_fraction": data["capacity_fraction"],
            "values": values,
            "meta": {
                "attempts": data.get("attempts", 1),
                "status": data.get("status", "ok"),
            },
        })
    rows.sort(key=lambda row: row["cell"])
    return rows


def write_run_record(
    run_dir: Union[str, Path], record: RunRecord
) -> Path:
    """Persist one record atomically; returns the record path."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / RECORD_FILENAME
    write_json_atomic(path, record.to_payload())
    record.path = str(run_dir)
    return path


def new_run_dir(
    runs_root: Union[str, Path], record: RunRecord
) -> Path:
    """Write ``record`` into its content-addressed dir under the root.

    The directory is ``<root>/<kind>-<run_hash>``: a byte-identical
    re-run lands in the same place (and is therefore one run), while any
    change of config, result, or timestamp makes a new one.
    """
    run_dir = Path(runs_root) / f"{record.kind}-{record.run_hash()}"
    write_run_record(run_dir, record)
    return run_dir


# ---------------------------------------------------------------------------
# v1 (PR-7 sweep run-dir) synthesis


def synthesize_v1_sweep_record(
    run_dir: Union[str, Path]
) -> Optional[RunRecord]:
    """A v2 record view of a PR-7 sweep run directory, or None.

    Rows come from the checkpointed task records (``tasks/*.json``), the
    config and creation time from ``config.json``, and status/wall-time
    from ``run_summary.json`` when present (an interrupted or
    in-progress run synthesizes with whatever has landed so far).
    """
    run_dir = Path(run_dir)
    config_path = run_dir / "config.json"
    try:
        with open(config_path, "r", encoding="utf-8") as handle:
            config_doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(config_doc, dict):
        return None
    summary = load_run_summary(run_dir) or {}
    row_dicts = [
        row
        for _, task_record in sorted(load_checkpoints(run_dir).items())
        if task_record.get("status") in ("ok", "retried")
        for row in task_record.get("rows", []) or []
    ]
    wall = None
    if "prepare_seconds" in summary or "replay_seconds" in summary:
        wall = (summary.get("prepare_seconds") or 0.0) + (
            summary.get("replay_seconds") or 0.0
        )
    extra_summary = {
        name: summary[name]
        for name in ("n_tasks", "tasks_executed", "tasks_resumed",
                     "tasks_failed", "retries", "failed_cells")
        if name in summary
    }
    return RunRecord(
        kind="sweep",
        config=config_doc.get("config", {}) or {},
        config_hash=config_doc.get("config_hash"),
        rows=sweep_rows_to_record_rows(row_dicts),
        status=summary.get("status", "in-progress"),
        created_at=config_doc.get("created_at"),
        wall_seconds=wall,
        schema_version=1,
        extra={"summary": extra_summary} if extra_summary else {},
        path=str(run_dir),
    )


def load_run_record(run_dir: Union[str, Path]) -> Optional[RunRecord]:
    """The run record of one directory: v2 file, or synthesized v1.

    Returns None when the directory holds neither a readable
    ``run_record.json`` nor a v1 sweep layout -- callers skip-and-warn.
    """
    run_dir = Path(run_dir)
    record_path = run_dir / RECORD_FILENAME
    if record_path.is_file():
        try:
            with open(record_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                return None
            return RunRecord.from_payload(payload, path=str(run_dir))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            return None
    return synthesize_v1_sweep_record(run_dir)


# ---------------------------------------------------------------------------
# Runs-root scanning (shared by `repro runs list` and the index)


def scan_runs_root(runs_root: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every run directory under the root, deterministically ordered.

    Recognizes both layouts: directories with a ``run_record.json``
    (any kind) and bare v1 sweep dirs.  Damaged dirs never raise; each
    entry's ``corrupt`` list names the unreadable files so the CLI can
    warn and keep going.  Ordering is created-at then run hash (name as
    the final tie-break), so ``repro runs list`` is stable no matter
    what order the filesystem returns.
    """
    runs_root = Path(runs_root)
    if not runs_root.is_dir():
        return []
    sweep_records = {
        rec["name"]: rec for rec in _list_sweep_runs(runs_root)
    }
    entries: List[Dict[str, Any]] = []
    for path in sorted(runs_root.iterdir()):
        if not path.is_dir():
            continue
        record_path = path / RECORD_FILENAME
        v1 = sweep_records.get(path.name)
        if not record_path.is_file() and v1 is None:
            continue  # not a run dir at all
        entry: Dict[str, Any] = {
            "name": path.name,
            "path": str(path),
            "kind": "sweep" if v1 is not None else None,
            "run_hash": None,
            "config_hash": (v1 or {}).get("config_hash"),
            "created_at": None,
            "schema_version": 1,
            "status": (v1 or {}).get("status", "in-progress"),
            "checkpointed": (v1 or {}).get("checkpointed", 0),
            "rows": None,
            "summary": (v1 or {}).get("summary"),
            "corrupt": list((v1 or {}).get("corrupt", [])),
        }
        if record_path.is_file():
            record = load_run_record(path)
            if record is None:
                entry["corrupt"].append(RECORD_FILENAME)
                entry["status"] = "corrupt"
            else:
                entry.update({
                    "kind": record.kind,
                    "run_hash": record.run_hash(),
                    "config_hash": record.config_hash,
                    "created_at": record.created_at,
                    "schema_version": record.schema_version,
                    "rows": len(record.rows),
                })
                # The record is the durable word on how the run ended;
                # v1 config/summary damage still warns but does not
                # override a readable record's status.
                if not entry["corrupt"]:
                    entry["status"] = record.status
        elif v1 is not None:
            # created_at lives in config.json for v1 dirs.
            entry["created_at"] = v1.get("created_at")
        entries.append(entry)
    entries.sort(key=lambda e: (
        e["created_at"] if e["created_at"] is not None else 0.0,
        e["run_hash"] or e["config_hash"] or "",
        e["name"],
    ))
    return entries


def utcnow() -> float:
    """Epoch seconds; one seam for tests that pin record timestamps."""
    return time.time()
