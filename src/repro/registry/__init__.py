"""Experiment registry: a unified run ledger + cross-run SQLite index.

The registry closes the loop the ROADMAP left half-open after PR 7:

* :mod:`repro.registry.record` -- the versioned ``RunRecord`` schema
  every run-producing surface emits (``sweep --run-dir``, ``report``,
  the throughput benchmarks, ``chaos run``, ``verify diff``), with v1
  (PR-7 sweep run-dir) synthesis for backward compatibility.
* :mod:`repro.registry.index` -- ``registry.sqlite`` (WAL), folding run
  dirs into ``runs`` / ``cells`` / ``bench`` / ``baselines`` tables,
  idempotently keyed by content-addressed run hash.
* :mod:`repro.registry.compare` -- tolerance-gated cell-by-cell run
  diffs (the ``repro runs compare`` regression gate).
* :mod:`repro.registry.views` -- bench trajectories and the
  ``BENCH_sweep.json`` view over indexed bench runs.
* :mod:`repro.registry.emit` -- per-surface RunRecord writers.
"""

from repro.registry.compare import (  # noqa: F401
    CellDiff,
    CompareResult,
    Tolerance,
    compare_cells,
    compare_runs,
)
from repro.registry.emit import (  # noqa: F401
    record_bench_run,
    record_chaos_run,
    record_report_run,
    record_run,
    record_verify_run,
)
from repro.registry.index import (  # noqa: F401
    DB_FILENAME,
    RegistryError,
    RegistryIndex,
    db_path_for,
)
from repro.registry.record import (  # noqa: F401
    RECORD_FILENAME,
    RECORD_FORMAT,
    RECORD_VERSION,
    RunRecord,
    cell_key,
    flatten_metrics,
    load_run_record,
    new_run_dir,
    scan_runs_root,
    sweep_rows_to_record_rows,
    synthesize_v1_sweep_record,
    write_run_record,
)
from repro.registry.views import (  # noqa: F401
    BENCH_SWEEP_BENCHMARK,
    BENCH_VIEW_FORMAT,
    bench_view_payload,
    refresh_bench_view,
    render_trajectory,
)

__all__ = [
    "BENCH_SWEEP_BENCHMARK",
    "BENCH_VIEW_FORMAT",
    "CellDiff",
    "CompareResult",
    "DB_FILENAME",
    "RECORD_FILENAME",
    "RECORD_FORMAT",
    "RECORD_VERSION",
    "RegistryError",
    "RegistryIndex",
    "RunRecord",
    "Tolerance",
    "bench_view_payload",
    "cell_key",
    "compare_cells",
    "compare_runs",
    "db_path_for",
    "flatten_metrics",
    "load_run_record",
    "new_run_dir",
    "record_bench_run",
    "record_chaos_run",
    "record_report_run",
    "record_run",
    "record_verify_run",
    "refresh_bench_view",
    "render_trajectory",
    "scan_runs_root",
    "sweep_rows_to_record_rows",
    "synthesize_v1_sweep_record",
    "write_run_record",
]
