"""RunRecord emitters for every run-producing surface.

Each helper translates one surface's native result shape -- bench
timing payloads, report comparisons, chaos soak reports, differential
check reports -- into the common :class:`~repro.registry.record.RunRecord`
form and writes it into a content-addressed directory under the runs
root, where ``repro runs index`` will find it.  (Sweeps emit their own
record inline from :func:`repro.engine.sweep.run_sweep`, which already
owns a run directory.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.registry.record import (
    RunRecord,
    default_code_versions,
    flatten_metrics,
    new_run_dir,
    utcnow,
)


def record_run(
    runs_root: Union[str, Path],
    kind: str,
    config: Dict[str, Any],
    rows: List[Dict[str, Any]],
    metrics: Optional[Dict[str, Any]] = None,
    status: str = "complete",
    wall_seconds: Optional[float] = None,
    created_at: Optional[float] = None,
) -> Path:
    """Write one run record under the root; returns its directory."""
    record = RunRecord(
        kind=kind,
        config=config,
        rows=rows,
        metrics=metrics or {},
        status=status,
        created_at=created_at if created_at is not None else utcnow(),
        wall_seconds=wall_seconds,
        code_versions=default_code_versions(),
    )
    return new_run_dir(runs_root, record)


def record_bench_run(
    runs_root: Union[str, Path],
    benchmark: str,
    payload: Dict[str, Any],
    config: Optional[Dict[str, Any]] = None,
    created_at: Optional[float] = None,
) -> Path:
    """One benchmark's timing payload as a bench-kind run.

    ``payload`` is the nested timings dict the bench measured; its
    scalar leaves become comparable cells (dotted names for nested
    breakdowns) while the full nested form is preserved under
    ``metrics`` for the BENCH view.
    """
    return record_run(
        runs_root,
        kind="bench",
        config={"benchmark": benchmark, **(config or {})},
        rows=[{"cell": benchmark, "values": flatten_metrics(payload)}],
        metrics={benchmark: payload},
        created_at=created_at,
    )


def record_report_run(
    runs_root: Union[str, Path],
    results,
    config: Dict[str, Any],
    wall_seconds: Optional[float] = None,
) -> Path:
    """A ``repro report`` pass: every paper-vs-measured row as a cell."""
    rows: List[Dict[str, Any]] = []
    for result in results:
        if result.comparison is None:
            continue
        for row in result.comparison.rows:
            rows.append({
                "cell": f"{result.experiment_id}/{row.label}",
                "values": {
                    "paper": row.paper_value,
                    "measured": row.measured_value,
                },
                "meta": {"unit": row.unit} if row.unit else {},
            })
    return record_run(
        runs_root,
        kind="report",
        config=config,
        rows=rows,
        wall_seconds=wall_seconds,
    )


def record_chaos_run(
    runs_root: Union[str, Path], report: Dict[str, Any]
) -> Path:
    """A chaos soak report as a chaos-kind run (full report preserved)."""
    rows = [
        {
            "cell": f"episode-{record['episode']:03d}/{record['kind']}",
            "values": {
                "ok": bool(record.get("ok")),
                **{
                    f"check.{name}": bool(passed)
                    for name, passed in sorted(
                        (record.get("checks") or {}).items()
                    )
                },
            },
        }
        for record in report.get("results", [])
    ]
    return record_run(
        runs_root,
        kind="chaos",
        config={
            "master_seed": report.get("master_seed"),
            "episodes": report.get("episodes"),
            "kinds": report.get("kinds"),
        },
        rows=rows,
        metrics={"report": report},
        status="complete" if report.get("ok") else "failed",
    )


def record_verify_run(
    runs_root: Union[str, Path], report: Dict[str, Any]
) -> Path:
    """A differential-check report as a verify-kind run."""
    rows = [
        {
            "cell": f"case-{result['case']:03d}",
            "policy": (result.get("config") or {}).get("policy"),
            "values": {
                "ok": bool(result.get("ok")),
                "events": result.get("events", 0),
            },
        }
        for result in report.get("results", [])
    ]
    return record_run(
        runs_root,
        kind="verify",
        config={
            "seed": report.get("seed"),
            "cases": report.get("cases"),
            "engines": report.get("engines"),
        },
        rows=rows,
        metrics={"report": report},
        status="complete" if report.get("ok") else "failed",
    )
