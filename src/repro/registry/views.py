"""Derived read-views over the registry: trajectories and bench files.

``repro runs trajectory`` renders a named benchmark's metric history
across every indexed bench run, and ``BENCH_sweep.json`` -- which PR 6
introduced as a hand-written root file -- is regenerated here as a pure
view over the index, so the root file and the database can never
disagree: the benchmark writes a RunRecord, the record is indexed, and
the file is re-derived from whatever the DB then holds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.registry.index import DB_FILENAME, RegistryError, RegistryIndex

#: ``format`` marker of the regenerated BENCH view file.
BENCH_VIEW_FORMAT = "repro-bench-view-v1"

#: The benchmark whose view lives at the repo root (the ROADMAP's sweep
#: perf trajectory, seeded by PR 6).
BENCH_SWEEP_BENCHMARK = "stackdist_sweep"


def _format_when(created_at: Optional[float]) -> str:
    if created_at is None:
        return "--"
    import datetime

    stamp = datetime.datetime.fromtimestamp(
        created_at, tz=datetime.timezone.utc
    )
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


def render_trajectory(
    index: RegistryIndex,
    benchmark: str,
    metric: Optional[str] = None,
) -> str:
    """The perf history of one benchmark as a table + scaled bars.

    ``metric`` picks the bar column; the default prefers ``speedup``
    (the gate metric every throughput bench reports) and falls back to
    the benchmark's first top-level metric.
    """
    from repro.analysis.render import TextTable

    history = index.bench_history(benchmark)
    if not history:
        known = index.benchmarks()
        hint = f"; indexed benchmarks: {', '.join(known)}" if known else \
            "; no bench runs indexed yet"
        raise RegistryError(f"no bench runs for {benchmark!r}{hint}")
    metric_names: List[str] = []
    for point in history:
        for name in point["metrics"]:
            if name not in metric_names:
                metric_names.append(name)
    if metric is None:
        metric = "speedup" if "speedup" in metric_names else metric_names[0]
    elif metric not in metric_names:
        raise RegistryError(
            f"benchmark {benchmark!r} has no metric {metric!r}; "
            f"choose from {', '.join(metric_names)}"
        )
    values = [
        point["metrics"].get(metric) for point in history
    ]
    numeric = [
        value for value in values
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    peak = max((abs(value) for value in numeric), default=0.0)
    table = TextTable(
        ["run", "recorded (UTC)", *metric_names, f"{metric} trend"],
        title=f"Perf trajectory: {benchmark} ({len(history)} runs)",
    )
    for point, value in zip(history, values):
        bar = ""
        if peak > 0 and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            bar = "#" * max(1, round(24 * abs(value) / peak))
        table.add_row(
            point["run_hash"][:12],
            _format_when(point["created_at"]),
            *(
                f"{point['metrics'][name]:g}"
                if isinstance(point["metrics"].get(name), (int, float))
                and not isinstance(point["metrics"].get(name), bool)
                else str(point["metrics"].get(name, "--"))
                for name in metric_names
            ),
            bar,
        )
    return table.render()


def bench_view_payload(
    index: RegistryIndex, benchmark: str
) -> Dict[str, Any]:
    """The BENCH view document: newest run's full payload + history.

    ``latest`` is the newest run's nested metric payload exactly as the
    benchmark recorded it (per-policy breakdowns included); ``history``
    is the top-level metric trajectory, oldest first.
    """
    history = index.bench_history(benchmark)
    if not history:
        raise RegistryError(f"no bench runs for {benchmark!r}")
    newest = history[-1]
    record = index.get_record(newest["run_hash"])
    latest = (record.get("metrics") or {}).get(benchmark, {})
    return {
        "format": BENCH_VIEW_FORMAT,
        "benchmark": benchmark,
        "runs_indexed": len(history),
        "latest_run": newest["run_hash"],
        "latest": latest,
        "history": [
            {
                "run": point["run_hash"],
                "created_at": point["created_at"],
                **point["metrics"],
            }
            for point in history
        ],
    }


def refresh_bench_view(
    runs_root: Union[str, Path],
    benchmark: str,
    out_path: Union[str, Path],
) -> Dict[str, Any]:
    """(Re)index a runs root and rewrite one benchmark's view file.

    The whole pipeline behind ``BENCH_sweep.json``: fold new run dirs
    into ``registry.sqlite``, derive the view, write it atomically.
    Returns the written payload.
    """
    runs_root = Path(runs_root)
    with RegistryIndex.open(runs_root / DB_FILENAME) as index:
        index.index_root(runs_root)
        payload = bench_view_payload(index, benchmark)
    out_path = Path(out_path)
    tmp = out_path.with_name(out_path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    tmp.replace(out_path)
    return payload
