"""Cell-by-cell run comparison: the regression gate.

``repro runs compare A B`` (or ``A`` against a promoted baseline) diffs
two indexed runs over the ``cells`` table: every cell the runs share is
compared metric by metric under a configurable relative/absolute
tolerance, and cells present on only one side are regressions in
themselves (a vanished grid cell is not a pass).  The verdict maps to
the exit code -- 0 when everything is within tolerance, 1 otherwise --
so "did PR N regress policy X on workload Y" is one command in CI.

Numbers come straight from SQLite, which returns the exact binary64 (or
64-bit integer) the run directory's JSON stored, so a zero-tolerance
compare of a run against itself is exact, not approximately so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class Tolerance:
    """Allowed per-metric slack: |l - r| <= max(abs, rel * |larger|)."""

    rel: float = 0.0
    abs: float = 0.0

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs < 0:
            raise ValueError("tolerances must be >= 0")

    def within(self, left: Any, right: Any) -> bool:
        numeric = (
            isinstance(left, (int, float)) and not isinstance(left, bool)
            and isinstance(right, (int, float)) and not isinstance(right, bool)
        )
        if not numeric:
            return left == right
        bound = max(self.abs, self.rel * max(abs(left), abs(right)))
        return abs(left - right) <= bound


@dataclass
class CellDiff:
    """One differing (cell, metric) pair."""

    cell: str
    metric: str
    left: Any
    right: Any


@dataclass
class CompareResult:
    """Everything one comparison found."""

    left: str
    right: str
    n_cells: int = 0
    n_metrics: int = 0
    diffs: List[CellDiff] = field(default_factory=list)
    #: Cells present in only one run.
    only_left: List[str] = field(default_factory=list)
    only_right: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs and not self.only_left and not self.only_right

    def render(self, max_rows: int = 40) -> str:
        """A readable per-cell report of what moved."""
        from repro.analysis.render import TextTable

        verdict = (
            "identical within tolerance" if self.ok
            else f"{len(self.diffs)} metric(s) out of tolerance"
        )
        lines = [
            f"compare {self.left} vs {self.right}: "
            f"{self.n_cells} shared cells x {self.n_metrics} metrics, "
            f"{verdict}"
        ]
        for side, cells in (
            (self.left, self.only_left), (self.right, self.only_right)
        ):
            if cells:
                shown = ", ".join(cells[:6])
                more = f" (+{len(cells) - 6} more)" if len(cells) > 6 else ""
                lines.append(f"  only in {side}: {shown}{more}")
        if self.diffs:
            table = TextTable(
                ["cell", "metric", self.left, self.right, "delta"],
                title="Out-of-tolerance cells",
            )
            for diff in self.diffs[:max_rows]:
                delta = "--"
                if (isinstance(diff.left, (int, float))
                        and isinstance(diff.right, (int, float))
                        and not isinstance(diff.left, bool)
                        and not isinstance(diff.right, bool)):
                    delta = f"{diff.right - diff.left:+g}"
                table.add_row(
                    diff.cell, diff.metric, str(diff.left), str(diff.right),
                    delta,
                )
            lines.append(table.render())
            if len(self.diffs) > max_rows:
                lines.append(
                    f"  ... {len(self.diffs) - max_rows} more differing "
                    f"metric(s) suppressed"
                )
        return "\n".join(lines)


def compare_cells(
    left_cells: Dict[str, Dict[str, Any]],
    right_cells: Dict[str, Dict[str, Any]],
    tolerance: Tolerance = Tolerance(),
    left_label: str = "left",
    right_label: str = "right",
) -> CompareResult:
    """Diff two ``{cell: {metric: value}}`` maps."""
    result = CompareResult(left=left_label, right=right_label)
    shared = sorted(set(left_cells) & set(right_cells))
    result.only_left = sorted(set(left_cells) - set(right_cells))
    result.only_right = sorted(set(right_cells) - set(left_cells))
    result.n_cells = len(shared)
    metrics_seen = set()
    for cell in shared:
        left, right = left_cells[cell], right_cells[cell]
        for metric in sorted(set(left) | set(right)):
            metrics_seen.add(metric)
            missing = object()
            lvalue = left.get(metric, missing)
            rvalue = right.get(metric, missing)
            if lvalue is missing or rvalue is missing:
                result.diffs.append(CellDiff(
                    cell, metric,
                    "<absent>" if lvalue is missing else lvalue,
                    "<absent>" if rvalue is missing else rvalue,
                ))
                continue
            if not tolerance.within(lvalue, rvalue):
                result.diffs.append(CellDiff(cell, metric, lvalue, rvalue))
    result.n_metrics = len(metrics_seen)
    return result


def compare_runs(
    index,
    left_hash: str,
    right_hash: str,
    tolerance: Tolerance = Tolerance(),
) -> CompareResult:
    """Diff two indexed runs by hash, straight off the cells table."""
    return compare_cells(
        index.cells(left_hash),
        index.cells(right_hash),
        tolerance,
        left_label=left_hash[:12],
        right_label=right_hash[:12],
    )
