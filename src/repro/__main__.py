"""``python -m repro`` runs the CLI."""

import sys

from repro.core.cli import main

sys.exit(main())
