"""Deterministic chaos harness: seeded fault schedules over the
production fault points, with bit-identical-recovery verdicts.

:mod:`repro.chaos.plan` builds fault plans (shared with the resilience
test suite); :mod:`repro.chaos.harness` derives per-episode seeds from a
master seed, runs fault episodes against every robustness layer, and
writes a timestamp-free, byte-reproducible ``chaos_report.json``.
"""

from repro.chaos.harness import (
    EPISODE_KINDS,
    REPORT_NAME,
    episode_kinds,
    episode_seed,
    render_report,
    run_chaos,
    run_episode,
    write_report,
)
from repro.chaos.plan import (
    FaultPlan,
    delete_shard,
    flip_shard_byte,
    truncate_shard,
)

__all__ = [
    "EPISODE_KINDS",
    "REPORT_NAME",
    "FaultPlan",
    "delete_shard",
    "episode_kinds",
    "episode_seed",
    "flip_shard_byte",
    "render_report",
    "run_chaos",
    "run_episode",
    "truncate_shard",
    "write_report",
]
