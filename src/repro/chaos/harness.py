"""Seeded chaos episodes: randomized fault schedules with exact verdicts.

One *episode* = derive a deterministic sub-seed from the master seed
(blake2s over ``"chaos:<seed>:<index>"``), generate a workload and a
fault schedule from it, inject the faults through the production fault
points, and assert that recovery is **bit-identical** to the fault-free
reference -- all with runtime invariant checking enabled.  Episode kinds
cover the layers the robustness stack protects:

* ``sweep-worker-kill`` -- SIGKILL a forked sweep worker mid-task; the
  retried sweep must match the fault-free cells exactly.
* ``sweep-interrupt-resume`` -- KeyboardInterrupt the sweep parent after
  N checkpoints; the resumed run must complete bit-identically.
* ``serve-crash-reopen`` -- abandon a journaled session mid-stream (no
  snapshot, as a crash would); recovery replays the journal tail and the
  finished stream matches the reference.
* ``serve-torn-tail`` -- tear trailing bytes off the journal (a crashed
  append); repair drops exactly the torn frame and the client's re-send
  completes the stream.
* ``shard-damage`` -- truncate or delete a cached store shard between
  sweeps; the self-healing cache quarantines, regenerates, and the rows
  stay identical.
* ``slow-consumer`` -- delay every chunk apply; slowness must never
  change results.
* ``hsm-corrupt`` -- the canary: deliberately skew one cache counter
  behind the ``hsm-batch`` fault point and require the invariant checker
  to catch it *and* the quarantine bundle to replay the violation.

Verdicts are recorded as scheduling-independent booleans, and the report
carries no wall-clock timestamps, so the same master seed always
produces byte-identical ``chaos_report.json`` content -- every failing
episode is one ``repro chaos replay --seed S --episode I`` away.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.chaos.plan import FaultPlan, delete_shard, truncate_shard
from repro.verify.invariants import (
    ENABLE_ENV,
    QUARANTINE_ENV,
    InvariantViolation,
)

EPISODE_KINDS = (
    "sweep-worker-kill",
    "sweep-interrupt-resume",
    "serve-crash-reopen",
    "serve-torn-tail",
    "shard-damage",
    "slow-consumer",
    "hsm-corrupt",
)

REPORT_FORMAT = "repro-chaos-report-v1"
REPORT_NAME = "chaos_report.json"

#: Tiny fixed sweep workload: stores are cached across episodes, and the
#: grid stays small enough that a full episode is a few seconds.
_SWEEP_BASE = dict(
    policies=("stp", "lru"),
    capacity_fractions=(0.01, 0.04),
    seeds=(0,),
    scale=0.002,
    duration_days=90.0,
    retry_backoff=0.0,
)


def episode_seed(master_seed: int, index: int) -> int:
    """The deterministic sub-seed for one episode (blake2s-derived)."""
    digest = hashlib.blake2s(f"chaos:{master_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def episode_kinds(
    master_seed: int, episodes: int, kinds: Optional[Sequence[str]] = None
) -> List[str]:
    """The kind of each episode: a seeded shuffle cycled over the run.

    Cycling a shuffled order (rather than sampling independently) makes
    a short run -- the CI smoke runs five episodes -- cover distinct
    layers instead of collapsing onto repeats, while staying a pure
    function of the master seed.
    """
    pool = list(kinds if kinds is not None else EPISODE_KINDS)
    for kind in pool:
        if kind not in EPISODE_KINDS:
            raise ValueError(
                f"unknown episode kind {kind!r}; "
                f"choose from {list(EPISODE_KINDS)}"
            )
    order = list(pool)
    rng = np.random.default_rng(episode_seed(master_seed, -1) % 2**32)
    rng.shuffle(order)
    return [order[i % len(order)] for i in range(episodes)]


@contextlib.contextmanager
def _scoped_env(**pairs: Optional[str]) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in pairs}
    for key, value in pairs.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _synth_chunks(rng: np.random.Generator, n_chunks: int, events: int,
                  n_files: int = 80) -> List[Any]:
    """A deterministic, globally time-ordered chunked event stream."""
    from repro.engine.batch import EventBatch

    t0 = 0.0
    chunks = []
    for _ in range(n_chunks):
        times = np.sort(t0 + rng.random(events) * 3600.0)
        t0 = float(times[-1])
        chunks.append(EventBatch.from_columns(
            file_id=rng.integers(0, n_files, events),
            size=rng.integers(1, 1 << 20, events),
            time=times,
            is_write=rng.random(events) < 0.3,
            device=rng.integers(0, 3, events),
            error=(rng.random(events) < 0.05).astype(np.int8),
            user=rng.integers(0, 40, events),
            latency=rng.random(events) * 5.0,
            transfer=rng.random(events) * 2.0,
        ))
    return chunks


def _session_spec(rng: np.random.Generator, name: str):
    from repro.serve.session import SessionSpec

    return SessionSpec(
        name=name,
        policy="lru",
        capacity_bytes=int(rng.integers(2, 8)) * 1024 * 1024,
        labels=("alpha", "beta"),
    )


def _reference_finalize(spec, chunks) -> dict:
    """What an uninterrupted session reports after the same stream."""
    from repro.serve.session import ReplaySession

    session = ReplaySession(spec)
    for chunk in chunks:
        session.feed(chunk)
    return session.finalize()


def _sweep_cells(result) -> list:
    """Fault-independent view of sweep rows: identity + metrics only."""
    return sorted(
        (row.seed, row.scenario, row.policy, row.capacity_fraction,
         row.capacity_bytes, row.metrics)
        for row in result.rows
    )


# ---------------------------------------------------------------------------
# Episode implementations (each returns a dict of boolean/int verdicts)


def _episode_sweep_worker_kill(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.engine import SweepConfig, run_sweep

    baseline = run_sweep(SweepConfig(**_SWEEP_BASE, cache_dir=str(cache_dir)))
    plan = FaultPlan(workdir / "plan")
    plan.kill_worker(once=True)
    with plan.activate():
        result = run_sweep(SweepConfig(
            **_SWEEP_BASE, cache_dir=str(cache_dir), workers=2,
        ))
    return {
        "complete": not result.failed_cells,
        "retried": result.retries >= 1,
        "bit_identical": _sweep_cells(result) == _sweep_cells(baseline),
    }


def _episode_sweep_interrupt_resume(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.engine import SweepConfig, run_sweep

    base = dict(_SWEEP_BASE, engine="des")  # every cell its own task
    baseline = run_sweep(SweepConfig(**base, cache_dir=str(cache_dir)))
    runs = workdir / "runs"
    interrupt_at = int(rng.integers(1, 4))  # of 4 checkpointable tasks
    plan = FaultPlan(workdir / "plan")
    plan.interrupt_after_checkpoints(interrupt_at)
    interrupted = False
    with plan.activate():
        try:
            run_sweep(SweepConfig(
                **base, cache_dir=str(cache_dir), run_dir=str(runs),
            ))
        except KeyboardInterrupt:
            interrupted = True
    resumed = run_sweep(SweepConfig(
        **base, cache_dir=str(cache_dir), run_dir=str(runs), resume=True,
    ))
    return {
        "interrupted": interrupted,
        "complete": not resumed.failed_cells,
        "work_conserved": (
            resumed.tasks_resumed + resumed.tasks_executed == 4
            and resumed.tasks_resumed >= interrupt_at
        ),
        "bit_identical": _sweep_cells(resumed) == _sweep_cells(baseline),
    }


def _episode_serve_crash_reopen(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.serve.session import JournaledSession

    n_chunks = int(rng.integers(4, 8))
    crash_at = int(rng.integers(1, n_chunks))
    chunks = _synth_chunks(rng, n_chunks, int(rng.integers(150, 350)))
    spec = _session_spec(rng, "chaos-crash")
    reference = _reference_finalize(spec, chunks)

    live = JournaledSession.create(workdir / "session", spec, snapshot_every=2)
    for seq in range(crash_at):
        live.feed(chunks[seq], seq)
    # A crash writes no snapshot and closes nothing: just drop the
    # object.  Recovery must rebuild purely from journal + snapshots.
    del live

    recovered = JournaledSession.open(workdir / "session")
    resumed_at = recovered.next_seq
    for seq in range(resumed_at, n_chunks):
        recovered.feed(chunks[seq], seq)
    final = recovered.session.finalize()
    return {
        "resumed_at_crash_point": resumed_at == crash_at,
        "bit_identical": final == reference,
    }


def _episode_serve_torn_tail(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.serve.session import JournaledSession

    # Odd chunk count: with snapshot_every=2 the final frame is never
    # snapshot-covered, matching what a crashed append can actually lose
    # (a frame that was neither applied nor snapshotted).
    n_chunks = int(rng.integers(1, 3)) * 2 + 1
    chunks = _synth_chunks(rng, n_chunks, int(rng.integers(150, 350)))
    spec = _session_spec(rng, "chaos-torn")
    reference = _reference_finalize(spec, chunks)

    live = JournaledSession.create(workdir / "session", spec, snapshot_every=2)
    for seq, chunk in enumerate(chunks):
        live.feed(chunk, seq)
    live.journal.close()
    journal_path = live.journal.journal_path
    torn = int(rng.integers(1, 64))
    with open(journal_path, "r+b") as handle:
        handle.truncate(max(journal_path.stat().st_size - torn, 1))

    recovered = JournaledSession.open(workdir / "session")
    lost_last = recovered.next_seq == n_chunks - 1
    if lost_last:  # the torn frame was never acked; the client re-sends
        recovered.feed(chunks[-1], n_chunks - 1)
    final = recovered.session.finalize()
    return {
        "tail_repaired": recovered.next_seq == n_chunks,
        "lost_exactly_torn_frame": lost_last,
        "bit_identical": final == reference,
    }


def _episode_shard_damage(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.engine import SweepConfig, run_sweep
    from repro.engine.store import store_dir_for
    from repro.util.units import DAY
    from repro.workload.config import WorkloadConfig

    config = SweepConfig(**_SWEEP_BASE, cache_dir=str(cache_dir))
    baseline = run_sweep(config)
    workload = WorkloadConfig(
        scale=_SWEEP_BASE["scale"], seed=0,
        duration_seconds=_SWEEP_BASE["duration_days"] * DAY,
        fill_latencies=False,
    )
    slot = store_dir_for(cache_dir, workload, "hsm")
    damage = truncate_shard if rng.random() < 0.5 else delete_shard
    damage(slot, index=int(rng.integers(0, 2)) - 1)

    healed = run_sweep(config)
    quarantines = sorted(cache_dir.glob(f"{slot.name}.quarantine-*"))
    for stale in quarantines:  # keep the shared cache dir tidy
        import shutil

        shutil.rmtree(stale, ignore_errors=True)
    return {
        "complete": not healed.failed_cells,
        "quarantined": len(quarantines) >= 1,
        "bit_identical": _sweep_cells(healed) == _sweep_cells(baseline),
    }


def _episode_slow_consumer(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.serve.session import JournaledSession

    n_chunks = int(rng.integers(3, 6))
    chunks = _synth_chunks(rng, n_chunks, int(rng.integers(100, 250)))
    spec = _session_spec(rng, "chaos-slow")
    reference = _reference_finalize(spec, chunks)

    plan = FaultPlan(workdir / "plan")
    plan.slow_consumer(0.02, match=f"{spec.name}:")
    with plan.activate():
        live = JournaledSession.create(workdir / "session", spec)
        for seq, chunk in enumerate(chunks):
            live.feed(chunk, seq)
        final = live.session.finalize()
    return {"bit_identical": final == reference}


def _episode_hsm_corrupt(rng, workdir: Path, cache_dir: Path) -> dict:
    from repro.engine.replay import replay_policy
    from repro.verify.diff import replay_bundle

    n_batches = int(rng.integers(4, 10))
    corrupt_at = int(rng.integers(0, n_batches))
    batches = _synth_chunks(rng, n_batches, int(rng.integers(150, 300)))
    clean = [batch.good() for batch in batches]
    import dataclasses as _dc

    clean = [
        _dc.replace(batch, size=np.maximum(batch.size, 1)) for batch in clean
    ]
    capacity = int(rng.integers(2, 8)) * 1024 * 1024

    plan = FaultPlan(workdir / "plan")
    plan.corrupt_hsm_batch(match=f"batch:{corrupt_at}")
    verdict = {"violation_caught": False, "bundle_written": False,
               "bundle_replays": False}
    with plan.activate():
        try:
            replay_policy(clean, "lru", capacity)
        except InvariantViolation as exc:
            verdict["violation_caught"] = exc.law == "hit-miss-partition"
            if exc.bundle is not None:
                verdict["bundle_written"] = True
                replayed = replay_bundle(exc.bundle)
                verdict["bundle_replays"] = bool(replayed["reproduced"])
    return verdict


_EPISODES = {
    "sweep-worker-kill": _episode_sweep_worker_kill,
    "sweep-interrupt-resume": _episode_sweep_interrupt_resume,
    "serve-crash-reopen": _episode_serve_crash_reopen,
    "serve-torn-tail": _episode_serve_torn_tail,
    "shard-damage": _episode_shard_damage,
    "slow-consumer": _episode_slow_consumer,
    "hsm-corrupt": _episode_hsm_corrupt,
}


def run_episode(kind: str, seed: int, workdir: Path,
                cache_dir: Path) -> Dict[str, Any]:
    """Run one episode under invariant checking; returns its record.

    The fault plan, quarantine dir, and scratch state are all scoped to
    ``workdir`` and the episode's own ``activate()`` block, so episodes
    are independent no matter how they end.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    record: Dict[str, Any] = {"kind": kind, "seed": seed}
    rng = np.random.default_rng(seed % 2**63)
    with _scoped_env(**{
        ENABLE_ENV: "1",
        QUARANTINE_ENV: str(workdir / "quarantine"),
    }):
        try:
            checks = _EPISODES[kind](rng, workdir, Path(cache_dir))
        except InvariantViolation as exc:
            record["ok"] = False
            record["error"] = f"invariant {exc.law} violated at {exc.site}"
            record["bundle"] = str(exc.bundle) if exc.bundle else None
            return record
        except Exception as exc:  # noqa: BLE001 - episode verdict, not crash
            record["ok"] = False
            record["error"] = f"{type(exc).__name__}: {exc}"
            return record
    record["checks"] = checks
    record["ok"] = all(checks.values())
    if not record["ok"]:
        record["error"] = "checks failed: " + ", ".join(
            sorted(name for name, passed in checks.items() if not passed)
        )
    return record


def run_chaos(
    master_seed: int,
    episodes: int,
    workdir: Path,
    kinds: Optional[Sequence[str]] = None,
    only_episode: Optional[int] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run a seeded chaos soak; returns the (timestamp-free) report.

    ``only_episode`` replays a single episode of the same run -- the
    seed derivation and kind assignment are identical, so episode ``i``
    of ``repro chaos replay`` is exactly episode ``i`` of the original
    soak.
    """
    workdir = Path(workdir)
    schedule = episode_kinds(master_seed, episodes, kinds)
    cache_dir = workdir / "store-cache"
    cache_dir.mkdir(parents=True, exist_ok=True)
    results = []
    for index, kind in enumerate(schedule):
        if only_episode is not None and index != only_episode:
            continue
        if progress is not None:
            progress(index, kind)
        record = run_episode(
            kind, episode_seed(master_seed, index),
            workdir / f"episode-{index:03d}", cache_dir,
        )
        record["episode"] = index
        results.append(record)
    # Scrub machine-local scratch paths so the report is byte-identical
    # across runs of the same seed (the bit-reproducibility contract).
    prefix = str(workdir)
    for record in results:
        for key in ("error", "bundle"):
            value = record.get(key)
            if isinstance(value, str) and prefix in value:
                record[key] = value.replace(prefix, "<workdir>")
    failures = [record["episode"] for record in results if not record["ok"]]
    return {
        "format": REPORT_FORMAT,
        "master_seed": master_seed,
        "episodes": episodes,
        "kinds": schedule,
        "results": results,
        "failures": failures,
        "ok": not failures,
    }


def write_report(report: Dict[str, Any], path: Path) -> Path:
    """Write the chaos report deterministically (sorted keys, no clock)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def render_report(report: Dict[str, Any]) -> str:
    """A terminal summary table of one chaos report."""
    verdict = "OK" if report["ok"] else f"{len(report['failures'])} FAILED"
    lines = [
        f"chaos soak: seed {report['master_seed']}, "
        f"{report['episodes']} episode(s), {verdict}",
    ]
    for record in report["results"]:
        status = "ok" if record["ok"] else "FAIL"
        detail = record.get("error") or ", ".join(
            name for name, passed in record.get("checks", {}).items() if passed
        )
        lines.append(
            f"  episode {record['episode']:3d}  {record['kind']:<22} "
            f"{status:<4}  {detail}"
        )
    if not report["ok"]:
        lines.append(
            "replay a failure: repro chaos replay "
            f"--seed {report['master_seed']} --episode "
            f"{report['failures'][0]}"
        )
    return "\n".join(lines)
