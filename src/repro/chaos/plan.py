"""Deterministic fault-plan construction (shared by tests and chaos).

A :class:`FaultPlan` builds the JSON plan that
:func:`repro.engine.resilience.fault_point` reads via the
``REPRO_FAULT_PLAN`` environment variable: which production fault point
to trip (by site + label substring), what to do there (SIGKILL the
worker, sleep, raise, interrupt the parent, count executions, corrupt a
counter), and how often (every hit, exactly once across all processes,
or on the Nth hit).  Everything is file-based, so rules coordinate
across forked workers without shared memory: exactly-once uses an
``O_EXCL`` flag file, task counters append to a log the caller reads
back.

Because the coordination state lives in files, *hygiene matters*: a
consumed ``once_path`` flag silently disarms the same plan on its next
use, and a stale ``REPRO_FAULT_PLAN`` leaks one test's faults into the
next.  :meth:`FaultPlan.reset` re-arms a plan (drops the scratch files,
keeps the rules), :meth:`FaultPlan.cleanup` removes everything it wrote,
and :meth:`FaultPlan.activate` scopes the environment variable so
back-to-back chaos episodes start from a clean slate.

Shard-damage helpers (:func:`truncate_shard`, :func:`flip_shard_byte`,
:func:`delete_shard`) corrupt cached :class:`TraceStore` slots the way a
failing disk would, for self-healing-cache scenarios.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Iterator, List, Optional

from repro.engine.resilience import FAULT_PLAN_ENV

PLAN_NAME = "fault-plan.json"


class FaultPlan:
    """Builder for one scenario's fault plan, rooted in a scratch dir."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.rules: List[dict] = []
        self._n = 0
        self._count_path: Optional[Path] = None
        self._scratch_paths: List[Path] = []

    @property
    def plan_path(self) -> Path:
        return self.root / PLAN_NAME

    def _scratch(self, kind: str) -> Path:
        self._n += 1
        path = self.root / f"fault-{kind}-{self._n}"
        self._scratch_paths.append(path)
        return path

    def _rule(self, site: str, action: str, *, match: Optional[str] = None,
              once: bool = False, **extra) -> dict:
        rule = {"site": site, "action": action, **extra}
        if match is not None:
            rule["match"] = match
        if once:
            rule["once_path"] = str(self._scratch("once"))
        self.rules.append(rule)
        return rule

    # -- worker-side faults -------------------------------------------------

    def kill_worker(self, match: Optional[str] = None, *, once: bool = True) -> None:
        """SIGKILL the worker process mid-task (a crashed fork)."""
        self._rule("worker-task", "kill", match=match, once=once)

    def sleep_worker(self, seconds: float, match: Optional[str] = None,
                     *, once: bool = True) -> None:
        """Hang the worker mid-task (exercises the task timeout)."""
        self._rule("worker-task", "sleep", match=match, once=once,
                   seconds=seconds)

    def raise_worker(self, match: Optional[str] = None, *, once: bool = True) -> None:
        """Raise FaultInjected inside the task (a deterministic failure)."""
        self._rule("worker-task", "raise", match=match, once=once)

    def count_worker_tasks(self) -> Path:
        """Log every task execution; returns the log path to read back."""
        self._count_path = self._scratch("count")
        self._rule("worker-task", "count", count_path=str(self._count_path))
        return self._count_path

    # -- parent-side faults -------------------------------------------------

    def interrupt_after_checkpoints(self, n: int) -> None:
        """KeyboardInterrupt the parent right after the Nth checkpoint
        lands (a simulated Ctrl-C mid-sweep)."""
        self._rule("parent-checkpoint", "interrupt", after=n,
                   counter_path=str(self._scratch("counter")))

    def sigterm_after_checkpoints(self, n: int) -> None:
        """SIGTERM the parent right after the Nth checkpoint lands (a
        simulated orchestrator stop mid-sweep)."""
        self._rule("parent-checkpoint", "sigterm", after=n,
                   counter_path=str(self._scratch("counter")))

    # -- service-side faults ------------------------------------------------

    def kill_server_mid_chunk(self, match: Optional[str] = None,
                              *, once: bool = True) -> None:
        """SIGKILL the server after a chunk's journal append but before
        it is applied (the crash window recovery must close)."""
        self._rule("serve-journal", "kill", match=match, once=once)

    def kill_server_before_journal(self, match: Optional[str] = None,
                                   *, once: bool = True) -> None:
        """SIGKILL the server before a chunk's journal append (the chunk
        is lost; the client's re-send must land cleanly)."""
        self._rule("serve-ingest", "kill", match=match, once=once)

    def slow_consumer(self, seconds: float, match: Optional[str] = None) -> None:
        """Delay every chunk apply (a slow session worker): the ingest
        queue backs up, exercising 429 backpressure and metrics shedding."""
        self._rule("serve-applied", "sleep", match=match, seconds=seconds)

    # -- replay-side faults -------------------------------------------------

    def corrupt_hsm_batch(self, match: Optional[str] = None,
                          *, once: bool = True) -> None:
        """Deliberately skew a cache counter after one replayed batch.

        The ``hsm-batch`` call site bumps ``read_hits`` when it sees the
        ``corrupt`` action fire -- a one-count divergence no end-to-end
        comparison would notice, but the invariant checker's
        hit-miss-partition law must catch on the very next check.
        """
        self._rule("hsm-batch", "corrupt", match=match, once=once)

    # -- installation & hygiene --------------------------------------------

    def write(self) -> Path:
        """Write the plan JSON; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.plan_path.write_text(json.dumps({"rules": self.rules}))
        return self.plan_path

    def executed_labels(self) -> List[str]:
        """Task labels logged by :meth:`count_worker_tasks`, in hit order."""
        if self._count_path is None or not self._count_path.is_file():
            return []
        return self._count_path.read_text().splitlines()

    def reset(self) -> None:
        """Re-arm the plan: drop consumed flag/counter/log files.

        A ``once_path`` that already exists means the rule is spent; a
        stale hit counter shifts every ``after=N`` rule.  Dropping the
        scratch files restores the plan to exactly its just-written
        state, so a second episode sees the same fault schedule as the
        first.
        """
        for path in self._scratch_paths:
            with contextlib.suppress(OSError):
                path.unlink()

    def cleanup(self) -> None:
        """Remove everything the plan wrote (scratch files and the JSON)."""
        self.reset()
        with contextlib.suppress(OSError):
            self.plan_path.unlink()

    @contextlib.contextmanager
    def activate(self) -> Iterator[Path]:
        """Write the plan, export ``REPRO_FAULT_PLAN``, and guarantee the
        environment and scratch state are restored afterwards -- the
        hygiene contract that keeps back-to-back episodes independent."""
        path = self.write()
        previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = str(path)
        try:
            yield path
        finally:
            if previous is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = previous
            self.cleanup()


# ---------------------------------------------------------------------------
# Shard damage


def _shard_files(store_path: Path) -> List[Path]:
    files = sorted(Path(store_path).glob("shard-*.npy"))
    if not files:
        raise FileNotFoundError(f"no shard files under {store_path}")
    return files


def truncate_shard(store_path: Path, index: int = -1) -> Path:
    """Chop the tail off one shard file (a torn write); returns it."""
    target = _shard_files(store_path)[index]
    data = target.read_bytes()
    target.write_bytes(data[: max(len(data) // 2, 1)])
    return target


def flip_shard_byte(store_path: Path, index: int = -1) -> Path:
    """Flip the last byte of one shard file (bit rot); returns it."""
    target = _shard_files(store_path)[index]
    data = bytearray(target.read_bytes())
    data[-1] ^= 0xFF
    target.write_bytes(bytes(data))
    return target


def delete_shard(store_path: Path, index: int = -1) -> Path:
    """Remove one shard file outright; returns its (now dead) path."""
    target = _shard_files(store_path)[index]
    target.unlink()
    return target
