"""Runtime verification: conservation-law invariants + differential checks.

`repro.verify.invariants` holds the conservation laws every replay
engine must satisfy (gated by ``REPRO_CHECK_INVARIANTS=1`` or
``--check-invariants``); `repro.verify.diff` cross-examines the DES,
stack, and incremental-session engines on randomized configurations.
"""

from repro.verify.invariants import (
    ENABLE_ENV,
    QUARANTINE_ENV,
    HSMInvariantChecker,
    InvariantViolation,
    StackInvariantChecker,
    check_journal_recovery,
    check_merge_order_independence,
    invariant_context,
    invariants_enabled,
    load_quarantine_bundle,
)

__all__ = [
    "ENABLE_ENV",
    "QUARANTINE_ENV",
    "HSMInvariantChecker",
    "InvariantViolation",
    "StackInvariantChecker",
    "check_journal_recovery",
    "check_merge_order_independence",
    "invariant_context",
    "invariants_enabled",
    "load_quarantine_bundle",
]
