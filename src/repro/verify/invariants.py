"""Conservation-law invariant checkers for the replay engines.

The paper's Table 3 / Section 6 numbers now come out of four engines
(per-record DES, columnar batch DES, single-pass stack engine,
incremental serve sessions) plus recovery machinery (journaled
sessions, checkpointed sweeps).  This module states the conservation
laws they must all obey and checks them *at runtime*, per batch and at
finalize, so a silent divergence becomes a loud, replayable failure:

* **HSM replay** (:class:`HSMInvariantChecker`): per-batch deltas must
  conserve the event stream -- ``reads`` grows by exactly the number of
  read events, ``bytes_written`` by exactly the written bytes,
  ``read_hits + read_misses == reads`` -- counters are monotone,
  resident bytes never exceed capacity, and at finalize every write has
  become exactly one tape write or one absorbed rewrite.

* **Stack engine** (:class:`StackInvariantChecker`): per-capacity usage
  equals the byte-sum of resident files, residency masks agree with the
  stint maps and size-eligibility boundaries, dirty bits are a subset
  of residency -- and in the one regime where inclusion provably holds
  (LRU with ``high == low``, i.e. pure demand eviction, and no
  oversized bypasses) each file's residency mask must be a contiguous
  suffix of the capacity vector.  Watermark eviction waves break
  inclusion for every policy (measured, not assumed), so the inclusion
  law is scoped, never assumed globally.

* **Recovery** (:func:`check_journal_recovery`): a recovered session
  must have applied a gap-free journal prefix -- snapshot + replayed
  tail exactly covers the intact frames.

* **Table-3 accumulators** (:func:`check_merge_order_independence`):
  merging partial accumulators must commute (exact for counts/bytes,
  within float tolerance for streamed moments).

Checks are disabled unless ``REPRO_CHECK_INVARIANTS=1`` (or a CLI
``--check-invariants``), so the hot loops pay nothing by default.  A
violation raises :class:`InvariantViolation` after dumping a minimized
repro bundle -- the offending batch window plus the active
:func:`invariant_context` metadata (config hash, seed, engine) and the
live fault plan, if any -- to the quarantine directory, so any failure
is one ``repro verify replay <bundle>`` away from a reproduction.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

#: Enables runtime invariant checking ("1"/"true"/"yes"/"on").
ENABLE_ENV = "REPRO_CHECK_INVARIANTS"

#: Overrides where violation bundles land (default ``.repro-quarantine``).
QUARANTINE_ENV = "REPRO_QUARANTINE_DIR"

DEFAULT_QUARANTINE_DIR = ".repro-quarantine"

#: Batches kept in the rolling repro window dumped on violation.
WINDOW_BATCHES = 4

_TRUE = {"1", "true", "yes", "on"}

#: HSMMetrics integer counters checked for monotonicity (span_seconds,
#: the lone float, is excluded).
_COUNTER_FIELDS = (
    "reads", "read_hits", "read_misses", "compulsory_misses",
    "bytes_staged", "writes", "bytes_written", "tape_writes",
    "bytes_flushed", "rewrites_absorbed", "evictions", "bytes_evicted",
    "forced_flushes", "prefetches_issued", "prefetch_hits",
    "bypassed_reads", "bypassed_writes",
)


def invariants_enabled() -> bool:
    """Whether runtime conservation-law checking is switched on."""
    return os.environ.get(ENABLE_ENV, "").strip().lower() in _TRUE


def enable_invariants(enabled: bool = True) -> None:
    """Flip the check gate process-wide (forked workers inherit it)."""
    if enabled:
        os.environ[ENABLE_ENV] = "1"
    else:
        os.environ.pop(ENABLE_ENV, None)


class InvariantViolation(AssertionError):
    """A conservation law failed; carries the law, site, and repro bundle."""

    def __init__(
        self,
        law: str,
        site: str,
        details: Dict[str, Any],
        bundle: Optional[Path] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.law = law
        self.site = site
        self.details = details
        self.bundle = bundle
        self.context = dict(context or {})
        parts = [f"invariant {law!r} violated at {site}"]
        if details:
            parts.append(json.dumps(details, sort_keys=True, default=str))
        if bundle is not None:
            parts.append(f"repro bundle: {bundle}")
        super().__init__(": ".join(parts))


# ---------------------------------------------------------------------------
# Context metadata (what a quarantine bundle records about the run)


_LOCAL = threading.local()


def _context_stack() -> List[Dict[str, Any]]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


@contextmanager
def invariant_context(**meta: Any):
    """Attach run metadata (seed, config hash, engine) to violations.

    Nested contexts merge, innermost keys winning; the merged dict is
    written into any quarantine bundle produced inside the block.
    """
    stack = _context_stack()
    stack.append(meta)
    try:
        yield
    finally:
        stack.pop()


def current_context() -> Dict[str, Any]:
    """The merged metadata of every active :func:`invariant_context`."""
    merged: Dict[str, Any] = {}
    for frame in _context_stack():
        merged.update(frame)
    return merged


# ---------------------------------------------------------------------------
# Quarantine bundles


def quarantine_root() -> Path:
    return Path(os.environ.get(QUARANTINE_ENV) or DEFAULT_QUARANTINE_DIR)


def _bundled_fault_plan(bundle_dir: Path) -> Optional[str]:
    """Copy the active fault plan into the bundle, re-homed for replay.

    ``once_path``/``counter_path`` scratch files are rewritten to live
    inside the bundle, so replaying the bundle re-fires the plan's
    faults from a clean slate instead of finding them already consumed.
    """
    plan_path = os.environ.get("REPRO_FAULT_PLAN")
    if not plan_path:
        return None
    try:
        with open(plan_path, "r", encoding="utf-8") as handle:
            plan = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    for index, rule in enumerate(plan.get("rules", ())):
        for key in ("once_path", "counter_path", "count_path"):
            if key in rule:
                rule[key] = str(bundle_dir / f"replay-{key}-{index}")
    out = bundle_dir / "fault-plan.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(plan, handle, indent=1, sort_keys=True)
    return out.name


def write_quarantine_bundle(
    law: str,
    site: str,
    details: Dict[str, Any],
    window: Sequence[Any],
    window_start: Optional[int] = None,
) -> Optional[Path]:
    """Dump a minimized repro bundle; returns its path (None on IO error).

    Layout: ``violation.json`` (law, site, details, context, window
    manifest) plus one ``window-<i>.npz`` per batch in the rolling
    window (the journal frame codec, so ``repro verify replay`` can
    decode them without the original workload).
    """
    from repro.serve.journal import encode_batch

    context = current_context()
    digest = hashlib.blake2s(
        json.dumps(
            {"law": law, "site": site, "context": context},
            sort_keys=True, default=str,
        ).encode()
    ).hexdigest()[:12]
    bundle_dir = quarantine_root() / f"violation-{digest}"
    try:
        bundle_dir.mkdir(parents=True, exist_ok=True)
        names: List[str] = []
        for index, batch in enumerate(window):
            name = f"window-{index}.npz"
            (bundle_dir / name).write_bytes(encode_batch(batch))
            names.append(name)
        plan_name = _bundled_fault_plan(bundle_dir)
        payload = {
            "format": "repro-violation",
            "law": law,
            "site": site,
            "details": details,
            "context": context,
            "window": names,
            # Index of window-0.npz in the original batch stream, so a
            # replay can re-align index-matched fault rules.
            "window_start": window_start,
            "fault_plan": plan_name,
        }
        with open(bundle_dir / "violation.json", "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True, default=str)
    except OSError:
        return None
    return bundle_dir


def load_quarantine_bundle(bundle: Path) -> Tuple[Dict[str, Any], List[Any]]:
    """Read a bundle back: (violation metadata, decoded batch window)."""
    from repro.serve.journal import decode_batch

    bundle = Path(bundle)
    with open(bundle / "violation.json", "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    window = [
        decode_batch((bundle / name).read_bytes())
        for name in meta.get("window", ())
    ]
    return meta, window


def raise_violation(
    law: str,
    site: str,
    details: Dict[str, Any],
    window: Sequence[Any] = (),
    window_start: Optional[int] = None,
) -> None:
    """Dump a quarantine bundle, then raise :class:`InvariantViolation`."""
    bundle = write_quarantine_bundle(law, site, details, window, window_start)
    raise InvariantViolation(
        law, site, details, bundle=bundle, context=current_context()
    )


# ---------------------------------------------------------------------------
# HSM replay conservation laws


class HSMInvariantChecker:
    """Per-batch and at-finalize laws for a :class:`ManagedDiskCache` feed.

    Call :meth:`after_batch` once per applied batch and :meth:`finalize`
    after the closing ``flush_all``.  ``prefetch=True`` relaxes the
    staged-bytes bound (speculative staging legitimately stages bytes no
    read event asked for).  Every ``deep_every`` batches the cache's own
    structural audit (``check_invariants``) runs too.
    """

    def __init__(
        self,
        cache: Any,
        *,
        site: str = "hsm.replay",
        prefetch: bool = False,
        deep_every: int = 64,
    ) -> None:
        self.cache = cache
        self.site = site
        self.prefetch = prefetch
        self.deep_every = max(int(deep_every), 1)
        self.window: Deque[Any] = deque(maxlen=WINDOW_BATCHES)
        self._batches = 0
        self._snap = self._snapshot()

    def _snapshot(self) -> Dict[str, int]:
        metrics = self.cache.metrics
        return {name: getattr(metrics, name) for name in _COUNTER_FIELDS}

    def _fail(self, law: str, **details: Any) -> None:
        raise_violation(
            law, self.site, details, tuple(self.window),
            window_start=self._batches - len(self.window),
        )

    def after_batch(self, batch: Any) -> None:
        """Check the conservation deltas one applied batch produced."""
        import numpy as np

        self.window.append(batch)
        self._batches += 1
        now = self._snapshot()
        before = self._snap
        self._snap = now
        delta = {name: now[name] - before[name] for name in _COUNTER_FIELDS}

        for name, change in delta.items():
            if change < 0:
                self._fail("counter-monotone", counter=name, delta=change)

        writes_mask = np.asarray(batch.is_write, dtype=bool)
        sizes = np.asarray(batch.size)
        n_writes = int(writes_mask.sum())
        n_reads = len(batch) - n_writes
        write_bytes = int(sizes[writes_mask].sum())
        read_bytes = int(sizes[~writes_mask].sum())

        if delta["reads"] != n_reads:
            self._fail(
                "read-conservation", expected=n_reads, got=delta["reads"]
            )
        if delta["writes"] != n_writes:
            self._fail(
                "write-conservation", expected=n_writes, got=delta["writes"]
            )
        if delta["bytes_written"] != write_bytes:
            self._fail(
                "written-bytes-conservation",
                expected=write_bytes, got=delta["bytes_written"],
            )
        if delta["read_hits"] + delta["read_misses"] != delta["reads"]:
            self._fail(
                "hit-miss-partition",
                hits=delta["read_hits"], misses=delta["read_misses"],
                reads=delta["reads"],
            )
        if not self.prefetch and delta["bytes_staged"] > read_bytes:
            self._fail(
                "staged-bytes-bound",
                staged=delta["bytes_staged"], read_bytes=read_bytes,
            )
        if delta["bypassed_reads"] > delta["read_misses"]:
            self._fail(
                "bypass-subset",
                bypassed=delta["bypassed_reads"], misses=delta["read_misses"],
            )

        metrics = self.cache.metrics
        if metrics.read_hits + metrics.read_misses != metrics.reads:
            self._fail(
                "hit-miss-partition-cumulative",
                hits=metrics.read_hits, misses=metrics.read_misses,
                reads=metrics.reads,
            )
        if metrics.compulsory_misses > metrics.read_misses:
            self._fail(
                "compulsory-subset",
                compulsory=metrics.compulsory_misses,
                misses=metrics.read_misses,
            )
        if self.cache.usage_bytes > self.cache.config.capacity_bytes:
            self._fail(
                "capacity-bound",
                usage=self.cache.usage_bytes,
                capacity=self.cache.config.capacity_bytes,
            )
        if self._batches % self.deep_every == 0:
            self._deep_check()

    def _deep_check(self) -> None:
        try:
            self.cache.check_invariants()
        except AssertionError as exc:
            self._fail("cache-structural", error=str(exc))

    def finalize(self) -> None:
        """At-finalize laws (call after the closing ``flush_all``)."""
        metrics = self.cache.metrics
        dirty = len(self.cache._dirty)
        if dirty:
            self._fail("finalize-dirty-empty", dirty_files=dirty)
        if metrics.writes != metrics.tape_writes + metrics.rewrites_absorbed:
            self._fail(
                "write-flush-conservation",
                writes=metrics.writes, tape_writes=metrics.tape_writes,
                rewrites_absorbed=metrics.rewrites_absorbed,
            )
        self._deep_check()


# ---------------------------------------------------------------------------
# Stack-engine structural + inclusion laws


def mask_is_suffix(mask: int, n_caps: int) -> bool:
    """Whether a residency mask is a contiguous suffix of the capacities.

    Capacities are sorted increasing with bit ``k`` = capacity index
    ``k``, so inclusion (resident at a capacity implies resident at
    every larger one) is exactly "the set bits form a suffix":
    ``mask + lowest_set_bit == 2**n_caps``.
    """
    if mask == 0:
        return True
    return mask + (mask & -mask) == (1 << n_caps)


class StackInvariantChecker:
    """Structural laws for :class:`_MultiCapacityReplay` state.

    Structural checks (usage/byte-sum agreement, stint/mask agreement,
    dirty subset of resident, size eligibility, capacity bound) hold for
    every policy and watermark pair.  The *inclusion* law -- residency
    masks are contiguous suffixes -- provably holds only for LRU with
    ``high_watermark == low_watermark`` (no eviction waves) and no
    oversized bypasses; measurement over randomized configs shows every
    other combination violates it, so it is armed only in that regime.
    """

    def __init__(self, replay: Any, *, site: str = "stack.replay") -> None:
        self.replay = replay
        self.site = site
        self.window: Deque[Any] = deque(maxlen=WINDOW_BATCHES)
        self.inclusion_armed = (
            replay.policy_name == "lru"
            and all(h == lo for h, lo in zip(replay.high, replay.low))
        )

    def _fail(self, law: str, **details: Any) -> None:
        raise_violation(law, self.site, details, tuple(self.window))

    def _bypass_seen(self) -> bool:
        replay = self.replay
        return any(replay.bypass_read_count[1:]) or any(
            replay.bypass_write_count[1:]
        )

    def after_batch(self, batch: Any) -> None:
        """Cheap per-batch checks: touched files + per-capacity bounds."""
        import numpy as np

        self.window.append(batch)
        replay = self.replay
        for k, used in enumerate(replay.usage):
            if used > replay.caps[k]:
                self._fail(
                    "capacity-bound", capacity_index=k,
                    usage=used, capacity=replay.caps[k],
                )
        check_inclusion = self.inclusion_armed and not self._bypass_seen()
        touched = np.unique(np.asarray(batch.file_id))
        for fid in touched.tolist():
            self._check_file(int(fid), check_inclusion)

    def _check_file(self, fid: int, check_inclusion: bool) -> None:
        replay = self.replay
        if fid >= len(replay._res):
            return
        mask = replay._res[fid]
        if replay._dirty[fid] & ~mask:
            self._fail(
                "dirty-subset-resident", file_id=fid,
                resident_mask=mask, dirty_mask=replay._dirty[fid],
            )
        size = replay._size[fid]
        if size > 0:
            lvl = 0
            while lvl < replay.n_caps and size > replay.caps[lvl]:
                lvl += 1
            if mask & ~replay.eligible[lvl]:
                self._fail(
                    "size-eligibility", file_id=fid, size=size,
                    resident_mask=mask, eligible_mask=replay.eligible[lvl],
                )
        for k in range(replay.n_caps):
            resident = bool(mask & (1 << k))
            stint = replay.stints[k][fid]
            if resident != (stint >= 0):
                self._fail(
                    "stint-mask-agreement", file_id=fid,
                    capacity_index=k, resident=resident, stint=stint,
                )
        if check_inclusion and not mask_is_suffix(mask, replay.n_caps):
            self._fail(
                "residency-inclusion", file_id=fid,
                resident_mask=mask, n_capacities=replay.n_caps,
            )

    def at_finish(self) -> None:
        """Full structural scan over every file (call before finish())."""
        replay = self.replay
        usage = [0] * replay.n_caps
        counts = [0] * replay.n_caps
        check_inclusion = self.inclusion_armed and not self._bypass_seen()
        for fid, mask in enumerate(replay._res):
            if mask:
                self._check_file(fid, check_inclusion)
            size = replay._size[fid]
            m = mask
            while m:
                k = (m & -m).bit_length() - 1
                m &= m - 1
                usage[k] += size
                counts[k] += 1
        for k in range(replay.n_caps):
            if usage[k] != replay.usage[k]:
                self._fail(
                    "usage-byte-sum", capacity_index=k,
                    tracked=replay.usage[k], actual=usage[k],
                )
            if counts[k] != replay.resident_counts[k]:
                self._fail(
                    "resident-count", capacity_index=k,
                    tracked=replay.resident_counts[k], actual=counts[k],
                )


# ---------------------------------------------------------------------------
# Journal recovery law


def check_journal_recovery(
    session_name: str,
    snapshot_applied: int,
    frame_count: int,
    applied_after_replay: int,
    *,
    site: str = "serve.recovery",
) -> None:
    """The gap-free law: snapshot + replayed tail covers every frame.

    A recovered session must have applied exactly the journal's intact
    frames -- the snapshot cannot claim more chunks than the journal
    holds, and replaying the tail must land precisely on the frame
    count (no gaps, no double-application).
    """
    details = {
        "session": session_name,
        "snapshot_applied": snapshot_applied,
        "frame_count": frame_count,
        "applied_after_replay": applied_after_replay,
    }
    if snapshot_applied > frame_count:
        raise_violation("journal-snapshot-ahead", site, details)
    if applied_after_replay != frame_count:
        raise_violation("journal-gap-free", site, details)


# ---------------------------------------------------------------------------
# Accumulator merge law (Table 3)


def _moments_close(a: Any, b: Any, rel: float = 1e-9) -> bool:
    if a.count != b.count:
        return False
    for name in ("total", "mean", "variance"):
        x, y = getattr(a, name), getattr(b, name)
        if not math.isclose(x, y, rel_tol=rel, abs_tol=1e-9):
            return False
    return True


def check_merge_order_independence(
    parts: Iterable[Any],
    *,
    site: str = "analysis.merge",
) -> Any:
    """Merge Table-3 accumulators forward and reversed; verify they agree.

    Counts, byte totals, and error/reference tallies must match exactly;
    streamed moments (parallel Welford merges) must agree within float
    tolerance.  Returns the forward-merged accumulator.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("need at least one accumulator to merge")
    forward = parts[0].copy()
    for part in parts[1:]:
        forward.merge(part)
    backward = parts[-1].copy()
    for part in reversed(parts[:-1]):
        backward.merge(part)
    fwd_total = forward.statistics().grand_total()
    bwd_total = backward.statistics().grand_total()
    if fwd_total.references != bwd_total.references:
        raise_violation(
            "merge-order-references", site,
            {"forward": fwd_total.references,
             "backward": bwd_total.references},
        )
    if fwd_total.bytes_transferred != bwd_total.bytes_transferred:
        raise_violation(
            "merge-order-bytes", site,
            {"forward": fwd_total.bytes_transferred,
             "backward": bwd_total.bytes_transferred},
        )
    for key, cell in forward.cells().items():
        other = backward.cells().get(key)
        if other is None or cell.references != other.references:
            raise_violation(
                "merge-order-cell", site,
                {"cell": [str(part) for part in key],
                 "forward": cell.references,
                 "backward": getattr(other, "references", None)},
            )
        for name in ("size_moments", "latency_moments", "transfer_moments"):
            if not _moments_close(getattr(cell, name), getattr(other, name)):
                raise_violation(
                    "merge-order-moments", site,
                    {"cell": [str(part) for part in key], "moments": name,
                     "forward": [getattr(cell, name).count,
                                 getattr(cell, name).mean],
                     "backward": [getattr(other, name).count,
                                  getattr(other, name).mean]},
                )
    return forward
