"""Cross-engine differential checker + quarantine-bundle replay.

Three independent implementations compute the paper's migration
metrics: the per-cell DES (:func:`repro.engine.replay.replay_policy`),
the one-pass stack engine
(:func:`repro.engine.stackdist.multi_capacity_replay`), and the
incremental serve-session feed (:class:`repro.serve.session.ReplaySession`).
They are *supposed* to agree counter for counter; this module pins that
claim by pushing seeded random small configurations through all three
and diffing every :class:`~repro.hsm.metrics.HSMMetrics` field.

The streams are generated pre-cleaned (no error events, sizes >= 1,
stable per-file sizes, globally nondecreasing times) because that is the
contract all three engines share -- the session additionally clamps and
filters on ingest, which must then be a no-op.

:func:`replay_bundle` is the other half of the invariant checker's
story: it re-runs a quarantine bundle's batch window through the engine
recorded in the bundle's context, with the bundled fault plan re-armed,
and reports whether the violation reproduces.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.verify.invariants import (
    ENABLE_ENV,
    QUARANTINE_ENV,
    InvariantViolation,
    load_quarantine_bundle,
)

#: Policies every engine implements (the stack-capable subset; all are
#: deterministic, so no seed plumbing is needed for equivalence).
DIFF_POLICIES = ("fifo", "largest-first", "lru", "mru", "smallest-first")


def random_case(rng: np.random.Generator) -> Dict[str, Any]:
    """One randomized small configuration (engine-agnostic)."""
    n_files = int(rng.integers(20, 120))
    n_events = int(rng.integers(400, 1600))
    max_size = int(rng.integers(64 * 1024, 4 * 1024 * 1024))
    total = n_files * (max_size // 2)
    return {
        "policy": str(rng.choice(DIFF_POLICIES)),
        "n_files": n_files,
        "n_events": n_events,
        "max_size": max_size,
        "chunk": int(rng.integers(64, 400)),
        "capacity_bytes": max(int(total * rng.uniform(0.02, 0.4)), 1),
        "writeback_delay": float(rng.choice([0.0, 3600.0, 4 * 3600.0])),
        "write_fraction": float(rng.uniform(0.0, 0.5)),
        "stream_seed": int(rng.integers(0, 2**31)),
    }


def case_stream(case: Dict[str, Any]) -> List[Any]:
    """The case's deterministic pre-cleaned chunked event stream."""
    from repro.engine.batch import EventBatch

    rng = np.random.default_rng(case["stream_seed"])
    n = case["n_events"]
    file_sizes = rng.integers(1, case["max_size"], case["n_files"]).astype(np.int64)
    file_id = rng.integers(0, case["n_files"], n).astype(np.int64)
    times = np.sort(rng.uniform(0.0, 30 * 86400.0, n))
    is_write = rng.random(n) < case["write_fraction"]
    zeros = np.zeros(n, dtype=np.int8)
    chunk = case["chunk"]
    return [
        EventBatch(
            file_id=file_id[i:i + chunk],
            size=file_sizes[file_id[i:i + chunk]],
            time=times[i:i + chunk],
            is_write=is_write[i:i + chunk],
            device=zeros[i:i + chunk],
            error=zeros[i:i + chunk],
        )
        for i in range(0, n, chunk)
    ]


def _metrics_fields(metrics: Any) -> Dict[str, Any]:
    return dataclasses.asdict(metrics)


def _diff_metrics(a: Any, b: Any) -> Dict[str, Any]:
    """Field-level differences between two HSMMetrics (empty = equal).

    Counters compare exactly; ``span_seconds`` (the lone float) within
    tolerance.
    """
    mismatches: Dict[str, Any] = {}
    left, right = _metrics_fields(a), _metrics_fields(b)
    for name, x in left.items():
        y = right[name]
        if name == "span_seconds":
            if not math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-6):
                mismatches[name] = [x, y]
        elif x != y:
            mismatches[name] = [x, y]
    return mismatches


def _run_des(case: Dict[str, Any], batches: List[Any]) -> Any:
    from repro.engine.replay import replay_policy

    return replay_policy(
        batches, case["policy"], case["capacity_bytes"],
        writeback_delay=case["writeback_delay"] or None,
    )


def _run_stack(case: Dict[str, Any], batches: List[Any]) -> Any:
    from repro.engine.stackdist import multi_capacity_replay

    return multi_capacity_replay(
        batches, case["policy"], [case["capacity_bytes"]],
        writeback_delay=case["writeback_delay"] or None,
    )[0]


def _run_session(case: Dict[str, Any], batches: List[Any]) -> Any:
    from repro.serve.session import ReplaySession, SessionSpec

    session = ReplaySession(SessionSpec(
        name="diff",
        policy=case["policy"],
        capacity_bytes=case["capacity_bytes"],
        writeback_delay=case["writeback_delay"] or None,
        deduped=False,
    ))
    for batch in batches:
        session.feed(batch)
    session.finalize()
    return session.hsm.metrics


def run_differential(
    cases: int = 20,
    seed: int = 0,
    engines: tuple = ("des", "stack", "session"),
) -> Dict[str, Any]:
    """Diff N random configs across the engines; returns the report.

    ``report["ok"]`` is True when every case agreed on every metrics
    field; disagreements list the differing fields per engine pair with
    the full case config, so any mismatch is re-runnable by seed.
    """
    runners = {"des": _run_des, "stack": _run_stack, "session": _run_session}
    rng = np.random.default_rng(seed)
    results = []
    for index in range(cases):
        case = random_case(rng)
        batches = case_stream(case)
        metrics = {name: runners[name](case, batches) for name in engines}
        baseline = engines[0]
        mismatches = {}
        for other in engines[1:]:
            diff = _diff_metrics(metrics[baseline], metrics[other])
            if diff:
                mismatches[f"{baseline}-vs-{other}"] = diff
        results.append({
            "case": index,
            "config": case,
            "events": sum(len(batch) for batch in batches),
            "ok": not mismatches,
            "mismatches": mismatches,
        })
    failures = [row["case"] for row in results if not row["ok"]]
    return {
        "format": "repro-diff-report-v1",
        "seed": seed,
        "cases": cases,
        "engines": list(engines),
        "results": results,
        "failures": failures,
        "ok": not failures,
    }


# ---------------------------------------------------------------------------
# Quarantine-bundle replay


def _realign_fault_plan(bundle: Path, meta: Dict[str, Any]) -> Optional[Path]:
    """Re-arm the bundled fault plan for a window-relative replay.

    The bundle's plan was written with scratch paths re-homed inside the
    bundle; any leftover scratch files from a previous replay are
    dropped so once-rules fire again.  ``hsm-batch`` rules matched on
    ``batch:<N>`` stream indices are shifted by ``window_start`` so they
    trip at the same position inside the (shorter) replayed window.
    """
    plan_name = meta.get("fault_plan")
    if not plan_name:
        return None
    plan_path = bundle / plan_name
    try:
        plan = json.loads(plan_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    for scratch in bundle.glob("replay-*"):
        try:
            scratch.unlink()
        except OSError:
            pass
    start = int(meta.get("window_start") or 0)
    rules = []
    for rule in plan.get("rules", ()):
        match = rule.get("match", "")
        if rule.get("site") == "hsm-batch" and match.startswith("batch:"):
            try:
                shifted = int(match.split(":", 1)[1]) - start
            except ValueError:
                shifted = -1
            if shifted < 0:
                continue  # fired before the window; unreplayable rule
            rule = dict(rule, match=f"batch:{shifted}")
        rules.append(rule)
    replay_path = bundle / "fault-plan.replay.json"
    replay_path.write_text(json.dumps({"rules": rules}))
    return replay_path


def replay_bundle(bundle: Path) -> Dict[str, Any]:
    """Re-run a quarantine bundle's window; report whether it reproduces.

    The engine, policy, and capacities come from the recorded
    :func:`~repro.verify.invariants.invariant_context`; invariants are
    force-enabled and the bundled fault plan (if any) is re-armed, so a
    fault-injected divergence trips the checker again.
    """
    bundle = Path(bundle)
    meta, window = load_quarantine_bundle(bundle)
    context = meta.get("context", {})
    engine = context.get("engine", "des")
    policy = context.get("policy", "lru")

    env_saved = {
        key: os.environ.get(key)
        for key in (ENABLE_ENV, QUARANTINE_ENV, "REPRO_FAULT_PLAN")
    }
    os.environ[ENABLE_ENV] = "1"
    os.environ[QUARANTINE_ENV] = str(bundle / "replay-quarantine")
    plan = _realign_fault_plan(bundle, meta)
    if plan is not None:
        os.environ["REPRO_FAULT_PLAN"] = str(plan)
    else:
        os.environ.pop("REPRO_FAULT_PLAN", None)
    outcome: Dict[str, Any] = {
        "bundle": str(bundle),
        "law": meta.get("law"),
        "engine": engine,
        "batches": len(window),
        "reproduced": False,
        "replayed_law": None,
    }
    try:
        if not window:
            outcome["error"] = "bundle has no batch window to replay"
            return outcome
        if engine == "stack":
            from repro.engine.stackdist import multi_capacity_replay

            capacities = list(context.get("capacities") or ())
            if not capacities:
                outcome["error"] = "bundle context lacks stack capacities"
                return outcome
            multi_capacity_replay(
                window, policy, capacities,
                writeback_delay=context.get("writeback_delay"),
                high_watermark=context.get("high_watermark", 0.95),
                low_watermark=context.get("low_watermark", 0.85),
            )
        else:
            from repro.engine.replay import replay_policy

            replay_policy(
                window, policy,
                int(context.get("capacity_bytes") or 1),
                writeback_delay=context.get("writeback_delay"),
            )
    except InvariantViolation as exc:
        outcome["reproduced"] = exc.law == meta.get("law")
        outcome["replayed_law"] = exc.law
    finally:
        for key, value in env_saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return outcome
