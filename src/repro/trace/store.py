"""Trace-file <-> columnar-store bridge.

An ASCII trace file (the Table 2 record format) is the interchange
artifact; the columnar :class:`~repro.engine.store.TraceStore` is the
analysis artifact.  This module converts record streams into batch
streams -- interning MSS paths into dense file ids the way the columnar
analyses expect -- and imports whole trace files into stores, so a
captured (or externally produced) trace can be analyzed many times
without re-parsing text.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

import numpy as np

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch, device_index
from repro.engine.store import TraceStore
from repro.trace.errors import ErrorKind
from repro.trace.reader import TraceReader
from repro.trace.record import TraceRecord

__all__ = ["TraceStore", "batches_from_records", "import_trace_file"]


def batches_from_records(
    records: Iterable[TraceRecord], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[EventBatch]:
    """A record stream as columnar batches, interning paths to file ids.

    File ids are assigned densely in order of first appearance of each
    ``mss_path`` -- the grouping the columnar analyses (reference counts,
    per-file gaps) need.  NO_SUCH_FILE errors get negative ids, matching
    the generator's convention for references to never-existed files.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    ids: Dict[str, int] = {}
    n_missing = 0
    rows: List[tuple] = []

    def flush(rows: List[tuple]) -> EventBatch:
        columns = list(zip(*rows))
        return EventBatch.from_columns(
            file_id=np.asarray(columns[0], dtype=np.int64),
            size=columns[1],
            time=columns[2],
            is_write=columns[3],
            device=columns[4],
            error=columns[5],
            user=columns[6],
            latency=columns[7],
            transfer=columns[8],
        )

    for record in records:
        if record.error is ErrorKind.NO_SUCH_FILE:
            n_missing += 1
            file_id = -n_missing
        else:
            file_id = ids.setdefault(record.mss_path, len(ids))
        rows.append(
            (
                file_id,
                record.file_size,
                record.start_time,
                record.is_write,
                device_index(record.storage_device),
                int(record.error),
                record.user_id,
                record.startup_latency,
                record.transfer_time,
            )
        )
        if len(rows) >= chunk_size:
            yield flush(rows)
            rows = []
    if rows:
        yield flush(rows)


def import_trace_file(
    trace_path: Union[str, Path],
    store_path: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    overwrite: bool = False,
) -> TraceStore:
    """Convert an ASCII trace file into a columnar store directory.

    The store carries no config hash (the stream did not come from the
    generator), so it never matches a content-addressed cache slot; open
    it explicitly by path (``repro analyze <dir>``, ``repro trace info``).
    """
    trace_path = Path(trace_path)
    with TraceReader(trace_path) as reader:
        return TraceStore.write(
            store_path,
            batches_from_records(iter(reader), chunk_size=chunk_size),
            variant="imported",
            meta={"source": str(trace_path)},
            overwrite=overwrite,
        )
