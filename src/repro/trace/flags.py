"""The trace record flag word.

Table 2 describes one ``flags`` field carrying "Read/write, error
information, compression information".  Section 4.2 adds one more bit: "there
is a bit in the flag field which indicates that the request was made by the
same user who made the previous request."  We pack all of that into a single
integer so the on-disk format stays one small decimal field.

Layout (least significant bit first)::

    bit 0      WRITE          0 = read, 1 = write
    bits 1-3   ERROR KIND     ErrorKind value, 0 = success
    bit 4      COMPRESSED     data was stored compressed on the MSS
    bit 5      SAME_USER      same requesting user as the previous record
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.errors import ErrorKind

_WRITE_BIT = 1 << 0
_ERROR_SHIFT = 1
_ERROR_MASK = 0b111 << _ERROR_SHIFT
_COMPRESSED_BIT = 1 << 4
_SAME_USER_BIT = 1 << 5

MAX_FLAG_VALUE = _WRITE_BIT | _ERROR_MASK | _COMPRESSED_BIT | _SAME_USER_BIT


@dataclass(frozen=True)
class Flags:
    """Decoded view of a record's flag word."""

    is_write: bool = False
    error: ErrorKind = ErrorKind.NONE
    compressed: bool = False
    same_user: bool = False

    @property
    def is_read(self) -> bool:
        """True for read requests (Cray pulling data from the MSS)."""
        return not self.is_write

    @property
    def is_error(self) -> bool:
        """True when the reference failed and is excluded from analysis."""
        return self.error.is_error

    def encode(self) -> int:
        """Pack into the integer stored in the trace file."""
        word = 0
        if self.is_write:
            word |= _WRITE_BIT
        word |= (int(self.error) << _ERROR_SHIFT) & _ERROR_MASK
        if self.compressed:
            word |= _COMPRESSED_BIT
        if self.same_user:
            word |= _SAME_USER_BIT
        return word

    @staticmethod
    def decode(word: int) -> "Flags":
        """Unpack a flag word; rejects values with unassigned bits set."""
        if word < 0 or word > MAX_FLAG_VALUE:
            raise ValueError(f"flag word {word} out of range")
        error_value = (word & _ERROR_MASK) >> _ERROR_SHIFT
        try:
            error = ErrorKind(error_value)
        except ValueError as exc:
            raise ValueError(f"unknown error kind {error_value}") from exc
        return Flags(
            is_write=bool(word & _WRITE_BIT),
            error=error,
            compressed=bool(word & _COMPRESSED_BIT),
            same_user=bool(word & _SAME_USER_BIT),
        )

    def replace(self, **changes: object) -> "Flags":
        """Copy with the given fields replaced (records are immutable)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)  # type: ignore[arg-type]
