"""The trace record: one MSS reference, with the fields of Table 2.

A record captures a single ``iread``/``lwrite`` request from the Cray to the
mass storage system: which device the data moved between, when the request
started, how long it waited for the first byte (startup latency), how long
the transfer itself took, the file's size and names, and the requesting user.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.trace.errors import ErrorKind, TraceValidationError
from repro.trace.flags import Flags


class Device(enum.Enum):
    """Endpoints a transfer can involve.

    ``CRAY`` is the compute side; the other three are the MSS storage levels
    the paper breaks statistics down by: IBM 3380 disk attached to the 3090,
    the StorageTek 4400 cartridge silo, and manually mounted shelf tape.
    """

    CRAY = "cray"
    MSS_DISK = "disk"
    TAPE_SILO = "silo"
    TAPE_SHELF = "shelf"

    @property
    def is_storage(self) -> bool:
        """True for MSS storage devices (everything but the Cray)."""
        return self is not Device.CRAY

    @staticmethod
    def storage_devices() -> tuple:
        """The three storage levels in the paper's reporting order."""
        return (Device.MSS_DISK, Device.TAPE_SILO, Device.TAPE_SHELF)


# Short on-disk tokens for the codec.
_DEVICE_TOKENS = {
    Device.CRAY: "C",
    Device.MSS_DISK: "D",
    Device.TAPE_SILO: "S",
    Device.TAPE_SHELF: "M",  # "manual" in the paper's tables
}
_TOKEN_DEVICES = {token: dev for dev, token in _DEVICE_TOKENS.items()}


def device_token(device: Device) -> str:
    """Single-character token used in the trace file."""
    return _DEVICE_TOKENS[device]


def parse_device_token(token: str) -> Device:
    """Inverse of :func:`device_token`."""
    try:
        return _TOKEN_DEVICES[token]
    except KeyError as exc:
        raise TraceValidationError(f"unknown device token {token!r}") from exc


@dataclass(frozen=True)
class TraceRecord:
    """One reference to the MSS (Table 2).

    Times are in seconds of simulation time; ``transfer_time`` keeps the
    trace format's millisecond precision but is exposed in seconds.
    """

    source: Device
    destination: Device
    flags: Flags
    start_time: float
    startup_latency: float
    transfer_time: float
    file_size: int
    mss_path: str
    local_path: str
    user_id: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise TraceValidationError("source and destination must differ")
        if not (self.source.is_storage ^ self.destination.is_storage):
            raise TraceValidationError(
                "exactly one endpoint must be an MSS storage device"
            )
        if self.start_time < 0:
            raise TraceValidationError("start_time must be non-negative")
        if self.startup_latency < 0:
            raise TraceValidationError("startup_latency must be non-negative")
        if self.transfer_time < 0:
            raise TraceValidationError("transfer_time must be non-negative")
        if self.file_size < 0:
            raise TraceValidationError("file_size must be non-negative")
        if self.user_id < 0:
            raise TraceValidationError("user_id must be non-negative")
        if not self.mss_path:
            raise TraceValidationError("mss_path must be non-empty")
        # Direction must agree with the flag word.
        writes_to_storage = self.destination.is_storage
        if writes_to_storage != self.flags.is_write:
            raise TraceValidationError(
                "flag read/write bit disagrees with transfer direction"
            )

    @property
    def is_write(self) -> bool:
        """True when the Cray pushed data to the MSS."""
        return self.flags.is_write

    @property
    def is_read(self) -> bool:
        """True when the Cray pulled data from the MSS."""
        return self.flags.is_read

    @property
    def is_error(self) -> bool:
        """True when the reference failed (excluded from most analyses)."""
        return self.flags.is_error

    @property
    def error(self) -> ErrorKind:
        """The error condition, ``ErrorKind.NONE`` on success."""
        return self.flags.error

    @property
    def storage_device(self) -> Device:
        """The MSS storage level involved (disk, silo, or shelf)."""
        return self.destination if self.destination.is_storage else self.source

    @property
    def completion_time(self) -> float:
        """Instant the last byte moved."""
        return self.start_time + self.startup_latency + self.transfer_time

    @property
    def response_time(self) -> float:
        """Total time the requester waited (latency + transfer)."""
        return self.startup_latency + self.transfer_time

    def with_times(
        self,
        startup_latency: Optional[float] = None,
        transfer_time: Optional[float] = None,
    ) -> "TraceRecord":
        """Copy with latency/transfer replaced (used by the DES replay)."""
        changes = {}
        if startup_latency is not None:
            changes["startup_latency"] = startup_latency
        if transfer_time is not None:
            changes["transfer_time"] = transfer_time
        return replace(self, **changes) if changes else self


def make_read(
    device: Device,
    start_time: float,
    file_size: int,
    mss_path: str,
    user_id: int,
    startup_latency: float = 0.0,
    transfer_time: float = 0.0,
    local_path: str = "",
    error: ErrorKind = ErrorKind.NONE,
    compressed: bool = False,
    same_user: bool = False,
) -> TraceRecord:
    """Convenience constructor for a read (storage -> Cray)."""
    if not device.is_storage:
        raise TraceValidationError("reads must come from a storage device")
    return TraceRecord(
        source=device,
        destination=Device.CRAY,
        flags=Flags(is_write=False, error=error, compressed=compressed, same_user=same_user),
        start_time=start_time,
        startup_latency=startup_latency,
        transfer_time=transfer_time,
        file_size=file_size,
        mss_path=mss_path,
        local_path=local_path or _default_local_path(mss_path),
        user_id=user_id,
    )


def make_write(
    device: Device,
    start_time: float,
    file_size: int,
    mss_path: str,
    user_id: int,
    startup_latency: float = 0.0,
    transfer_time: float = 0.0,
    local_path: str = "",
    error: ErrorKind = ErrorKind.NONE,
    compressed: bool = False,
    same_user: bool = False,
) -> TraceRecord:
    """Convenience constructor for a write (Cray -> storage)."""
    if not device.is_storage:
        raise TraceValidationError("writes must go to a storage device")
    return TraceRecord(
        source=Device.CRAY,
        destination=device,
        flags=Flags(is_write=True, error=error, compressed=compressed, same_user=same_user),
        start_time=start_time,
        startup_latency=startup_latency,
        transfer_time=transfer_time,
        file_size=file_size,
        mss_path=mss_path,
        local_path=local_path or _default_local_path(mss_path),
        user_id=user_id,
    )


def _default_local_path(mss_path: str) -> str:
    """Scratch-space path the Cray side would have used."""
    leaf = mss_path.rsplit("/", 1)[-1] or "file"
    return f"/tmp/wrk/{leaf}"
