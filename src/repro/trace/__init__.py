"""Trace substrate: the record format of Table 2 plus codec, I/O, filters.

Public surface::

    from repro.trace import (
        TraceRecord, Device, Flags, ErrorKind,
        TraceReader, TraceWriter, read_trace, write_trace,
        strip_errors, dedupe_for_file_analysis, TraceStatistics,
    )
"""

from repro.trace.codec import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    HEADER_LINE,
    RecordDecoder,
    RecordEncoder,
    escape_path,
    iter_decode,
    quantize_record,
    unescape_path,
)
from repro.trace.errors import (
    ErrorKind,
    TraceError,
    TraceFormatError,
    TraceValidationError,
)
from repro.trace.filters import (
    EIGHT_HOURS,
    by_device,
    by_direction,
    dedupe_for_file_analysis,
    fraction_rereferenced_within,
    only_errors,
    strip_errors,
    time_slice,
)
from repro.trace.flags import Flags
from repro.trace.reader import TraceReader, load_trace_string, read_trace
from repro.trace.record import (
    Device,
    TraceRecord,
    device_token,
    make_read,
    make_write,
    parse_device_token,
)
from repro.trace.stats import CellStats, TraceStatistics
from repro.trace.writer import TraceWriter, dump_trace_string, write_trace

__all__ = [
    "CellStats",
    "Device",
    "EIGHT_HOURS",
    "ErrorKind",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "Flags",
    "HEADER_LINE",
    "RecordDecoder",
    "RecordEncoder",
    "TraceError",
    "TraceFormatError",
    "TraceReader",
    "TraceRecord",
    "TraceStatistics",
    "TraceValidationError",
    "TraceWriter",
    "by_device",
    "by_direction",
    "dedupe_for_file_analysis",
    "device_token",
    "dump_trace_string",
    "escape_path",
    "fraction_rereferenced_within",
    "iter_decode",
    "load_trace_string",
    "make_read",
    "make_write",
    "only_errors",
    "parse_device_token",
    "quantize_record",
    "read_trace",
    "strip_errors",
    "time_slice",
    "unescape_path",
    "write_trace",
]
