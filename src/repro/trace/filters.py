"""Record-stream filters used by the analyses.

The paper applies two systematic filters:

* error stripping (Section 5.1: 4.76 % of raw references carried errors and
  "it was impossible to include the reference in our analysis"), and
* the eight-hour dedupe of Section 5.3 ("this part of the analysis included
  at most one read and one write from any eight hour period" per file),
  which removes re-requests issued by batch scripts within one working day.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.trace.record import Device, TraceRecord
from repro.util.units import HOUR

EIGHT_HOURS = 8 * HOUR


def strip_errors(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Drop failed references (the paper's first filtering step)."""
    return (r for r in records if not r.is_error)


def only_errors(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Keep only failed references (for error-rate accounting)."""
    return (r for r in records if r.is_error)


def by_direction(
    records: Iterable[TraceRecord], is_write: bool
) -> Iterator[TraceRecord]:
    """Keep only reads (``is_write=False``) or only writes."""
    return (r for r in records if r.is_write == is_write)


def by_device(
    records: Iterable[TraceRecord], device: Device
) -> Iterator[TraceRecord]:
    """Keep references touching one MSS storage level."""
    return (r for r in records if r.storage_device == device)


def time_slice(
    records: Iterable[TraceRecord], start: float, end: float
) -> Iterator[TraceRecord]:
    """Keep references with start time in ``[start, end)``."""
    return (r for r in records if start <= r.start_time < end)


def dedupe_for_file_analysis(
    records: Iterable[TraceRecord],
    window: float = EIGHT_HOURS,
    mode: str = "block",
) -> Iterator[TraceRecord]:
    """At most one read and one write per file per eight-hour period.

    Mirrors Section 5.3: repeated explicit references to the same file in a
    short span (batch scripts re-reading inputs) would not occur under
    automatic migration, so per-file reference statistics collapse them.

    ``mode="block"`` interprets "any eight hour period" as calendar-aligned
    blocks (00-08, 08-16, 16-24), which is the reading consistent with the
    short interreference intervals of Figure 9; ``mode="sliding"`` keeps a
    reference only when at least ``window`` seconds have passed since the
    last kept reference of the same file and direction.

    Records must arrive in nondecreasing start-time order.
    """
    if mode not in ("block", "sliding"):
        raise ValueError(f"unknown dedupe mode {mode!r}")
    last_kept: Dict[Tuple[str, bool], float] = {}
    prev_start = float("-inf")
    for record in records:
        if record.start_time < prev_start:
            raise ValueError("dedupe filter requires time-ordered records")
        prev_start = record.start_time
        key = (record.mss_path, record.is_write)
        last = last_kept.get(key)
        if mode == "block":
            block = record.start_time // window
            if last is None or block > last:
                last_kept[key] = block
                yield record
        else:
            if last is None or record.start_time - last >= window:
                last_kept[key] = record.start_time
                yield record


def fraction_rereferenced_within(
    records: Iterable[TraceRecord], window: float = EIGHT_HOURS
) -> float:
    """Fraction of requests arriving within ``window`` of a prior request
    for the same file (Section 6: "about one third of all requests came
    within eight hours of another request for the same file").
    """
    last_seen: Dict[str, float] = {}
    total = 0
    within = 0
    for record in records:
        total += 1
        last = last_seen.get(record.mss_path)
        if last is not None and record.start_time - last < window:
            within += 1
        last_seen[record.mss_path] = record.start_time
    if total == 0:
        raise ValueError("empty record stream")
    return within / total
