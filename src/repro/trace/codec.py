"""ASCII trace codec with delta-encoded timestamps.

Section 4.2: traces are ASCII "so they would be easy to read on different
machines with different byte orderings", start times are recorded as the
difference from the previous record's start time (a Mache-style compaction
[13]), startup latency is in whole seconds, transfer time in milliseconds,
and a flag bit marks "same user as the previous request" so the user field
can be elided.

One record per line::

    SRC DST FLAGS DSTART LATENCY XFER_MS SIZE MSS_PATH LOCAL_PATH UID

* ``SRC``/``DST`` -- single-character device tokens (C/D/S/M).
* ``FLAGS`` -- decimal flag word (:mod:`repro.trace.flags`).
* ``DSTART`` -- whole seconds since the previous record's start time.
* ``LATENCY`` -- whole seconds to the first byte.
* ``XFER_MS`` -- whole milliseconds of transfer time.
* ``SIZE`` -- file size in bytes.
* ``LOCAL_PATH`` -- ``-`` when it is the conventional scratch path.
* ``UID`` -- ``=`` when the SAME_USER flag is set (value carried over).

The file starts with a header line ``#REPRO-TRACE 1`` followed by optional
``#`` comment lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.trace.errors import TraceFormatError
from repro.trace.flags import Flags
from repro.trace.record import (
    Device,
    TraceRecord,
    _default_local_path,
    device_token,
    parse_device_token,
)

FORMAT_MAGIC = "#REPRO-TRACE"
FORMAT_VERSION = 1
HEADER_LINE = f"{FORMAT_MAGIC} {FORMAT_VERSION}"

_ESCAPES = {" ": "%20", "%": "%25", "\t": "%09", "\n": "%0A"}


def escape_path(path: str) -> str:
    """Escape whitespace and ``%`` so paths survive space-delimited lines."""
    if not any(ch in path for ch in _ESCAPES):
        return path
    out = path.replace("%", "%25")
    out = out.replace(" ", "%20").replace("\t", "%09").replace("\n", "%0A")
    return out


def unescape_path(token: str) -> str:
    """Inverse of :func:`escape_path`."""
    if "%" not in token:
        return token
    out = token.replace("%20", " ").replace("%09", "\t").replace("%0A", "\n")
    return out.replace("%25", "%")


def quantize_record(record: TraceRecord) -> TraceRecord:
    """Clamp a record to the precision the trace format can carry.

    Start time and startup latency round to whole seconds, transfer time to
    whole milliseconds -- "these were the precisions available from the
    original system logs" (Section 4.2).
    """
    return TraceRecord(
        source=record.source,
        destination=record.destination,
        flags=record.flags,
        start_time=float(round(record.start_time)),
        startup_latency=float(round(record.startup_latency)),
        transfer_time=round(record.transfer_time * 1000.0) / 1000.0,
        file_size=record.file_size,
        mss_path=record.mss_path,
        local_path=record.local_path,
        user_id=record.user_id,
    )


@dataclass
class EncoderState:
    """Inter-record context the delta encoding depends on."""

    prev_start: int = 0
    prev_user: Optional[int] = None


class RecordEncoder:
    """Stateful record -> line encoder (records must be time-ordered)."""

    def __init__(self) -> None:
        self._state = EncoderState()

    def encode(self, record: TraceRecord) -> str:
        """Encode one record as a trace line, advancing the delta state."""
        start = int(round(record.start_time))
        delta = start - self._state.prev_start
        if delta < 0:
            raise TraceFormatError(
                "records must be encoded in nondecreasing start-time order"
            )
        same_user = (
            self._state.prev_user is not None
            and record.user_id == self._state.prev_user
        )
        flags = record.flags
        if flags.same_user != same_user:
            flags = flags.replace(same_user=same_user)
        uid_field = "=" if same_user else str(record.user_id)
        local = record.local_path
        local_field = "-" if local == _default_local_path(record.mss_path) else escape_path(local)
        line = " ".join(
            (
                device_token(record.source),
                device_token(record.destination),
                str(flags.encode()),
                str(delta),
                str(int(round(record.startup_latency))),
                str(int(round(record.transfer_time * 1000.0))),
                str(record.file_size),
                escape_path(record.mss_path),
                local_field,
                uid_field,
            )
        )
        self._state.prev_start = start
        self._state.prev_user = record.user_id
        return line


@dataclass
class DecoderState:
    """Inter-record context the delta decoding depends on."""

    prev_start: int = 0
    prev_user: Optional[int] = None
    line_number: int = field(default=0)


class RecordDecoder:
    """Stateful line -> record decoder, the inverse of :class:`RecordEncoder`."""

    def __init__(self) -> None:
        self._state = DecoderState()

    def decode(self, line: str) -> TraceRecord:
        """Decode one trace line, advancing the delta state."""
        self._state.line_number += 1
        n = self._state.line_number
        parts = line.split(" ")
        if len(parts) != 10:
            raise TraceFormatError(
                f"expected 10 fields, got {len(parts)}", line_number=n
            )
        (src_tok, dst_tok, flags_tok, dstart_tok, latency_tok,
         xfer_tok, size_tok, mss_tok, local_tok, uid_tok) = parts
        try:
            source = parse_device_token(src_tok)
            destination = parse_device_token(dst_tok)
            flags = Flags.decode(int(flags_tok))
            delta = int(dstart_tok)
            latency = int(latency_tok)
            xfer_ms = int(xfer_tok)
            size = int(size_tok)
        except (ValueError, TraceFormatError) as exc:
            raise TraceFormatError(str(exc), line_number=n) from exc
        if delta < 0:
            raise TraceFormatError("negative start-time delta", line_number=n)
        mss_path = unescape_path(mss_tok)
        if uid_tok == "=":
            if not flags.same_user or self._state.prev_user is None:
                raise TraceFormatError(
                    "'=' user field without a same-user predecessor",
                    line_number=n,
                )
            user_id = self._state.prev_user
        else:
            try:
                user_id = int(uid_tok)
            except ValueError as exc:
                raise TraceFormatError(f"bad user id {uid_tok!r}", line_number=n) from exc
        local_path = (
            _default_local_path(mss_path) if local_tok == "-" else unescape_path(local_tok)
        )
        start = self._state.prev_start + delta
        record = TraceRecord(
            source=source,
            destination=destination,
            flags=flags,
            start_time=float(start),
            startup_latency=float(latency),
            transfer_time=xfer_ms / 1000.0,
            file_size=size,
            mss_path=mss_path,
            local_path=local_path,
            user_id=user_id,
        )
        self._state.prev_start = start
        self._state.prev_user = user_id
        return record


def iter_decode(lines: Iterator[str]) -> Iterator[TraceRecord]:
    """Decode an iterable of lines (header + comments + records)."""
    decoder = RecordDecoder()
    saw_header = False
    for raw in lines:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            if not saw_header:
                if not line.startswith(FORMAT_MAGIC):
                    raise TraceFormatError(
                        f"missing {FORMAT_MAGIC} header, got {line[:40]!r}"
                    )
                saw_header = True
            continue
        if not saw_header:
            raise TraceFormatError("record before trace header")
        yield decoder.decode(line)
