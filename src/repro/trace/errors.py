"""Error taxonomy for trace records and the trace codec.

Section 5.1 reports that 175,633 of 3,688,817 raw references (4.76 %) carried
errors, dominated by requests for files that never existed.  Records keep the
error kind so analyses can reproduce the paper's filtering step ("it was
impossible to include the reference in our analysis").
"""

from __future__ import annotations

import enum


class TraceError(Exception):
    """Base class for problems raised by the trace layer."""


class TraceFormatError(TraceError):
    """A trace file line could not be parsed."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        self.line_number = line_number
        if line_number:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class TraceValidationError(TraceError):
    """A record violates an invariant (negative size, bad device, ...)."""


class ErrorKind(enum.IntEnum):
    """Error condition attached to a reference, encoded in the flag field.

    ``NONE`` marks a successful transfer.  ``NO_SUCH_FILE`` is the paper's
    "most common error ... the non-existence of a requested file"; the others
    cover the remaining cases it names (media errors, premature termination).
    """

    NONE = 0
    NO_SUCH_FILE = 1
    MEDIA_ERROR = 2
    PREMATURE_TERMINATION = 3
    OTHER = 4

    @property
    def is_error(self) -> bool:
        """True for anything other than a clean transfer."""
        return self is not ErrorKind.NONE
