"""Streaming trace reader."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, List, Union

from repro.trace.codec import iter_decode
from repro.trace.record import TraceRecord

PathLike = Union[str, Path]


class TraceReader:
    """Iterates the records of an ASCII trace file lazily.

    Usable either as a context manager or a plain iterable::

        with TraceReader(path) as reader:
            for record in reader:
                ...
    """

    def __init__(self, source: Union[PathLike, io.TextIOBase]) -> None:
        if isinstance(source, (str, Path)):
            self._stream: io.TextIOBase = open(source, "r", encoding="ascii")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter_decode(iter(self._stream))

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_trace(path: PathLike) -> List[TraceRecord]:
    """Read an entire trace file into memory."""
    with TraceReader(path) as reader:
        return list(reader)


def load_trace_string(text: str) -> List[TraceRecord]:
    """Decode an in-memory trace produced by ``dump_trace_string``."""
    return list(iter_decode(iter(io.StringIO(text))))
