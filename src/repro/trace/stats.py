"""Streaming accumulator for Table 3-style trace statistics.

Table 3 breaks the two-year trace down by storage device (disk, tape silo,
manual tape) and by direction (read, write), reporting reference counts,
gigabytes moved, average file size, and average seconds to the first byte.
``TraceStatistics`` computes all of that in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.trace.errors import ErrorKind
from repro.trace.record import Device, TraceRecord
from repro.util.stats import StreamingMoments
from repro.util.units import bytes_to_gb, bytes_to_mb


@dataclass
class CellStats:
    """One cell of Table 3: a (device, direction) combination."""

    references: int = 0
    bytes_transferred: int = 0
    size_moments: StreamingMoments = field(default_factory=StreamingMoments)
    latency_moments: StreamingMoments = field(default_factory=StreamingMoments)
    transfer_moments: StreamingMoments = field(default_factory=StreamingMoments)

    def add(self, record: TraceRecord) -> None:
        """Fold one successful reference into this cell."""
        self.references += 1
        self.bytes_transferred += record.file_size
        self.size_moments.add(record.file_size)
        self.latency_moments.add(record.startup_latency)
        self.transfer_moments.add(record.transfer_time)

    @property
    def gb_transferred(self) -> float:
        """Total volume in decimal gigabytes (Table 3 units)."""
        return bytes_to_gb(self.bytes_transferred)

    @property
    def avg_file_size_mb(self) -> float:
        """Mean file size in megabytes (Table 3 units)."""
        return bytes_to_mb(self.size_moments.mean)

    @property
    def avg_latency_seconds(self) -> float:
        """Mean seconds to the first byte (Table 3 units)."""
        return self.latency_moments.mean

    def merge(self, other: "CellStats") -> "CellStats":
        """Combine two cells (for parallel accumulation)."""
        self.references += other.references
        self.bytes_transferred += other.bytes_transferred
        self.size_moments.merge(other.size_moments)
        self.latency_moments.merge(other.latency_moments)
        self.transfer_moments.merge(other.transfer_moments)
        return self


Key = Tuple[Device, bool]  # (storage device, is_write)


class TraceStatistics:
    """One-pass accumulator of the Table 3 breakdown plus error counts."""

    def __init__(self) -> None:
        self._cells: Dict[Key, CellStats] = {}
        self.raw_references = 0
        self.error_counts: Dict[ErrorKind, int] = {}
        self.first_start: Optional[float] = None
        self.last_start: Optional[float] = None

    def add(self, record: TraceRecord) -> None:
        """Fold one raw reference (errors are counted, not aggregated)."""
        self.raw_references += 1
        if self.first_start is None:
            self.first_start = record.start_time
        self.last_start = record.start_time
        if record.is_error:
            kind = record.error
            self.error_counts[kind] = self.error_counts.get(kind, 0) + 1
            return
        key = (record.storage_device, record.is_write)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = CellStats()
        cell.add(record)

    def add_all(self, records: Iterable[TraceRecord]) -> "TraceStatistics":
        """Fold a whole record stream; returns self for chaining."""
        for record in records:
            self.add(record)
        return self

    @classmethod
    def from_parts(
        cls,
        cells: Dict[Key, CellStats],
        raw_references: int,
        error_counts: Dict[ErrorKind, int],
        first_start: Optional[float],
        last_start: Optional[float],
    ) -> "TraceStatistics":
        """Assemble statistics from externally accumulated parts.

        Used by the columnar analysis path, which reduces whole batches
        into :class:`CellStats` with numpy instead of folding records.
        """
        stats = cls()
        stats._cells = dict(cells)
        stats.raw_references = raw_references
        stats.error_counts = dict(error_counts)
        stats.first_start = first_start
        stats.last_start = last_start
        return stats

    # ------------------------------------------------------------------
    # Cell access

    def cell(self, device: Device, is_write: bool) -> CellStats:
        """Stats for one (device, direction) cell; empty cell if unseen."""
        return self._cells.get((device, is_write), CellStats())

    def device_total(self, device: Device) -> CellStats:
        """Reads + writes for one storage level."""
        merged = CellStats()
        merged.merge(self.cell(device, False))
        merged.merge(self.cell(device, True))
        return merged

    def direction_total(self, is_write: bool) -> CellStats:
        """One direction across all storage levels."""
        merged = CellStats()
        for device in Device.storage_devices():
            merged.merge(self.cell(device, is_write))
        return merged

    def grand_total(self) -> CellStats:
        """Everything: the Table 3 "Total" column's top rows."""
        merged = CellStats()
        for cell in self._cells.values():
            merged.merge(cell)
        return merged

    # ------------------------------------------------------------------
    # Error accounting (Section 5.1)

    @property
    def total_errors(self) -> int:
        """Raw references that failed."""
        return sum(self.error_counts.values())

    @property
    def error_fraction(self) -> float:
        """Failed fraction of raw references (paper: 4.76 %)."""
        if self.raw_references == 0:
            return 0.0
        return self.total_errors / self.raw_references

    @property
    def analyzed_references(self) -> int:
        """Successful references included in the statistics."""
        return self.raw_references - self.total_errors

    # ------------------------------------------------------------------
    # System-level derived values

    def mean_interarrival_seconds(self) -> float:
        """Average spacing between references over the traced span.

        The paper computes this as span / references (Section 5.2.1:
        ~3.5 M references over 731 days gives 18 seconds).
        """
        if (
            self.first_start is None
            or self.last_start is None
            or self.analyzed_references <= 1
        ):
            raise ValueError("need at least two references for an interarrival")
        span = self.last_start - self.first_start
        return span / self.analyzed_references

    def read_write_ratio(self) -> float:
        """References ratio of reads to writes (paper: about 2:1)."""
        writes = self.direction_total(True).references
        reads = self.direction_total(False).references
        if writes == 0:
            raise ValueError("no writes in trace")
        return reads / writes
