"""Streaming trace writer."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.trace.codec import HEADER_LINE, RecordEncoder
from repro.trace.record import TraceRecord

PathLike = Union[str, Path]


class TraceWriter:
    """Writes records to an ASCII trace file, one per line, delta-encoded.

    Usable as a context manager::

        with TraceWriter(path, comments={"site": "ncar-synthetic"}) as w:
            for record in records:
                w.write(record)
    """

    def __init__(
        self,
        target: Union[PathLike, io.TextIOBase],
        comments: Optional[dict] = None,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: io.TextIOBase = open(target, "w", encoding="ascii")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._encoder = RecordEncoder()
        self._count = 0
        self._stream.write(HEADER_LINE + "\n")
        for key, value in (comments or {}).items():
            self._stream.write(f"# {key}={value}\n")

    @property
    def records_written(self) -> int:
        """Number of records emitted so far."""
        return self._count

    def write(self, record: TraceRecord) -> None:
        """Encode and append one record."""
        self._stream.write(self._encoder.encode(record) + "\n")
        self._count += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        """Encode and append many records; returns how many were written."""
        before = self._count
        for record in records:
            self.write(record)
        return self._count - before

    def close(self) -> None:
        """Flush and close the underlying stream if this writer opened it."""
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace(
    path: PathLike,
    records: Iterable[TraceRecord],
    comments: Optional[dict] = None,
) -> int:
    """Write all records to ``path``; returns the record count."""
    with TraceWriter(path, comments=comments) as writer:
        return writer.write_all(records)


def dump_trace_string(records: Iterable[TraceRecord]) -> str:
    """Encode records into an in-memory trace (testing convenience)."""
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    writer.write_all(records)
    writer.close()
    return buffer.getvalue()
