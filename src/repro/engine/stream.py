"""Vectorized transforms over batch streams.

These are the columnar counterparts of :mod:`repro.trace.filters`: the
error strip of Section 5.1 and the eight-hour dedupe of Section 5.3,
applied per batch with numpy instead of per record with Python objects.
``hsm_event_batches`` composes them into the reference stream the HSM
replays -- the engine-side equivalent of the old
``events_from_trace`` record walk.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch
from repro.util.units import HOUR

EIGHT_HOURS = 8 * HOUR


def strip_errors(batches: Iterable[EventBatch]) -> Iterator[EventBatch]:
    """Drop failed references from every batch."""
    for batch in batches:
        yield batch.good()


class BlockDeduper:
    """Streaming, vectorized Section 5.3 dedupe.

    Keeps at most one read and one write per file per calendar-aligned
    ``window`` block, carrying the last-kept block per ``(file, direction)``
    across batch boundaries.  Matches
    :func:`repro.trace.filters.dedupe_for_file_analysis` (``mode="block"``)
    event for event on any time-ordered stream.
    """

    def __init__(self, window: float = EIGHT_HOURS) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        #: Last kept block per (file, direction) key; -1 = never kept.
        self._last_block = np.full(1024, -1, dtype=np.int64)

    def _ensure_capacity(self, size: int) -> None:
        table = self._last_block
        if size > table.size:
            grown = np.full(max(size, 2 * table.size), -1, dtype=np.int64)
            grown[: table.size] = table
            self._last_block = grown

    def apply(self, batch: EventBatch) -> EventBatch:
        """The deduped view of one batch (updates carried state)."""
        n = len(batch)
        if n == 0:
            return batch
        if np.any(batch.file_id < 0):
            raise ValueError("dedupe expects error-free batches (no negative ids)")
        # One integer key per (file, direction); blocks are nondecreasing
        # per key because the stream is time-ordered, so only the first
        # occurrence of each (key, block) pair can survive.
        key = batch.file_id * 2 + batch.is_write
        block = (batch.time // self.window).astype(np.int64)
        n_blocks = int(block[-1]) + 2
        pair = key * n_blocks + block
        # np.unique(return_index=True) gives the first occurrence of each
        # distinct (key, block) pair -- the only survivable positions.
        _, first_idx = np.unique(pair, return_index=True)
        first_idx.sort()
        cand_key = key[first_idx]
        cand_block = block[first_idx]
        self._ensure_capacity(int(cand_key.max()) + 1)
        # Comparing every candidate against the *pre-batch* state is exact:
        # for two candidate blocks of one key, the later is strictly larger
        # (time order), so it survives whichever way the earlier one went.
        kept = cand_block > self._last_block[cand_key]
        # Unbuffered maximum.at keeps the max block per key regardless of
        # duplicate-index ordering (fancy assignment leaves it unspecified).
        np.maximum.at(self._last_block, cand_key[kept], cand_block[kept])
        keep = np.zeros(n, dtype=bool)
        keep[first_idx[kept]] = True
        return batch.select(keep)


def dedupe_blocks(
    batches: Iterable[EventBatch], window: float = EIGHT_HOURS
) -> Iterator[EventBatch]:
    """Streamed dedupe over a batch iterable."""
    deduper = BlockDeduper(window)
    for batch in batches:
        yield deduper.apply(batch)


def hsm_event_batches(
    trace,
    deduped: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[EventBatch]:
    """The HSM reference stream of a trace, as batches.

    Mirrors the legacy ``repro.hsm.events_from_trace``: failed references
    are dropped, sizes are clamped to at least one byte, and by default
    the eight-hour dedupe is applied (migration decisions would not see
    batch-script re-requests, Section 6).
    """
    return hsm_batches_from_stream(
        trace.iter_batches(chunk_size=chunk_size), deduped=deduped
    )


def hsm_batches_from_stream(
    batches: Iterable[EventBatch], deduped: bool = True
) -> Iterator[EventBatch]:
    """The HSM reference stream of *any* raw batch stream.

    The trace-independent core of :func:`hsm_event_batches`: works for a
    generated trace's batches, a store's memmapped shards, or a composed
    multi-tenant scenario stream.
    """
    batches = strip_errors(batches)
    if deduped:
        batches = dedupe_blocks(batches)
    for batch in batches:
        if len(batch):
            # Replay reads only the four core columns; dropping the
            # optional ones halves the bytes a prepared stream pins
            # (per seed, per sweep worker).
            yield EventBatch(
                file_id=batch.file_id,
                size=np.maximum(batch.size, 1),
                time=batch.time,
                is_write=batch.is_write,
                device=batch.device,
                error=batch.error,
            )


def collect(batches: Iterable[EventBatch]) -> List[EventBatch]:
    """Materialize a batch stream (e.g. before an OPT replay, which needs
    the full future schedule)."""
    return [batch for batch in batches if len(batch)]
