"""Batch-oriented HSM replay: the engine-side policy runners.

These mirror ``repro.hsm.run_policy`` / ``capacity_sweep`` but move
:class:`~repro.engine.batch.EventBatch`es end to end: the stream is never
expanded into per-event tuples, OPT builds its future schedule with one
vectorized pass, and a prepared stream can be replayed against many
(policy, capacity) cells without re-deriving it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.engine.batch import EventBatch
from repro.engine.stream import collect, hsm_event_batches
from repro.hsm.manager import HSM, HSMConfig
from repro.hsm.metrics import HSMMetrics
from repro.migration.opt import OptimalPolicy
from repro.migration.policy import MigrationPolicy
from repro.migration.registry import make_policy
from repro.namespace.model import Namespace


def prepare_stream(
    trace, deduped: bool = True, chunk_size: int = 65_536
) -> List[EventBatch]:
    """Materialize a trace's HSM reference stream as batches.

    The list is compact (a few numpy arrays per chunk) and reusable
    across every cell of a sweep; OPT also needs the whole stream ahead
    of time for its schedule.
    """
    return collect(hsm_event_batches(trace, deduped=deduped, chunk_size=chunk_size))


def build_policy(
    policy_name: str,
    batches: Iterable[EventBatch],
    seed: Optional[int] = None,
) -> MigrationPolicy:
    """Instantiate a policy by name; OPT gets the full future schedule.

    ``seed`` reseeds stochastic policies (see
    :func:`repro.migration.registry.make_policy`); deterministic
    policies and OPT ignore it.
    """
    if policy_name == "opt":
        return OptimalPolicy.from_batches(list(batches))
    return make_policy(policy_name, seed=seed)


def replay_policy(
    batches: List[EventBatch],
    policy_name: str,
    capacity_bytes: int,
    namespace: Optional[Namespace] = None,
    writeback_delay: Optional[float] = 4 * 3600.0,
    prefetch: bool = False,
    policy_seed: Optional[int] = None,
) -> HSMMetrics:
    """Run one named policy over a prepared batch stream."""
    from repro.verify.invariants import invariant_context

    policy = build_policy(policy_name, batches, seed=policy_seed)
    config = HSMConfig.with_capacity(
        capacity_bytes, writeback_delay=writeback_delay, prefetch=prefetch
    )
    hsm = HSM(config, policy, namespace=namespace)
    with invariant_context(
        engine="des", policy=policy_name, capacity_bytes=capacity_bytes,
        writeback_delay=writeback_delay, prefetch=prefetch,
        policy_seed=policy_seed,
    ):
        return hsm.replay(batches)


def capacity_sweep_batches(
    batches: List[EventBatch],
    policy_name: str,
    total_bytes: int,
    fractions: Iterable[float],
    namespace: Optional[Namespace] = None,
    engine: str = "auto",
) -> Iterator[Tuple[float, HSMMetrics]]:
    """Miss ratio vs capacity over a prepared stream (Section 2.3 curve).

    ``engine`` picks the replay machinery: ``auto`` computes the whole
    curve in one stack-engine scan when the policy qualifies (see
    :mod:`repro.engine.stackdist`) and falls back to one DES replay per
    capacity otherwise; ``stack`` / ``des`` force one side.  Both
    engines are exact and produce identical metrics.
    """
    from repro.engine.stackdist import multi_capacity_replay, resolve_engine

    fractions = list(fractions)
    if resolve_engine(engine, policy_name):
        capacities = [
            max(int(total_bytes * fraction), 1) for fraction in fractions
        ]
        rows = multi_capacity_replay(batches, policy_name, capacities)
        yield from zip(fractions, rows)
        return
    for fraction in fractions:
        capacity = max(int(total_bytes * fraction), 1)
        yield fraction, replay_policy(
            batches, policy_name, capacity, namespace=namespace
        )
