"""Batch-oriented HSM replay: the engine-side policy runners.

These mirror ``repro.hsm.run_policy`` / ``capacity_sweep`` but move
:class:`~repro.engine.batch.EventBatch`es end to end: the stream is never
expanded into per-event tuples, OPT builds its future schedule with one
vectorized pass, and a prepared stream can be replayed against many
(policy, capacity) cells without re-deriving it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.engine.batch import EventBatch
from repro.engine.stream import collect, hsm_event_batches
from repro.hsm.manager import HSM, HSMConfig
from repro.hsm.metrics import HSMMetrics
from repro.migration.opt import OptimalPolicy
from repro.migration.policy import MigrationPolicy
from repro.migration.registry import make_policy
from repro.namespace.model import Namespace


def prepare_stream(
    trace, deduped: bool = True, chunk_size: int = 65_536
) -> List[EventBatch]:
    """Materialize a trace's HSM reference stream as batches.

    The list is compact (a few numpy arrays per chunk) and reusable
    across every cell of a sweep; OPT also needs the whole stream ahead
    of time for its schedule.
    """
    return collect(hsm_event_batches(trace, deduped=deduped, chunk_size=chunk_size))


def build_policy(policy_name: str, batches: Iterable[EventBatch]) -> MigrationPolicy:
    """Instantiate a policy by name; OPT gets the full future schedule."""
    if policy_name == "opt":
        return OptimalPolicy.from_batches(list(batches))
    return make_policy(policy_name)


def replay_policy(
    batches: List[EventBatch],
    policy_name: str,
    capacity_bytes: int,
    namespace: Optional[Namespace] = None,
    writeback_delay: Optional[float] = 4 * 3600.0,
    prefetch: bool = False,
) -> HSMMetrics:
    """Run one named policy over a prepared batch stream."""
    policy = build_policy(policy_name, batches)
    config = HSMConfig.with_capacity(
        capacity_bytes, writeback_delay=writeback_delay, prefetch=prefetch
    )
    hsm = HSM(config, policy, namespace=namespace)
    return hsm.replay(batches)


def capacity_sweep_batches(
    batches: List[EventBatch],
    policy_name: str,
    total_bytes: int,
    fractions: Iterable[float],
    namespace: Optional[Namespace] = None,
) -> Iterator[Tuple[float, HSMMetrics]]:
    """Miss ratio vs capacity over a prepared stream (Section 2.3 curve)."""
    for fraction in fractions:
        capacity = max(int(total_bytes * fraction), 1)
        yield fraction, replay_policy(
            batches, policy_name, capacity, namespace=namespace
        )
