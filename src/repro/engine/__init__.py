"""The columnar event-batch engine.

One streaming pipeline from trace synthesis through HSM replay to the
Section 6 sweeps: producers yield :class:`EventBatch` chunks, transforms
are vectorized per batch, and the sweep runner fans grid cells out over
worker processes.
"""

from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    DEVICE_ORDER,
    EventBatch,
    device_at,
    device_index,
    rechunk,
)
from repro.engine.records import records_from_batch, records_from_batches
from repro.engine.replay import (
    build_policy,
    capacity_sweep_batches,
    prepare_stream,
    replay_policy,
)
from repro.engine.stackdist import (
    STACK_POLICIES,
    StackEngineError,
    multi_capacity_replay,
    resolve_engine,
    supports_policy,
)
from repro.engine.resilience import (
    FaultInjected,
    RetryPolicy,
    TaskOutcome,
    fault_point,
    list_runs,
    load_run_summary,
    run_supervised,
    sigterm_as_interrupt,
    sweep_config_hash,
    write_json_atomic,
)
from repro.engine.store import (
    StoreError,
    TraceStore,
    config_hash,
    open_or_generate,
    quarantine_slot,
    store_dir_for,
    sweep_stale_staging,
)
from repro.engine.stream import (
    BlockDeduper,
    collect,
    dedupe_blocks,
    hsm_event_batches,
    strip_errors,
)
from repro.engine.sweep import (
    FailedCell,
    SweepConfig,
    SweepResult,
    SweepRow,
    log_spaced_fractions,
    run_sweep,
)

__all__ = [
    "BlockDeduper",
    "DEFAULT_CHUNK_SIZE",
    "DEVICE_ORDER",
    "EventBatch",
    "FailedCell",
    "FaultInjected",
    "RetryPolicy",
    "STACK_POLICIES",
    "StackEngineError",
    "StoreError",
    "SweepConfig",
    "SweepResult",
    "SweepRow",
    "TaskOutcome",
    "TraceStore",
    "build_policy",
    "config_hash",
    "fault_point",
    "capacity_sweep_batches",
    "collect",
    "dedupe_blocks",
    "device_at",
    "device_index",
    "hsm_event_batches",
    "list_runs",
    "load_run_summary",
    "log_spaced_fractions",
    "multi_capacity_replay",
    "open_or_generate",
    "prepare_stream",
    "quarantine_slot",
    "rechunk",
    "records_from_batch",
    "records_from_batches",
    "replay_policy",
    "resolve_engine",
    "run_supervised",
    "run_sweep",
    "sigterm_as_interrupt",
    "store_dir_for",
    "strip_errors",
    "supports_policy",
    "sweep_config_hash",
    "sweep_stale_staging",
    "write_json_atomic",
]
