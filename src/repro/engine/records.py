"""The thin record-view adapter: batches -> lazy ``TraceRecord`` views.

The analyses and the trace writer render per-record views (paths, flags,
users).  Rather than teaching every table and figure about columns, this
adapter materializes :class:`~repro.trace.record.TraceRecord` objects
lazily from a batch stream, so record-consuming code keeps working while
the layers below it move columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.engine.batch import DEVICE_ORDER, EventBatch
from repro.namespace.model import Namespace
from repro.trace.errors import ErrorKind
from repro.trace.record import TraceRecord, make_read, make_write


def records_from_batch(
    batch: EventBatch, namespace: Namespace
) -> Iterator[TraceRecord]:
    """Yield one batch as records, in order."""
    n = len(batch)
    users = batch.user if batch.user is not None else np.zeros(n, dtype=np.int32)
    latencies = (
        batch.latency if batch.latency is not None else np.zeros(n, dtype=np.float64)
    )
    transfers = (
        batch.transfer if batch.transfer is not None else np.zeros(n, dtype=np.float64)
    )
    rows = zip(
        batch.file_id.tolist(),
        batch.size.tolist(),
        batch.time.tolist(),
        batch.is_write.tolist(),
        batch.device.tolist(),
        batch.error.tolist(),
        users.tolist(),
        latencies.tolist(),
        transfers.tolist(),
    )
    path_of = namespace.path_of
    for file_id, size, time, is_write, device, error, user, latency, transfer in rows:
        maker = make_write if is_write else make_read
        yield maker(
            device=DEVICE_ORDER[device],
            start_time=time,
            file_size=size,
            mss_path=path_of(file_id),
            user_id=user,
            startup_latency=latency,
            transfer_time=transfer,
            error=ErrorKind(error),
        )


def records_from_batches(
    batches: Iterable[EventBatch], namespace: Namespace
) -> Iterator[TraceRecord]:
    """Lazy record view of a whole batch stream."""
    for batch in batches:
        yield from records_from_batch(batch, namespace)
