"""Fault-tolerant execution: checkpoints, supervised workers, fault points.

The paper's MSS ran unattended for years in a machine room where device
faults and operator error were the normal case, not the exception.  Our
long-running surfaces -- multi-hour policy x scenario sweeps and the
content-addressed store cache -- used to die wholesale on a single
worker crash.  This module is the substrate that makes partial failure
survivable:

* **Checkpointed runs.**  A sweep with a ``run_dir`` persists every
  completed task as one JSON record in a content-addressed run
  directory keyed by the :func:`sweep_config_hash` of its
  ``SweepConfig`` (runtime-only knobs like worker count excluded, so a
  resume may use a different machine shape).  Layout::

      <runs_root>/sweep-<config-hash>/
        config.json         # canonical config + hash
        tasks/<hash>.json   # one record per completed SweepTask
        run_summary.json    # written when the run finishes (or is
                            # interrupted), the durable run record

* **Supervised workers.**  :func:`run_supervised` replaces a bare
  ``pool.map``: a bounded submission loop over a
  ``ProcessPoolExecutor`` with per-task timeout, bounded retry with
  exponential backoff + deterministic jitter, and crash isolation -- a
  SIGKILLed fork surfaces as ``BrokenProcessPool``, the pool is
  re-spawned, and only the lost (unfinished) tasks are requeued.
  Exhausted retries degrade to a ``failed`` outcome instead of raising.

* **Fault points.**  :func:`fault_point` is an inert-by-default hook
  the test harness (``tests/resilience/faults.py``) keys via the
  ``REPRO_FAULT_PLAN`` environment variable to deterministically kill
  workers mid-task, inject slow tasks, or interrupt the parent -- so
  the whole layer is tested against injected faults, not happy paths.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

#: Environment variable naming the JSON fault plan; unset = inert hooks.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Manifest magic for run_summary.json.
RUN_MAGIC = "repro-sweep-run"

#: SweepConfig fields that do not change results: excluded from the run
#: hash so a resume can change machine shape, retry budget, or cache
#: location without orphaning its checkpoints.
RUNTIME_FIELDS = frozenset(
    {"workers", "cache_dir", "run_dir", "resume", "max_retries",
     "task_timeout", "retry_backoff"}
)

#: Supervisor poll interval: how often in-flight futures are checked for
#: completion, pool breakage, and deadline overrun.
_POLL_SECONDS = 0.05


class FaultInjected(RuntimeError):
    """Raised by an injected ``raise`` fault rule (test harness only)."""


# ---------------------------------------------------------------------------
# Fault injection


def _bump_counter(path: str) -> int:
    """Increment a single-writer counter file; returns the new value."""
    try:
        count = int(Path(path).read_text() or 0)
    except (OSError, ValueError):
        count = 0
    count += 1
    Path(path).write_text(str(count))
    return count


def fault_point(site: str, label: str) -> List[str]:
    """Deterministic fault-injection hook; inert unless a plan is active.

    Production code marks named fault points (``worker-task`` before a
    sweep task executes, ``parent-checkpoint`` after a checkpoint record
    lands).  When ``REPRO_FAULT_PLAN`` names a JSON plan file, each of
    its rules fires when ``site`` matches and ``match`` (if present) is
    a substring of ``label``.  Actions: ``count`` (append the label to a
    log, for task-execution counters), ``sleep`` (simulate a hung
    worker or a slow service consumer), ``raise`` (a deterministic task
    failure), ``interrupt`` (KeyboardInterrupt, a simulated Ctrl-C),
    ``sigterm`` (SIGTERM to the calling process, a simulated
    orchestrator stop), ``kill`` (SIGKILL the calling process, a
    simulated crashed fork or server), ``corrupt`` (inert here: the
    call site applies a deliberate state corruption when it sees the
    action fire, used to prove the invariant checker catches
    divergence).  The service layer adds the sites ``serve-ingest``
    (before a chunk's journal append), ``serve-journal`` (after the
    append, before apply) and ``serve-applied`` (after apply, before
    the ack); the replay layer adds ``hsm-batch`` (after each batch is
    applied to the cache).  A rule with a ``once_path`` fires exactly
    once across all processes (O_EXCL flag file); one with
    ``after``/``counter_path`` fires on the Nth hit.

    Returns the list of action names that fired, so call sites can
    react to advisory actions like ``corrupt`` (actions that raise or
    kill never return, so the list only ever carries survivable ones).
    """
    fired: List[str] = []
    plan_path = os.environ.get(FAULT_PLAN_ENV)
    if not plan_path:
        return fired
    try:
        with open(plan_path, "r", encoding="utf-8") as handle:
            plan = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return fired
    for rule in plan.get("rules", ()):
        if rule.get("site") != site:
            continue
        match = rule.get("match")
        if match and match not in label:
            continue
        once = rule.get("once_path")
        if once:
            try:
                flag = os.open(once, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # this rule already fired (in some process)
            os.close(flag)
        after = rule.get("after")
        if after is not None and _bump_counter(rule["counter_path"]) != int(after):
            continue
        action = rule.get("action")
        if action == "count":
            with open(rule["count_path"], "a", encoding="utf-8") as handle:
                handle.write(label + "\n")
        elif action == "sleep":
            time.sleep(float(rule.get("seconds", 1.0)))
        elif action == "raise":
            raise FaultInjected(f"injected fault at {site}: {label}")
        elif action == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {site}: {label}")
        elif action == "sigterm":
            # An orchestrator stopping the process at this exact point.
            os.kill(os.getpid(), signal.SIGTERM)
        elif action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action:
            fired.append(action)
    return fired


# ---------------------------------------------------------------------------
# Signal discipline


@contextlib.contextmanager
def sigterm_as_interrupt():
    """Deliver SIGTERM as :class:`KeyboardInterrupt` inside the block.

    ``run_sweep`` already converts Ctrl-C into a clean ``interrupted``
    run summary; orchestrators (including the ``repro serve``
    supervisor) stop children with SIGTERM instead, which by default
    kills the process before any checkpoint lands.  Inside this block
    both signals take the same KeyboardInterrupt path, so either way of
    stopping a sweep leaves the same resumable checkpoint behind.

    The previous handler is restored on exit.  Off the main thread (or
    wherever the interpreter refuses handler installation) the block is
    a no-op -- signal handlers are main-thread-only in CPython.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic embedding
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# ---------------------------------------------------------------------------
# Retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout budget for supervised task execution."""

    #: Re-runs after the first attempt; 0 disables retries.
    max_retries: int = 2
    #: Seconds an in-flight task may run before its pool is recycled and
    #: the task retried; None disables the deadline (crashed workers are
    #: still detected immediately via the broken pool).
    task_timeout: Optional[float] = None
    #: Exponential-backoff base delay in seconds; 0 retries immediately.
    backoff: float = 0.5
    #: Backoff ceiling.
    backoff_cap: float = 30.0


def retry_delay(policy: RetryPolicy, label: str, attempt: int) -> float:
    """Backoff before retry ``attempt`` of a task: exponential + jitter.

    The jitter is derived from a hash of (label, attempt), so delays are
    deterministic across runs (no wall-clock or RNG state involved)
    while still de-synchronizing tasks that fail together.
    """
    if policy.backoff <= 0:
        return 0.0
    base = min(policy.backoff * (2.0 ** attempt), policy.backoff_cap)
    digest = hashlib.blake2s(f"{label}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:4], "little") / 2**32
    return base * (0.5 + 0.5 * jitter)


# ---------------------------------------------------------------------------
# Supervised execution


@dataclass
class TaskOutcome:
    """What happened to one supervised task."""

    index: int
    #: Executions consumed (1 = first try succeeded).
    attempts: int
    #: ``ok`` | ``retried`` (succeeded after >= 1 retry) | ``failed``.
    status: str
    result: Any = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0


@dataclass
class _Pending:
    """One not-yet-finished task in the supervisor's queue."""

    index: int
    attempt: int = 0
    not_before: float = 0.0
    started: float = 0.0


def _run_serial(
    worker_fn: Callable[[Any], Any],
    task: Any,
    index: int,
    label: str,
    retry: RetryPolicy,
) -> TaskOutcome:
    """In-process execution with the same retry semantics as the pool."""
    attempt = 0
    start = time.monotonic()
    while True:
        try:
            result = worker_fn(task)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if attempt >= retry.max_retries:
                return TaskOutcome(
                    index, attempt + 1, "failed",
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_seconds=time.monotonic() - start,
                )
            time.sleep(retry_delay(retry, label, attempt))
            attempt += 1
            continue
        return TaskOutcome(
            index, attempt + 1, "ok" if attempt == 0 else "retried",
            result=result, elapsed_seconds=time.monotonic() - start,
        )


def run_supervised(
    worker_fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    mp_context: str = "fork",
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
    on_complete: Optional[Callable[[TaskOutcome], None]] = None,
) -> List[TaskOutcome]:
    """Run every task under supervision; never raises for task faults.

    ``workers <= 1`` runs in-process (retries still apply).  Otherwise a
    ``ProcessPoolExecutor`` (fork start-method where available) executes
    tasks with at most ``workers`` in flight:

    * A task raising an exception is retried up to ``retry.max_retries``
      times with exponential backoff + jitter, then marked ``failed``.
    * A worker dying (SIGKILL, segfault) breaks the pool: the pool is
      killed and re-spawned, and every unfinished in-flight task is
      requeued with a bumped attempt count (the dead worker's task
      cannot be attributed, so all suspects pay one attempt).
    * A task exceeding ``retry.task_timeout`` recycles the pool: the
      hung task is requeued with a bumped attempt, innocent in-flight
      tasks are requeued without one.

    ``on_complete`` fires in the parent as each task reaches a terminal
    state (checkpointing hook); outcomes are returned in task order.
    """
    retry = retry or RetryPolicy()
    if labels is None:
        labels = [str(index) for index in range(len(tasks))]
    outcomes: Dict[int, TaskOutcome] = {}

    def finish(outcome: TaskOutcome) -> None:
        outcomes[outcome.index] = outcome
        if on_complete is not None:
            on_complete(outcome)

    if not tasks:
        return []
    if workers <= 1:
        for index, task in enumerate(tasks):
            finish(_run_serial(worker_fn, task, index, labels[index], retry))
        return [outcomes[index] for index in range(len(tasks))]

    try:
        ctx = multiprocessing.get_context(mp_context)
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context("spawn")
    max_workers = min(workers, len(tasks))

    waiting: List[_Pending] = [_Pending(index) for index in range(len(tasks))]
    inflight: Dict[Future, _Pending] = {}
    executor: Optional[ProcessPoolExecutor] = None

    def spawn() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=ctx,
            initializer=initializer, initargs=initargs,
        )

    def kill(pool: ProcessPoolExecutor) -> None:
        # Terminate, never join: SIGKILL the workers (a hung fork would
        # block a join forever) and drop the queues without waiting.
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def requeue(entry: _Pending, error: str, *, bump: bool) -> None:
        attempt = entry.attempt + 1 if bump else entry.attempt
        if attempt > retry.max_retries:
            finish(TaskOutcome(
                entry.index, entry.attempt + 1, "failed", error=error,
                elapsed_seconds=time.monotonic() - entry.started,
            ))
            return
        delay = retry_delay(retry, labels[entry.index], attempt) if bump else 0.0
        waiting.append(_Pending(entry.index, attempt, time.monotonic() + delay))

    try:
        while waiting or inflight:
            now = time.monotonic()
            if executor is None:
                executor = spawn()
            waiting.sort(key=lambda entry: (entry.not_before, entry.index))
            while (waiting and len(inflight) < max_workers
                   and waiting[0].not_before <= now):
                entry = waiting.pop(0)
                entry.started = time.monotonic()
                try:
                    future = executor.submit(worker_fn, tasks[entry.index])
                except BrokenProcessPool:
                    # Broke while idle (worker died between tasks):
                    # nobody's fault, recycle and resubmit unbumped.
                    waiting.append(entry)
                    kill(executor)
                    executor = None
                    break
                inflight[future] = entry
            if executor is None:
                continue
            if not inflight:
                # Everything left is backing off; sleep to the earliest.
                pause = max(waiting[0].not_before - now, 0.0)
                time.sleep(min(pause, _POLL_SECONDS) or 0.01)
                continue
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                entry = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    requeue(entry, "worker process died (pool broken)",
                            bump=True)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    requeue(entry, f"{type(exc).__name__}: {exc}", bump=True)
                else:
                    finish(TaskOutcome(
                        entry.index, entry.attempt + 1,
                        "ok" if entry.attempt == 0 else "retried",
                        result=result,
                        elapsed_seconds=time.monotonic() - entry.started,
                    ))
            if broken:
                # The dead fork's task cannot be attributed, so every
                # unfinished in-flight task is a suspect: requeue all of
                # them with a bumped attempt and re-spawn the pool.
                for entry in inflight.values():
                    requeue(entry, "worker process died (pool broken)",
                            bump=True)
                inflight.clear()
                kill(executor)
                executor = None
                continue
            if retry.task_timeout is not None and inflight:
                now = time.monotonic()
                hung = [
                    entry for entry in inflight.values()
                    if now - entry.started > retry.task_timeout
                ]
                if hung:
                    # A hung worker cannot be killed individually through
                    # the executor: recycle the whole pool, bill only the
                    # overdue tasks for an attempt.
                    overdue = {entry.index for entry in hung}
                    for entry in inflight.values():
                        if entry.index in overdue:
                            requeue(
                                entry,
                                f"task timed out after "
                                f"{retry.task_timeout:.1f}s",
                                bump=True,
                            )
                        else:
                            requeue(entry,
                                    "requeued: pool recycled around a "
                                    "hung task", bump=False)
                    inflight.clear()
                    kill(executor)
                    executor = None
    finally:
        if executor is not None:
            kill(executor)

    return [outcomes[index] for index in sorted(outcomes)]


# ---------------------------------------------------------------------------
# Checkpointed run directories


def _json_default(obj: Any) -> Any:
    """Make numpy scalars (replay counters) JSON-serializable."""
    item = getattr(obj, "item", None)
    if callable(item):
        return obj.item()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def write_json_atomic(path: Union[str, Path], payload: dict) -> None:
    """Write a JSON document atomically (temp file + ``os.replace``).

    Readers never observe a half-written file: they see either the old
    content or the new one.  Shared by the sweep checkpoints and the
    service layer's session metadata / shutdown summaries.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True,
                  default=_json_default)
    os.replace(tmp, path)


# Backward-compatible private alias (pre-service-layer name).
_write_json_atomic = write_json_atomic


def canonical_sweep_config(config: Any) -> dict:
    """A SweepConfig as a JSON-stable dict, runtime-only knobs removed."""
    import dataclasses

    return {
        name: value
        for name, value in dataclasses.asdict(config).items()
        if name not in RUNTIME_FIELDS
    }


def sweep_config_hash(config: Any) -> str:
    """Content address of one sweep's result-determining configuration."""
    canon = json.dumps(
        canonical_sweep_config(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def run_dir_for(runs_root: Union[str, Path], config: Any) -> Path:
    """The run directory one SweepConfig addresses under ``runs_root``."""
    return Path(runs_root) / f"sweep-{sweep_config_hash(config)}"


def prepare_run_dir(runs_root: Union[str, Path], config: Any) -> Path:
    """Create (or re-enter) the run directory for one config."""
    run_dir = run_dir_for(runs_root, config)
    (run_dir / "tasks").mkdir(parents=True, exist_ok=True)
    config_path = run_dir / "config.json"
    if not config_path.is_file():
        _write_json_atomic(config_path, {
            "format": RUN_MAGIC,
            "config_hash": sweep_config_hash(config),
            "config": canonical_sweep_config(config),
            "created_at": time.time(),
        })
    return run_dir


def checkpoint_task(run_dir: Union[str, Path], key: str, payload: dict) -> Path:
    """Persist one completed task's record atomically; returns its path."""
    path = Path(run_dir) / "tasks" / f"{key}.json"
    _write_json_atomic(path, payload)
    return path


def load_checkpoints(run_dir: Union[str, Path]) -> Dict[str, dict]:
    """Every readable task record in a run directory, keyed by task hash.

    Corrupt or half-written records are skipped (their tasks simply
    re-run), so a crash mid-checkpoint can never wedge a resume.
    """
    tasks_dir = Path(run_dir) / "tasks"
    if not tasks_dir.is_dir():
        return {}
    records: Dict[str, dict] = {}
    for path in sorted(tasks_dir.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                records[path.stem] = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
    return records


def write_run_summary(run_dir: Union[str, Path], summary: dict) -> Path:
    """Write ``run_summary.json``: the durable record of one run."""
    payload = dict(summary)
    payload.setdefault("format", RUN_MAGIC)
    payload["written_at"] = time.time()
    path = Path(run_dir) / "run_summary.json"
    _write_json_atomic(path, payload)
    return path


def load_run_summary(run_dir: Union[str, Path]) -> Optional[dict]:
    """The run summary, or None if never written / unreadable.

    A summary that parses but is not a JSON object (a truncated or
    mangled file that still decodes, e.g. ``null`` or a bare string) is
    treated as unreadable: callers can rely on dict methods.
    """
    path = Path(run_dir) / "run_summary.json"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            summary = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return summary if isinstance(summary, dict) else None


def list_runs(runs_root: Union[str, Path]) -> List[dict]:
    """Every run directory under ``runs_root`` (for ``repro runs list``).

    Corrupt or partially-written run dirs -- a ``config.json`` or
    ``run_summary.json`` that is missing, truncated, or not a JSON
    object -- never raise.  Each record carries a ``corrupt`` list
    naming the damaged files so the CLI can warn and keep going.
    """
    runs_root = Path(runs_root)
    if not runs_root.is_dir():
        return []
    runs: List[dict] = []
    for path in sorted(runs_root.iterdir()):
        if not path.is_dir():
            continue
        config_path = path / "config.json"
        summary_path = path / "run_summary.json"
        if not config_path.is_file() and not summary_path.is_file():
            continue  # not a run dir at all
        corrupt: List[str] = []
        config: dict = {}
        if config_path.is_file():
            try:
                with open(config_path, "r", encoding="utf-8") as handle:
                    loaded = json.load(handle)
                if isinstance(loaded, dict):
                    config = loaded
                else:
                    corrupt.append("config.json")
            except (OSError, json.JSONDecodeError):
                corrupt.append("config.json")
        else:
            corrupt.append("config.json")
        summary = load_run_summary(path)
        if summary is None and summary_path.is_file():
            corrupt.append("run_summary.json")
        tasks_dir = path / "tasks"
        checkpointed = (
            len(list(tasks_dir.glob("*.json"))) if tasks_dir.is_dir() else 0
        )
        runs.append({
            "name": path.name,
            "path": str(path),
            "config_hash": config.get("config_hash"),
            "created_at": config.get("created_at"),
            "checkpointed": checkpointed,
            "status": (
                "corrupt" if corrupt
                else (summary or {}).get("status", "in-progress")
            ),
            "summary": summary,
            "corrupt": corrupt,
        })
    return runs
