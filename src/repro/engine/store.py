"""The on-disk columnar trace store: capture once, analyze many times.

The paper's trace was collected once and mined for years; our synthetic
stand-in used to be re-synthesized on every ``report``/``analyze``/sweep
invocation, so generation dominated wall time once replay and analysis
went columnar.  A :class:`TraceStore` persists an
:class:`~repro.engine.batch.EventBatch` stream as per-column ``.npy``
shards plus a JSON manifest, and reads it back as zero-copy memory-mapped
batches -- re-analysis touches only the pages an analysis actually reads,
and a larger-than-RAM trace streams in bounded memory.

On top sits a content-addressed cache: :func:`open_or_generate` keys a
store directory by a canonical hash of the :class:`WorkloadConfig`
(plus the generator version and store-format version), so any consumer
asking for the same workload twice pays generation once.  Bumping
``repro.workload.generator.GENERATOR_VERSION`` invalidates every cached
store at once -- the manifest hash no longer matches.

Layout of one store directory::

    <dir>/
      manifest.json                  # metadata + per-shard checksums
      shard-00000.file_id.npy        # one .npy per column per shard
      shard-00000.size.npy
      ...

Shard boundaries mirror the written batch boundaries, so a round-trip
reproduces the input stream batch for batch, bit for bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch

#: On-disk format version; bump on any incompatible layout/manifest change.
STORE_FORMAT_VERSION = 1

#: Staging dirs (``.tmp-*``) older than this are debris from a killed
#: writer and get reclaimed on the next writer's entry.  Generous: the
#: slowest legitimate write (a dense multi-day scenario composition) is
#: minutes, not hours.
STAGING_TTL_SECONDS = 6 * 3600.0

#: Manifest magic so ``trace info`` can reject arbitrary directories.
STORE_MAGIC = "repro-trace-store"

MANIFEST_NAME = "manifest.json"

#: Column write order: required columns first, then the optional ones.
REQUIRED_COLUMNS = ("file_id", "size", "time", "is_write", "device", "error")
OPTIONAL_COLUMNS = ("user", "latency", "transfer")


class StoreError(RuntimeError):
    """A store directory is missing, corrupt, or incompatible."""


def _generator_version() -> int:
    from repro.workload.generator import GENERATOR_VERSION

    return GENERATOR_VERSION


def canonical_config(config) -> dict:
    """A :class:`WorkloadConfig` as a plain, JSON-stable dict."""
    return dataclasses.asdict(config)


def config_hash(
    config,
    variant: str = "trace",
    generator_version: Optional[int] = None,
) -> str:
    """Content address of one (config, variant, generator) combination.

    ``variant`` names the derivation of the stream ("trace" for the raw
    generated trace; the sweep uses "hsm-*" variants for prepared replay
    streams), so different views of one workload key different stores.
    """
    if generator_version is None:
        generator_version = _generator_version()
    payload = {
        "format_version": STORE_FORMAT_VERSION,
        "generator_version": generator_version,
        "variant": variant,
        "config": canonical_config(config),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


def store_dir_for(cache_dir: Union[str, Path], config, variant: str = "trace") -> Path:
    """Cache-directory slot one (config, variant) pair addresses."""
    return Path(cache_dir) / f"{variant}-{config_hash(config, variant)}"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _shard_file(index: int, column: str) -> str:
    return f"shard-{index:05d}.{column}.npy"


class TraceStore:
    """One on-disk columnar store, opened read-only via memory-mapping."""

    def __init__(self, path: Union[str, Path], manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Opening and writing

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceStore":
        """Open an existing store, validating the manifest header."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"no {MANIFEST_NAME} in {path}")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != STORE_MAGIC:
            raise StoreError(f"{path} is not a {STORE_MAGIC} directory")
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise StoreError(
                f"{path}: store format v{manifest.get('format_version')} "
                f"!= supported v{STORE_FORMAT_VERSION}"
            )
        return cls(path, manifest)

    @classmethod
    def write(
        cls,
        path: Union[str, Path],
        batches: Iterable[EventBatch],
        *,
        config=None,
        variant: str = "trace",
        seed: Optional[int] = None,
        total_bytes: Optional[int] = None,
        generator_version: Optional[int] = None,
        meta: Optional[dict] = None,
        overwrite: bool = False,
    ) -> "TraceStore":
        """Persist a batch stream as one store directory.

        Empty batches are dropped (they carry no events and would make
        zero-length shards); shard boundaries otherwise mirror the input
        batch boundaries.  The manifest is written last, so a crashed
        write leaves a directory that :meth:`open` rejects.
        """
        path = Path(path)
        if (path / MANIFEST_NAME).exists() and not overwrite:
            raise StoreError(f"store already exists at {path}")
        path.mkdir(parents=True, exist_ok=True)
        if overwrite:
            # Drop the old manifest first (a crash mid-overwrite must
            # leave an openable-as-invalid store, not a stale manifest
            # pointing at replaced shards), then the old shard files so
            # a smaller store leaves no unreferenced orphans behind.
            manifest_path = path / MANIFEST_NAME
            if manifest_path.exists():
                manifest_path.unlink()
            for stale in path.glob("shard-*.npy"):
                stale.unlink()
        if generator_version is None:
            generator_version = _generator_version()

        columns: Optional[List[str]] = None
        shards: List[dict] = []
        n_events = 0
        t_first: Optional[float] = None
        t_last: Optional[float] = None
        for batch in batches:
            if len(batch) == 0:
                continue
            present = [
                name
                for name in REQUIRED_COLUMNS + OPTIONAL_COLUMNS
                if getattr(batch, name) is not None
            ]
            if columns is None:
                columns = present
            elif present != columns:
                raise StoreError(
                    f"inconsistent columns across stream: {present} != {columns}"
                )
            index = len(shards)
            checksums: Dict[str, str] = {}
            nbytes: Dict[str, int] = {}
            for name in columns:
                column = np.ascontiguousarray(getattr(batch, name))
                file_path = path / _shard_file(index, name)
                np.save(file_path, column)
                checksums[name] = _sha256_file(file_path)
                nbytes[name] = file_path.stat().st_size
            shards.append(
                {
                    "index": index,
                    "n_events": len(batch),
                    "checksums": checksums,
                    "nbytes": nbytes,
                }
            )
            n_events += len(batch)
            if t_first is None:
                t_first = float(batch.time[0])
            t_last = float(batch.time[-1])

        manifest = {
            "format": STORE_MAGIC,
            "format_version": STORE_FORMAT_VERSION,
            "generator_version": generator_version,
            "variant": variant,
            "config": None if config is None else canonical_config(config),
            "config_hash": None
            if config is None
            else config_hash(config, variant, generator_version),
            "seed": seed if seed is not None else getattr(config, "seed", None),
            "n_events": n_events,
            "n_shards": len(shards),
            "total_bytes": total_bytes,
            "time_first": t_first,
            "time_last": t_last,
            "columns": columns or [],
            "shards": shards,
            "meta": meta or {},
        }
        tmp = path / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, path / MANIFEST_NAME)
        return cls(path, manifest)

    # ------------------------------------------------------------------
    # Manifest views

    @property
    def n_events(self) -> int:
        """Total events across all shards."""
        return int(self.manifest["n_events"])

    @property
    def n_shards(self) -> int:
        """Number of shards (one per written non-empty batch)."""
        return int(self.manifest["n_shards"])

    @property
    def columns(self) -> List[str]:
        """Column names every shard carries."""
        return list(self.manifest["columns"])

    @property
    def total_bytes(self) -> Optional[int]:
        """Referenced-store size recorded at write time (if any)."""
        value = self.manifest.get("total_bytes")
        return None if value is None else int(value)

    @property
    def meta(self) -> dict:
        """Free-form manifest metadata (empty for pre-metadata stores)."""
        return self.manifest.get("meta") or {}

    @property
    def span_seconds(self) -> float:
        """Trace time span covered by the stored events."""
        first = self.manifest.get("time_first")
        last = self.manifest.get("time_last")
        if first is None or last is None:
            return 0.0
        return float(last) - float(first)

    # ------------------------------------------------------------------
    # Reading

    def _load(self, index: int, column: str) -> np.ndarray:
        file_path = self.path / _shard_file(index, column)
        try:
            return np.load(file_path, mmap_mode="r")
        except FileNotFoundError as exc:
            raise StoreError(f"missing shard file {file_path}") from exc

    def iter_batches(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[EventBatch]:
        """The stored stream as zero-copy memory-mapped batches.

        Columns are ``np.memmap`` views: read-only, paged in on demand,
        shared between processes that open the same store.  Pass
        ``chunk_size`` to re-chunk the stream without copying (slices of
        a memmap are still memmaps).
        """
        columns = self.columns
        for shard in self.manifest["shards"]:
            index = int(shard["index"])
            arrays = {name: self._load(index, name) for name in columns}
            batch = EventBatch(**arrays)
            if chunk_size is None:
                yield batch
            else:
                yield from batch.chunks(chunk_size)

    def batches(self, chunk_size: Optional[int] = None) -> List[EventBatch]:
        """Materialized list of (still memory-mapped) batches."""
        return list(self.iter_batches(chunk_size=chunk_size))

    def _check_shard_files(self, *, deep: bool) -> None:
        """Shared shard validation: existence and recorded size always,
        full checksum recomputation when ``deep``."""
        for shard in self.manifest["shards"]:
            index = int(shard["index"])
            sizes = shard.get("nbytes") or {}
            for name, expected in shard["checksums"].items():
                file_path = self.path / _shard_file(index, name)
                if not file_path.is_file():
                    raise StoreError(f"missing shard file {file_path}")
                want = sizes.get(name)
                if want is not None:
                    have = file_path.stat().st_size
                    if have != int(want):
                        raise StoreError(
                            f"truncated shard file {file_path}: "
                            f"{have} bytes != manifest {int(want)}"
                        )
                if deep:
                    actual = _sha256_file(file_path)
                    if actual != expected:
                        raise StoreError(
                            f"checksum mismatch in {file_path}: "
                            f"{actual} != manifest {expected}"
                        )

    def validate_light(self) -> None:
        """Cheap structural check: every shard file present at its
        recorded size.  Catches deleted and truncated shards without
        re-hashing gigabytes (stores written before sizes were recorded
        fall back to existence checks); :class:`StoreError` on damage.
        """
        self._check_shard_files(deep=False)

    def verify(self) -> None:
        """Full integrity check: missing files, truncation, checksum
        drift -- in that order; raise :class:`StoreError` on the first.
        """
        self._check_shard_files(deep=True)

    def describe(self) -> str:
        """Human-readable manifest summary (the ``trace info`` body)."""
        m = self.manifest
        lines = [
            f"store:     {self.path}",
            f"variant:   {m.get('variant')}",
            f"events:    {self.n_events} in {self.n_shards} shards",
            f"span:      {self.span_seconds / 86400.0:.1f} days",
            f"seed:      {m.get('seed')}",
            f"generator: v{m.get('generator_version')} "
            f"(format v{m.get('format_version')})",
            f"config:    {m.get('config_hash') or '(imported; no config hash)'}",
            f"columns:   {', '.join(self.columns) or '(empty store)'}",
        ]
        if self.total_bytes is not None:
            lines.append(f"referenced: {self.total_bytes / 1e9:.2f} GB")
        scenario = self.meta.get("scenario")
        if isinstance(scenario, dict):
            # Composed scenario stores carry tenant metadata; stores from
            # before the scenario subsystem simply have no block here.
            tenants = scenario.get("tenants") or []
            lines.append(
                f"scenario:  {scenario.get('name')} "
                f"({scenario.get('hash', '')[:16]}...)"
            )
            lines.append(
                f"tenants:   {', '.join(str(t) for t in tenants) or '(unknown)'} "
                f"(file_id % {scenario.get('n_components', len(tenants))} -> rank)"
            )
        lines.append("shard checksums:")
        for shard in m["shards"]:
            first = shard["checksums"][self.columns[0]]
            lines.append(
                f"  shard-{int(shard['index']):05d}  "
                f"{int(shard['n_events']):8d} events  {self.columns[0]}:"
                f"{first[:16]}..."
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The content-addressed cache


def quarantine_slot(target: Union[str, Path], *, keep: int = 3) -> Optional[Path]:
    """Move a damaged cache slot aside instead of deleting it.

    The slot is renamed to ``<name>.quarantine-<timestamp>-<pid>`` next
    to itself, preserving the evidence for a post-mortem while freeing
    the address for regeneration.  Only the newest ``keep`` quarantines
    per slot are retained (oldest pruned by the sortable timestamp in
    the name), so repeated corruption cannot fill the disk.  Returns the
    quarantine path, or None if the slot vanished first (a concurrent
    healer won).
    """
    target = Path(target)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    quarantine = target.with_name(
        f"{target.name}.quarantine-{stamp}-{os.getpid()}"
    )
    try:
        os.replace(target, quarantine)
    except FileNotFoundError:
        return None
    stale = sorted(target.parent.glob(f"{target.name}.quarantine-*"))
    for old in stale[:-keep] if keep > 0 else stale:
        shutil.rmtree(old, ignore_errors=True)
    return quarantine


def sweep_stale_staging(
    cache_dir: Union[str, Path], ttl: float = STAGING_TTL_SECONDS
) -> int:
    """Reclaim staging debris (``.tmp-*``) left by killed writers.

    A writer that died between ``mkdtemp`` and ``os.replace`` leaks its
    staging directory forever -- nothing else references it.  Any
    ``.tmp-*`` entry whose mtime is older than ``ttl`` seconds is
    removed; young ones are left alone (they may belong to a live
    concurrent writer).  Returns the number of directories removed.
    """
    cache_dir = Path(cache_dir)
    cutoff = time.time() - ttl
    removed = 0
    for entry in cache_dir.glob(".tmp-*"):
        try:
            if entry.stat().st_mtime >= cutoff:
                continue
        except OSError:
            continue  # raced with its writer's own rename/cleanup
        shutil.rmtree(entry, ignore_errors=True)
        removed += 1
    return removed


def open_cached(
    config, cache_dir: Union[str, Path], variant: str = "trace"
) -> Optional[TraceStore]:
    """The cached store for one (config, variant), or None on a miss.

    A directory whose manifest hash disagrees with the requested key
    (stale generator version, corrupted manifest) counts as a miss.
    """
    target = store_dir_for(cache_dir, config, variant)
    if not (target / MANIFEST_NAME).is_file():
        return None
    try:
        store = TraceStore.open(target)
    except (StoreError, json.JSONDecodeError):
        return None
    if store.manifest.get("config_hash") != config_hash(config, variant):
        return None
    return store


def write_locked_dir(
    cache_dir: Path,
    target: Path,
    batches: Iterable[EventBatch],
    *,
    config=None,
    variant: str = "trace",
    total_bytes: Optional[int] = None,
    meta: Optional[dict] = None,
    reopen=None,
) -> TraceStore:
    """Write a stream into ``target`` atomically via a staging directory.

    The store is assembled in a sibling temp directory and renamed into
    place, so a concurrent reader never sees a half-written store.  If
    the slot is already occupied, ``reopen`` decides: a *valid* occupant
    (``reopen()`` returns a store) is kept -- a concurrent writer won the
    race -- while an invalid one (crash debris, bit rot) is evicted and
    replaced, so a corrupt slot never wedges the cache.  Shared by the
    config-addressed cache below and the scenario-hash-addressed cache in
    :mod:`repro.scenarios.cache`.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    sweep_stale_staging(cache_dir)
    staging = Path(
        tempfile.mkdtemp(prefix=f".tmp-{target.name}-", dir=str(cache_dir))
    )
    try:
        TraceStore.write(
            staging,
            batches,
            config=config,
            variant=variant,
            total_bytes=total_bytes,
            meta=meta,
        )
        try:
            os.replace(staging, target)
        except OSError:
            winner = reopen() if reopen is not None else None
            if winner is not None:
                shutil.rmtree(staging, ignore_errors=True)
                return winner
            shutil.rmtree(target, ignore_errors=True)
            os.replace(staging, target)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return TraceStore.open(target)


def write_cached(
    config,
    cache_dir: Union[str, Path],
    batches: Iterable[EventBatch],
    *,
    variant: str = "trace",
    total_bytes: Optional[int] = None,
    meta: Optional[dict] = None,
) -> TraceStore:
    """Write a stream into the cache slot for (config, variant), atomically."""
    cache_dir = Path(cache_dir)
    return write_locked_dir(
        cache_dir,
        store_dir_for(cache_dir, config, variant),
        batches,
        config=config,
        variant=variant,
        total_bytes=total_bytes,
        meta=meta,
        reopen=lambda: open_cached(config, cache_dir, variant),
    )


def cache_trace(trace, cache_dir: Union[str, Path]) -> TraceStore:
    """Write-through for an already-generated trace's raw stream.

    The shared cold path of every consumer that holds a
    ``SyntheticTrace`` (Study, ``repro generate --store``): hit the
    cache slot if it is already populated, otherwise persist this
    trace's batches with the standard variant/total-bytes plumbing.
    """
    store = open_cached(trace.config, cache_dir, variant="trace")
    if store is not None:
        return store
    return write_cached(
        trace.config,
        cache_dir,
        trace.iter_batches(),
        variant="trace",
        total_bytes=trace.namespace.total_bytes,
    )


def open_or_generate(
    config,
    cache_dir: Union[str, Path],
    variant: str = "trace",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    check: str = "light",
) -> TraceStore:
    """The capture-once entry point: cached store, or generate and cache.

    ``variant="trace"`` stores the raw generated stream (all columns,
    errors included); ``variant="hsm"``/``"hsm-raw"`` store the prepared
    HSM replay stream (error-stripped, size-clamped, core columns only;
    ``hsm`` additionally deduped) the sweep replays.

    Self-healing: a cache hit is validated per ``check`` -- ``"light"``
    (default) confirms every shard file exists at its recorded size,
    ``"deep"`` re-hashes every shard, ``"open"`` trusts the manifest.  A
    damaged slot is quarantined (:func:`quarantine_slot`) and the store
    regenerated in its place, so bit rot or a truncated shard costs one
    regeneration instead of crashing the consumer mid-read.
    """
    if check not in ("open", "light", "deep"):
        raise ValueError(f"unknown check level {check!r}")
    store = open_cached(config, cache_dir, variant)
    if store is not None:
        try:
            if check == "light":
                store.validate_light()
            elif check == "deep":
                store.verify()
            return store
        except StoreError:
            quarantine_slot(store.path)

    from repro.workload.generator import generate_trace

    trace = generate_trace(config)
    total = trace.namespace.total_bytes
    if variant == "trace":
        batches: Iterable[EventBatch] = trace.iter_batches(chunk_size=chunk_size)
    elif variant in ("hsm", "hsm-raw"):
        from repro.engine.stream import hsm_event_batches

        batches = hsm_event_batches(
            trace, deduped=(variant == "hsm"), chunk_size=chunk_size
        )
    else:
        raise ValueError(f"unknown store variant {variant!r}")
    return write_cached(
        config, cache_dir, batches, variant=variant, total_bytes=total
    )
