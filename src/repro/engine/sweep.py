"""The parallel experiment runner: seeds x capacities x policies.

One call fans the full Section 6 ablation grid out over worker processes.
The parent prepares each seed's replay stream once -- into an on-disk
columnar :class:`~repro.engine.store.TraceStore` -- and ships workers
only the store *paths*: each worker memory-maps the shared shards, so
the initializer payload carries no arrays and N workers share one copy
of every seed's stream through the page cache.  With a ``cache_dir``
the stores are content-addressed and persist across sweeps; without one
they live in a temporary directory for the run.  Replay is the
embarrassingly parallel part, so wall-clock scales with cores.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import tempfile
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch
from repro.engine.replay import replay_policy
from repro.engine.stackdist import multi_capacity_replay, resolve_engine
from repro.engine.store import TraceStore, open_or_generate
from repro.hsm.metrics import HSMMetrics
from repro.util.units import DAY

#: Capacity range (fractions of the referenced store) a point-count sweep
#: spans: around the paper's ~1.5 % managed-disk operating point.
DEFAULT_FRACTION_RANGE = (0.005, 0.08)


@dataclass(frozen=True)
class SweepConfig:
    """The full grid one sweep covers."""

    policies: Tuple[str, ...]
    capacity_fractions: Tuple[float, ...]
    seeds: Tuple[int, ...] = (0,)
    scale: float = 0.02
    duration_days: Optional[float] = None
    writeback_delay: Optional[float] = 4 * 3600.0
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Persistent content-addressed store cache; None uses a per-run
    #: temporary directory (prepared streams still go through the store
    #: so workers memmap instead of unpickling).
    cache_dir: Optional[str] = None
    #: Built-in scenario archetypes to sweep policies against.  Empty
    #: means the classic single-workload grid; otherwise the grid is
    #: scenarios x seeds x policies x capacities, each scenario's
    #: composed HSM stream prepared once per seed (content-addressed by
    #: scenario hash) and replayed against every (policy, capacity) cell.
    scenarios: Tuple[str, ...] = ()
    #: Replay machinery: ``auto`` collapses all capacity cells of an
    #: inclusion-preserving (policy, stream) group into one stack-engine
    #: scan and runs the rest per-cell through the DES; ``des`` forces
    #: per-cell DES everywhere; ``stack`` insists on the stack engine
    #: and rejects policies it cannot replay.  Both engines are exact.
    engine: str = "auto"

    def __post_init__(self) -> None:
        from repro.migration.registry import available_policies

        if not self.policies:
            raise ValueError("need at least one policy")
        known = set(available_policies()) | {"opt"}
        unknown = [name for name in self.policies if name not in known]
        if unknown:
            raise ValueError(
                f"unknown policies {unknown}; choose from {sorted(known)}"
            )
        for policy in self.policies:
            # "stack" must fail fast on a non-stack-replayable policy.
            resolve_engine(self.engine, policy)
        if not self.capacity_fractions:
            raise ValueError("need at least one capacity fraction")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.scenarios:
            from repro.scenarios.library import scenario_names

            known_scenarios = set(scenario_names())
            unknown = [
                name for name in self.scenarios if name not in known_scenarios
            ]
            if unknown:
                raise ValueError(
                    f"unknown scenarios {unknown}; "
                    f"choose from {sorted(known_scenarios)}"
                )

    @property
    def stream_keys(self) -> Tuple[Tuple[Optional[str], int], ...]:
        """(scenario or None, seed) pairs: one prepared stream each."""
        scenarios: Tuple[Optional[str], ...] = self.scenarios or (None,)
        return tuple(
            (scenario, seed) for scenario in scenarios for seed in self.seeds
        )

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return (
            len(self.policies)
            * len(self.capacity_fractions)
            * len(self.stream_keys)
        )


def log_spaced_fractions(
    count: int,
    low: float = DEFAULT_FRACTION_RANGE[0],
    high: float = DEFAULT_FRACTION_RANGE[1],
) -> Tuple[float, ...]:
    """``count`` log-spaced capacity fractions in ``[low, high]``."""
    if count < 1:
        raise ValueError("need at least one capacity point")
    if count == 1:
        return (low * (high / low) ** 0.5,)
    ratio = (high / low) ** (1.0 / (count - 1))
    return tuple(low * ratio**i for i in range(count))


#: One prepared stream's identity: (scenario name or None, seed).
StreamKey = Tuple[Optional[str], int]

#: One worker task: a (stream, policy) group and the capacity fractions
#: it covers -- the full fraction grid in one stack-engine scan, or a
#: single fraction per DES task.
SweepTask = Tuple[StreamKey, str, Tuple[float, ...], Optional[float], bool]


def cell_seed(seed: int, scenario: Optional[str], policy: str, fraction: float) -> int:
    """Deterministic per-cell RNG seed for stochastic policies.

    Every (stream, policy, capacity) cell must draw an independent
    victim stream -- the registry default would hand each cell the same
    ``seed=0`` RNG.  Hashing keeps the derivation stable across runs and
    processes (unlike ``hash()``, which PYTHONHASHSEED perturbs).
    """
    label = f"{scenario}:{seed}:{policy}:{fraction!r}"
    digest = hashlib.blake2s(label.encode()).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class SweepRow:
    """One replayed grid cell."""

    seed: int
    policy: str
    capacity_fraction: float
    capacity_bytes: int
    metrics: HSMMetrics
    #: Scenario the cell replayed, None for the classic workload grid.
    scenario: Optional[str] = None


@dataclass
class SweepResult:
    """Everything a sweep produced."""

    config: SweepConfig
    rows: List[SweepRow]
    prepare_seconds: float
    replay_seconds: float
    #: Referenced-store bytes per prepared stream key (scenario, seed).
    total_bytes: Dict["StreamKey", int] = field(default_factory=dict)
    #: Grid cells served by the one-pass stack engine vs per-cell DES.
    stack_cells: int = 0
    des_cells: int = 0

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock (stream preparation + parallel replay)."""
        return self.prepare_seconds + self.replay_seconds

    def aggregated(self) -> Dict[tuple, HSMMetrics]:
        """Seed-summed metrics per grid cell.

        Keys are ``(policy, capacity_fraction)`` for the classic
        single-workload grid and ``(scenario, policy, capacity_fraction)``
        when the sweep covered scenarios.  Every counter field sums
        across seeds; ``span_seconds`` is a duration, so the grid cell
        keeps the longest seed's span.
        """
        import dataclasses

        counter_names = [
            field.name
            for field in dataclasses.fields(HSMMetrics)
            if field.name != "span_seconds"
        ]
        merged: Dict[tuple, HSMMetrics] = {}
        for row in self.rows:
            key: tuple = (row.policy, row.capacity_fraction)
            if row.scenario is not None:
                key = (row.scenario,) + key
            bucket = merged.setdefault(key, HSMMetrics())
            for name in counter_names:
                setattr(bucket, name, getattr(bucket, name) + getattr(row.metrics, name))
            bucket.span_seconds = max(bucket.span_seconds, row.metrics.span_seconds)
        return merged

    def render(self) -> str:
        """The Section 6 comparison table over the whole grid."""
        from repro.analysis.render import TextTable

        scenarios = self.config.scenarios
        headers = ["policy", "capacity", "miss ratio", "capacity-miss",
                   "person-min/day"]
        if scenarios:
            headers.insert(0, "scenario")
        table = TextTable(
            headers,
            title=(
                f"Section 6 sweep: {len(self.config.policies)} policies x "
                f"{len(self.config.capacity_fractions)} capacities x "
                + (f"{len(scenarios)} scenarios x " if scenarios else "")
                + f"{len(self.config.seeds)} seeds (scale {self.config.scale})"
            ),
        )
        merged = self.aggregated()
        for scenario in scenarios or (None,):
            for policy in self.config.policies:
                for fraction in self.config.capacity_fractions:
                    key: tuple = (policy, fraction)
                    if scenario is not None:
                        key = (scenario,) + key
                    metrics = merged[key]
                    per_seed = (
                        metrics.person_minutes_per_day() / len(self.config.seeds)
                    )
                    cells = [
                        policy,
                        f"{fraction:.3%}",
                        f"{metrics.read_miss_ratio:.4f}",
                        f"{metrics.capacity_miss_ratio:.4f}",
                        f"{per_seed:.2f}",
                    ]
                    if scenario is not None:
                        cells.insert(0, scenario)
                    table.add_row(*cells)
        lines = [table.render()]
        lines.append(
            f"prepare {self.prepare_seconds:.1f}s + replay {self.replay_seconds:.1f}s "
            f"({self.config.n_cells} cells: {self.stack_cells} stack-engine + "
            f"{self.des_cells} DES, {self.config.workers} workers)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side

#: (scenario, seed) -> (store path, referenced-store bytes).  The
#: initializer payload is strings and ints only -- never arrays: each
#: worker memory-maps the shared shards on first use, so the OS page
#: cache holds one copy of every stream regardless of worker count.
_WORKER_STORES: Dict[StreamKey, Tuple[str, int]] = {}

#: Per-process memmapped batch lists, opened lazily per stream key.
_WORKER_BATCHES: Dict[StreamKey, List[EventBatch]] = {}


def _init_worker(stores: Dict[StreamKey, Tuple[str, int]]) -> None:
    global _WORKER_STORES, _WORKER_BATCHES
    _WORKER_STORES = stores
    _WORKER_BATCHES = {}


def _open_stream(key: StreamKey) -> Tuple[List[EventBatch], int]:
    """Memmapped batches (cached per process) for one stream's store."""
    path, total_bytes = _WORKER_STORES[key]
    batches = _WORKER_BATCHES.get(key)
    if batches is None:
        batches = TraceStore.open(path).batches()
        _WORKER_BATCHES[key] = batches
    return batches, total_bytes


def _run_cells(task: SweepTask) -> List[SweepRow]:
    key = task[0]
    return _run_cells_with({key: _open_stream(key)}, task)


def _run_cells_with(
    streams: Dict[StreamKey, Tuple[List[EventBatch], int]],
    task: SweepTask,
) -> List[SweepRow]:
    """Replay one task: every fraction of a stack group, or one DES cell."""
    key, policy, fractions, writeback_delay, use_stack = task
    scenario, seed = key
    batches, total_bytes = streams[key]
    capacities = [
        max(int(total_bytes * fraction), 1) for fraction in fractions
    ]
    if use_stack:
        rows = multi_capacity_replay(
            batches, policy, capacities, writeback_delay=writeback_delay
        )
    else:
        rows = [
            replay_policy(
                batches,
                policy,
                capacity,
                writeback_delay=writeback_delay,
                policy_seed=cell_seed(seed, scenario, policy, fraction),
            )
            for fraction, capacity in zip(fractions, capacities)
        ]
    return [
        SweepRow(
            seed=seed,
            policy=policy,
            capacity_fraction=fraction,
            capacity_bytes=capacity,
            metrics=metrics,
            scenario=scenario,
        )
        for fraction, capacity, metrics in zip(fractions, capacities, rows)
    ]


# ---------------------------------------------------------------------------
# Parent side


def _seed_config(config: SweepConfig, seed: int):
    from repro.workload.config import WorkloadConfig

    kwargs = {"scale": config.scale, "seed": seed, "fill_latencies": False}
    if config.duration_days is not None:
        kwargs["duration_seconds"] = config.duration_days * DAY
    return WorkloadConfig(**kwargs)


def _prepare_stores(
    config: SweepConfig, cache_dir: str
) -> Dict[StreamKey, Tuple[str, int]]:
    """Per-stream prepared stores: (scenario, seed) -> (path, bytes).

    Classic cells prepare the single-workload HSM stream
    (config-addressed); scenario cells compose the archetype's
    multi-tenant stream through the scenario cache (scenario-hash
    addressed, with per-component stores shared underneath).  The
    returned payload is what the pool initializer ships to workers, so
    it must stay plain strings and ints -- no ndarrays (the whole point
    of the store is that workers memmap instead of unpickling).
    """
    stores: Dict[StreamKey, Tuple[str, int]] = {}
    for key in config.stream_keys:
        scenario, seed = key
        if scenario is None:
            store = open_or_generate(
                _seed_config(config, seed),
                cache_dir,
                variant="hsm",
                chunk_size=config.chunk_size,
            )
        else:
            from repro.scenarios.cache import compose_cached
            from repro.scenarios.library import build_scenario

            spec = build_scenario(
                scenario,
                scale=config.scale,
                seed=seed,
                days=config.duration_days,
            )
            store = compose_cached(
                spec,
                cache_dir,
                variant="scenario-hsm",
                chunk_size=config.chunk_size,
            )
        total = store.total_bytes
        if total is None:
            raise ValueError(f"store {store.path} lacks referenced-store bytes")
        stores[key] = (str(store.path), total)
    return stores


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the full grid; parallel across cells when ``workers > 1``."""
    start = _time.perf_counter()
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    if config.cache_dir is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        cache_dir = tempdir.name
    else:
        cache_dir = config.cache_dir
    try:
        stores = _prepare_stores(config, cache_dir)
        prepared = _time.perf_counter()

        # One task per (stream, policy, fraction) DES cell, but a single
        # task covering the whole fraction grid when the stack engine
        # can scan it at every capacity at once.
        tasks: List[SweepTask] = []
        stack_cells = 0
        for key in config.stream_keys:
            for policy in config.policies:
                if resolve_engine(config.engine, policy):
                    tasks.append(
                        (key, policy, config.capacity_fractions,
                         config.writeback_delay, True)
                    )
                    stack_cells += len(config.capacity_fractions)
                else:
                    tasks.extend(
                        (key, policy, (fraction,),
                         config.writeback_delay, False)
                        for fraction in config.capacity_fractions
                    )
        if config.workers == 1:
            # Open in-process; memmapped batches stay locals so nothing
            # pins every seed's pages for the process lifetime.
            opened = {
                key: (TraceStore.open(path).batches(), total)
                for key, (path, total) in stores.items()
            }
            row_groups = [_run_cells_with(opened, task) for task in tasks]
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                ctx = multiprocessing.get_context("spawn")
            workers = min(config.workers, len(tasks))
            with ctx.Pool(
                processes=workers, initializer=_init_worker, initargs=(stores,)
            ) as pool:
                row_groups = pool.map(_run_cells, tasks, chunksize=1)
        rows = [row for group in row_groups for row in group]
        done = _time.perf_counter()

        return SweepResult(
            config=config,
            rows=rows,
            prepare_seconds=prepared - start,
            replay_seconds=done - prepared,
            total_bytes={key: total for key, (_, total) in stores.items()},
            stack_cells=stack_cells,
            des_cells=config.n_cells - stack_cells,
        )
    finally:
        if tempdir is not None:
            tempdir.cleanup()
