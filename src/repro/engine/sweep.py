"""The parallel experiment runner: seeds x capacities x policies.

One call fans the full Section 6 ablation grid out over worker processes.
The parent prepares each seed's replay stream once -- into an on-disk
columnar :class:`~repro.engine.store.TraceStore` -- and ships workers
only the store *paths*: each worker memory-maps the shared shards, so
the initializer payload carries no arrays and N workers share one copy
of every seed's stream through the page cache.  With a ``cache_dir``
the stores are content-addressed and persist across sweeps; without one
they live in a temporary directory for the run.  Replay is the
embarrassingly parallel part, so wall-clock scales with cores.

Execution is fault-tolerant (:mod:`repro.engine.resilience`): workers
run under supervision with per-task timeout and bounded retry, a
SIGKILLed fork re-spawns the pool and requeues only the lost tasks, and
exhausted retries degrade the result (``failed_cells`` annotated and
rendered) instead of raising.  With a ``run_dir`` every completed task
checkpoints into a content-addressed run directory, so an interrupted
multi-hour grid resumes at task granularity (``resume=True`` /
``repro sweep --resume``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import tempfile
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch
from repro.engine.replay import replay_policy
from repro.engine.resilience import (
    RetryPolicy,
    TaskOutcome,
    checkpoint_task,
    fault_point,
    load_checkpoints,
    prepare_run_dir,
    run_supervised,
    sigterm_as_interrupt,
    sweep_config_hash,
    write_run_summary,
)
from repro.engine.stackdist import multi_capacity_replay, resolve_engine
from repro.engine.store import TraceStore, open_or_generate
from repro.hsm.metrics import HSMMetrics
from repro.util.units import DAY

#: Capacity range (fractions of the referenced store) a point-count sweep
#: spans: around the paper's ~1.5 % managed-disk operating point.
DEFAULT_FRACTION_RANGE = (0.005, 0.08)


@dataclass(frozen=True)
class SweepConfig:
    """The full grid one sweep covers."""

    policies: Tuple[str, ...]
    capacity_fractions: Tuple[float, ...]
    seeds: Tuple[int, ...] = (0,)
    scale: float = 0.02
    duration_days: Optional[float] = None
    writeback_delay: Optional[float] = 4 * 3600.0
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Persistent content-addressed store cache; None uses a per-run
    #: temporary directory (prepared streams still go through the store
    #: so workers memmap instead of unpickling).
    cache_dir: Optional[str] = None
    #: Built-in scenario archetypes to sweep policies against.  Empty
    #: means the classic single-workload grid; otherwise the grid is
    #: scenarios x seeds x policies x capacities, each scenario's
    #: composed HSM stream prepared once per seed (content-addressed by
    #: scenario hash) and replayed against every (policy, capacity) cell.
    scenarios: Tuple[str, ...] = ()
    #: Replay machinery: ``auto`` collapses all capacity cells of an
    #: inclusion-preserving (policy, stream) group into one stack-engine
    #: scan and runs the rest per-cell through the DES; ``des`` forces
    #: per-cell DES everywhere; ``stack`` insists on the stack engine
    #: and rejects policies it cannot replay.  Both engines are exact.
    engine: str = "auto"
    #: Retries per task after the first attempt (0 disables retries).
    max_retries: int = 2
    #: Seconds an in-flight task may run before its pool is recycled and
    #: the task retried; None disables the deadline.
    task_timeout: Optional[float] = None
    #: Exponential-backoff base delay between retries, seconds.
    retry_backoff: float = 0.5
    #: Runs root for task-granular checkpoints; None disables them.  The
    #: run directory is ``<run_dir>/sweep-<config-hash>`` (the hash
    #: excludes runtime knobs like workers -- see
    #: :func:`repro.engine.resilience.sweep_config_hash`).
    run_dir: Optional[str] = None
    #: Skip tasks already checkpointed in the run directory (requires
    #: ``run_dir``): the Ctrl-C-then-rerun recovery path.
    resume: bool = False

    def __post_init__(self) -> None:
        from repro.migration.registry import available_policies

        if not self.policies:
            raise ValueError("need at least one policy")
        known = set(available_policies()) | {"opt"}
        unknown = [name for name in self.policies if name not in known]
        if unknown:
            raise ValueError(
                f"unknown policies {unknown}; choose from {sorted(known)}"
            )
        for policy in self.policies:
            # "stack" must fail fast on a non-stack-replayable policy.
            resolve_engine(self.engine, policy)
        if not self.capacity_fractions:
            raise ValueError("need at least one capacity fraction")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.resume and self.run_dir is None:
            raise ValueError("resume requires a run_dir to resume from")
        if self.scenarios:
            from repro.scenarios.library import scenario_names

            known_scenarios = set(scenario_names())
            unknown = [
                name for name in self.scenarios if name not in known_scenarios
            ]
            if unknown:
                raise ValueError(
                    f"unknown scenarios {unknown}; "
                    f"choose from {sorted(known_scenarios)}"
                )

    @property
    def stream_keys(self) -> Tuple[Tuple[Optional[str], int], ...]:
        """(scenario or None, seed) pairs: one prepared stream each."""
        scenarios: Tuple[Optional[str], ...] = self.scenarios or (None,)
        return tuple(
            (scenario, seed) for scenario in scenarios for seed in self.seeds
        )

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return (
            len(self.policies)
            * len(self.capacity_fractions)
            * len(self.stream_keys)
        )


def log_spaced_fractions(
    count: int,
    low: float = DEFAULT_FRACTION_RANGE[0],
    high: float = DEFAULT_FRACTION_RANGE[1],
) -> Tuple[float, ...]:
    """``count`` log-spaced capacity fractions in ``[low, high]``."""
    if count < 1:
        raise ValueError("need at least one capacity point")
    if count == 1:
        return (low * (high / low) ** 0.5,)
    ratio = (high / low) ** (1.0 / (count - 1))
    return tuple(low * ratio**i for i in range(count))


#: One prepared stream's identity: (scenario name or None, seed).
StreamKey = Tuple[Optional[str], int]

#: One worker task: a (stream, policy) group and the capacity fractions
#: it covers -- the full fraction grid in one stack-engine scan, or a
#: single fraction per DES task.
SweepTask = Tuple[StreamKey, str, Tuple[float, ...], Optional[float], bool]


def cell_seed(seed: int, scenario: Optional[str], policy: str, fraction: float) -> int:
    """Deterministic per-cell RNG seed for stochastic policies.

    Every (stream, policy, capacity) cell must draw an independent
    victim stream -- the registry default would hand each cell the same
    ``seed=0`` RNG.  Hashing keeps the derivation stable across runs and
    processes (unlike ``hash()``, which PYTHONHASHSEED perturbs).
    """
    label = f"{scenario}:{seed}:{policy}:{fraction!r}"
    digest = hashlib.blake2s(label.encode()).digest()
    return int.from_bytes(digest[:4], "little")


def task_payload(task: SweepTask) -> dict:
    """One task's identity as a JSON-stable dict (the checkpoint key)."""
    key, policy, fractions, writeback_delay, use_stack = task
    scenario, seed = key
    return {
        "scenario": scenario,
        "seed": seed,
        "policy": policy,
        "fractions": list(fractions),
        "writeback_delay": writeback_delay,
        "use_stack": use_stack,
    }


def task_key(task: SweepTask) -> str:
    """Content hash of one task: its checkpoint-record filename."""
    canon = json.dumps(task_payload(task), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2s(canon.encode("utf-8")).hexdigest()[:20]


def task_label(task: SweepTask) -> str:
    """Human-readable task name (fault-point label, retry jitter key)."""
    key, policy, fractions, _, _ = task
    scenario, seed = key
    frac = ",".join(f"{fraction:g}" for fraction in fractions)
    return f"{scenario or 'classic'}:s{seed}:{policy}:{frac}"


@dataclass(frozen=True)
class SweepRow:
    """One replayed grid cell."""

    seed: int
    policy: str
    capacity_fraction: float
    capacity_bytes: int
    metrics: HSMMetrics
    #: Scenario the cell replayed, None for the classic workload grid.
    scenario: Optional[str] = None
    #: Executions its task consumed (1 = first try succeeded).
    attempts: int = 1
    #: ``ok`` | ``retried`` -- degraded cells have no row at all; they
    #: appear in :attr:`SweepResult.failed_cells` instead.
    status: str = "ok"


@dataclass(frozen=True)
class FailedCell:
    """One grid cell whose task exhausted its retries."""

    seed: int
    policy: str
    capacity_fraction: float
    scenario: Optional[str]
    attempts: int
    error: str


def row_to_dict(row: SweepRow) -> dict:
    """A SweepRow as a JSON-safe dict (checkpoint record payload)."""
    return dataclasses.asdict(row)


def row_from_dict(data: dict) -> SweepRow:
    """Rebuild a SweepRow from its checkpoint record, bit-identically.

    JSON floats round-trip exactly (``repr`` shortest-float), so a
    resumed row equals the row the original run computed.
    """
    return SweepRow(
        seed=int(data["seed"]),
        policy=data["policy"],
        capacity_fraction=float(data["capacity_fraction"]),
        capacity_bytes=int(data["capacity_bytes"]),
        metrics=HSMMetrics(**data["metrics"]),
        scenario=data.get("scenario"),
        attempts=int(data.get("attempts", 1)),
        status=data.get("status", "ok"),
    )


@dataclass
class SweepResult:
    """Everything a sweep produced."""

    config: SweepConfig
    rows: List[SweepRow]
    prepare_seconds: float
    replay_seconds: float
    #: Referenced-store bytes per prepared stream key (scenario, seed).
    total_bytes: Dict["StreamKey", int] = field(default_factory=dict)
    #: Grid cells served by the one-pass stack engine vs per-cell DES.
    stack_cells: int = 0
    des_cells: int = 0
    #: Cells whose task exhausted its retries (degraded, not raised).
    failed_cells: List[FailedCell] = field(default_factory=list)
    #: Tasks executed this run / restored from checkpoints / failed.
    tasks_executed: int = 0
    tasks_resumed: int = 0
    tasks_failed: int = 0
    #: Extra attempts consumed beyond each task's first try.
    retries: int = 0
    #: Checkpoint run directory (None when checkpointing was off).
    run_path: Optional[str] = None

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock (stream preparation + parallel replay)."""
        return self.prepare_seconds + self.replay_seconds

    def aggregated(self) -> Dict[tuple, HSMMetrics]:
        """Seed-summed metrics per grid cell.

        Keys are ``(policy, capacity_fraction)`` for the classic
        single-workload grid and ``(scenario, policy, capacity_fraction)``
        when the sweep covered scenarios.  Every counter field sums
        across seeds; ``span_seconds`` is a duration, so the grid cell
        keeps the longest seed's span.  Failed cells contribute nothing:
        a cell with every seed failed is absent from the result.
        """
        counter_names = [
            field.name
            for field in dataclasses.fields(HSMMetrics)
            if field.name != "span_seconds"
        ]
        merged: Dict[tuple, HSMMetrics] = {}
        for row in self.rows:
            key: tuple = (row.policy, row.capacity_fraction)
            if row.scenario is not None:
                key = (row.scenario,) + key
            bucket = merged.setdefault(key, HSMMetrics())
            for name in counter_names:
                setattr(bucket, name, getattr(bucket, name) + getattr(row.metrics, name))
            bucket.span_seconds = max(bucket.span_seconds, row.metrics.span_seconds)
        return merged

    def _cell_health(self) -> Tuple[Dict[tuple, List[str]], Dict[tuple, int]]:
        """Row statuses and failed-seed counts per (scenario?, policy, frac)."""
        statuses: Dict[tuple, List[str]] = {}
        for row in self.rows:
            key: tuple = (row.policy, row.capacity_fraction)
            if row.scenario is not None:
                key = (row.scenario,) + key
            statuses.setdefault(key, []).append(row.status)
        failed: Dict[tuple, int] = {}
        for cell in self.failed_cells:
            key = (cell.policy, cell.capacity_fraction)
            if cell.scenario is not None:
                key = (cell.scenario,) + key
            failed[key] = failed.get(key, 0) + 1
        return statuses, failed

    def render(self) -> str:
        """The Section 6 comparison table over the whole grid."""
        from repro.analysis.render import TextTable

        scenarios = self.config.scenarios
        headers = ["policy", "capacity", "miss ratio", "capacity-miss",
                   "person-min/day", "status"]
        if scenarios:
            headers.insert(0, "scenario")
        table = TextTable(
            headers,
            title=(
                f"Section 6 sweep: {len(self.config.policies)} policies x "
                f"{len(self.config.capacity_fractions)} capacities x "
                + (f"{len(scenarios)} scenarios x " if scenarios else "")
                + f"{len(self.config.seeds)} seeds (scale {self.config.scale})"
            ),
        )
        merged = self.aggregated()
        statuses, failed = self._cell_health()
        n_seeds = len(self.config.seeds)
        for scenario in scenarios or (None,):
            for policy in self.config.policies:
                for fraction in self.config.capacity_fractions:
                    key: tuple = (policy, fraction)
                    if scenario is not None:
                        key = (scenario,) + key
                    n_failed = failed.get(key, 0)
                    if n_failed:
                        status = f"failed({n_failed}/{n_seeds})"
                    elif "retried" in statuses.get(key, ()):
                        status = "retried"
                    else:
                        status = "ok"
                    metrics = merged.get(key)
                    if metrics is None:
                        cells = [policy, f"{fraction:.3%}", "--", "--", "--",
                                 status]
                    else:
                        n_ok = max(n_seeds - n_failed, 1)
                        per_seed = metrics.person_minutes_per_day() / n_ok
                        cells = [
                            policy,
                            f"{fraction:.3%}",
                            f"{metrics.read_miss_ratio:.4f}",
                            f"{metrics.capacity_miss_ratio:.4f}",
                            f"{per_seed:.2f}",
                            status,
                        ]
                    if scenario is not None:
                        cells.insert(0, scenario)
                    table.add_row(*cells)
        lines = [table.render()]
        lines.append(
            f"prepare {self.prepare_seconds:.1f}s + replay {self.replay_seconds:.1f}s "
            f"({self.config.n_cells} cells: {self.stack_cells} stack-engine + "
            f"{self.des_cells} DES, {self.config.workers} workers)"
        )
        if self.tasks_resumed or self.retries or self.failed_cells:
            n_tasks = self.tasks_executed + self.tasks_resumed + self.tasks_failed
            lines.append(
                f"resilience: {self.tasks_executed} tasks run + "
                f"{self.tasks_resumed} resumed from checkpoints + "
                f"{self.tasks_failed} failed (of {n_tasks}), "
                f"{self.retries} retries"
            )
        if self.failed_cells:
            lines.append(
                f"WARNING: {len(self.failed_cells)} cells failed after "
                f"retries were exhausted (see status column)"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side

#: (scenario, seed) -> (store path, referenced-store bytes).  The
#: initializer payload is strings and ints only -- never arrays: each
#: worker memory-maps the shared shards on first use, so the OS page
#: cache holds one copy of every stream regardless of worker count.
_WORKER_STORES: Dict[StreamKey, Tuple[str, int]] = {}

#: Per-process memmapped batch lists, opened lazily per stream key.
_WORKER_BATCHES: Dict[StreamKey, List[EventBatch]] = {}


def _init_worker(stores: Dict[StreamKey, Tuple[str, int]]) -> None:
    global _WORKER_STORES, _WORKER_BATCHES
    _WORKER_STORES = stores
    _WORKER_BATCHES = {}


def _open_stream(key: StreamKey) -> Tuple[List[EventBatch], int]:
    """Memmapped batches (cached per process) for one stream's store."""
    path, total_bytes = _WORKER_STORES[key]
    batches = _WORKER_BATCHES.get(key)
    if batches is None:
        batches = TraceStore.open(path).batches()
        _WORKER_BATCHES[key] = batches
    return batches, total_bytes


def _run_cells(task: SweepTask) -> List[SweepRow]:
    fault_point("worker-task", task_label(task))
    key = task[0]
    return _run_cells_with({key: _open_stream(key)}, task)


def _run_cells_with(
    streams: Dict[StreamKey, Tuple[List[EventBatch], int]],
    task: SweepTask,
) -> List[SweepRow]:
    """Replay one task: every fraction of a stack group, or one DES cell."""
    key, policy, fractions, writeback_delay, use_stack = task
    scenario, seed = key
    batches, total_bytes = streams[key]
    capacities = [
        max(int(total_bytes * fraction), 1) for fraction in fractions
    ]
    if use_stack:
        rows = multi_capacity_replay(
            batches, policy, capacities, writeback_delay=writeback_delay
        )
    else:
        rows = [
            replay_policy(
                batches,
                policy,
                capacity,
                writeback_delay=writeback_delay,
                policy_seed=cell_seed(seed, scenario, policy, fraction),
            )
            for fraction, capacity in zip(fractions, capacities)
        ]
    return [
        SweepRow(
            seed=seed,
            policy=policy,
            capacity_fraction=fraction,
            capacity_bytes=capacity,
            metrics=metrics,
            scenario=scenario,
        )
        for fraction, capacity, metrics in zip(fractions, capacities, rows)
    ]


# ---------------------------------------------------------------------------
# Parent side


def _seed_config(config: SweepConfig, seed: int):
    from repro.workload.config import WorkloadConfig

    kwargs = {"scale": config.scale, "seed": seed, "fill_latencies": False}
    if config.duration_days is not None:
        kwargs["duration_seconds"] = config.duration_days * DAY
    return WorkloadConfig(**kwargs)


def _prepare_stores(
    config: SweepConfig, cache_dir: str
) -> Dict[StreamKey, Tuple[str, int]]:
    """Per-stream prepared stores: (scenario, seed) -> (path, bytes).

    Classic cells prepare the single-workload HSM stream
    (config-addressed); scenario cells compose the archetype's
    multi-tenant stream through the scenario cache (scenario-hash
    addressed, with per-component stores shared underneath).  The
    returned payload is what the pool initializer ships to workers, so
    it must stay plain strings and ints -- no ndarrays (the whole point
    of the store is that workers memmap instead of unpickling).

    Cached slots are validated on the way in (shards present at their
    recorded sizes); a damaged slot is quarantined and regenerated, so
    a flipped bit or truncated shard degrades to a regeneration instead
    of a mid-sweep crash.
    """
    stores: Dict[StreamKey, Tuple[str, int]] = {}
    for key in config.stream_keys:
        scenario, seed = key
        if scenario is None:
            store = open_or_generate(
                _seed_config(config, seed),
                cache_dir,
                variant="hsm",
                chunk_size=config.chunk_size,
            )
        else:
            from repro.scenarios.cache import compose_cached
            from repro.scenarios.library import build_scenario

            spec = build_scenario(
                scenario,
                scale=config.scale,
                seed=seed,
                days=config.duration_days,
            )
            store = compose_cached(
                spec,
                cache_dir,
                variant="scenario-hsm",
                chunk_size=config.chunk_size,
            )
        total = store.total_bytes
        if total is None:
            raise ValueError(f"store {store.path} lacks referenced-store bytes")
        stores[key] = (str(store.path), total)
    return stores


def _build_tasks(config: SweepConfig) -> Tuple[List[SweepTask], int]:
    """The task list: one per DES cell, one per stack-engine group."""
    tasks: List[SweepTask] = []
    stack_cells = 0
    for key in config.stream_keys:
        for policy in config.policies:
            if resolve_engine(config.engine, policy):
                tasks.append(
                    (key, policy, config.capacity_fractions,
                     config.writeback_delay, True)
                )
                stack_cells += len(config.capacity_fractions)
            else:
                tasks.extend(
                    (key, policy, (fraction,),
                     config.writeback_delay, False)
                    for fraction in config.capacity_fractions
                )
    return tasks, stack_cells


def _summary_payload(
    config: SweepConfig, *, status: str, n_tasks: int, executed: int,
    resumed: int, failed_tasks: int, retries: int,
    failed_cells: List[FailedCell], n_rows: int,
    prepare_seconds: float, replay_seconds: float,
) -> dict:
    return {
        "config_hash": sweep_config_hash(config),
        "config": dataclasses.asdict(config),
        "status": status,
        "n_tasks": n_tasks,
        "n_cells": config.n_cells,
        "tasks_executed": executed,
        "tasks_resumed": resumed,
        "tasks_failed": failed_tasks,
        "retries": retries,
        "rows": n_rows,
        "failed_cells": [dataclasses.asdict(cell) for cell in failed_cells],
        "prepare_seconds": prepare_seconds,
        "replay_seconds": replay_seconds,
        "workers": config.workers,
    }


def _write_sweep_record(
    config: SweepConfig, run_dir: Path, result: SweepResult
) -> None:
    """Emit the registry's ``run_record.json`` next to the v1 artifacts.

    The record is the run's registry identity (``repro runs index``
    folds it into ``registry.sqlite``); the v1 files stay authoritative
    for resume.  ``created_at`` comes from ``config.json`` so resuming
    a run updates the same logical run rather than minting a new one.
    Registry imports stay local: :mod:`repro.registry.record` imports
    this package's sibling :mod:`repro.engine.resilience`.
    """
    from repro.registry.record import (
        RunRecord,
        default_code_versions,
        sweep_rows_to_record_rows,
        write_run_record,
    )

    created_at = None
    try:
        with open(run_dir / "config.json", "r", encoding="utf-8") as handle:
            created_at = json.load(handle).get("created_at")
    except (OSError, json.JSONDecodeError, AttributeError):
        pass
    record = RunRecord(
        kind="sweep",
        config=dataclasses.asdict(config),
        config_hash=sweep_config_hash(config),
        rows=sweep_rows_to_record_rows(
            [row_to_dict(row) for row in result.rows]
        ),
        metrics={
            "prepare_seconds": result.prepare_seconds,
            "replay_seconds": result.replay_seconds,
            "stack_cells": result.stack_cells,
            "des_cells": result.des_cells,
            "retries": result.retries,
            "tasks_executed": result.tasks_executed,
            "tasks_resumed": result.tasks_resumed,
            "tasks_failed": result.tasks_failed,
        },
        status="degraded" if result.failed_cells else "complete",
        created_at=created_at,
        wall_seconds=result.elapsed_seconds,
        code_versions=default_code_versions(),
    )
    write_run_record(run_dir, record)


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the full grid; parallel across cells when ``workers > 1``.

    Never raises for worker faults: crashed, hung, or repeatedly failing
    tasks retry under the config's :class:`RetryPolicy` budget and then
    degrade into ``failed_cells``.  ``KeyboardInterrupt`` still
    propagates -- after terminating the pool, cleaning the temp cache
    dir, and (with a ``run_dir``) writing an ``interrupted`` summary, so
    a rerun with ``resume=True`` recovers at task granularity.  SIGTERM
    takes the same path (via :func:`sigterm_as_interrupt`), so an
    orchestrator stopping the process gets the same clean checkpoint as
    a Ctrl-C.
    """
    with sigterm_as_interrupt():
        return _run_sweep(config)


def _run_sweep(config: SweepConfig) -> SweepResult:
    start = _time.perf_counter()
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    if config.cache_dir is None:
        tempdir = tempfile.TemporaryDirectory(
            prefix="repro-sweep-", ignore_cleanup_errors=True
        )
        cache_dir = tempdir.name
    else:
        cache_dir = config.cache_dir

    run_dir: Optional[Path] = None
    if config.run_dir is not None:
        run_dir = prepare_run_dir(config.run_dir, config)
    checkpoints = (
        load_checkpoints(run_dir)
        if run_dir is not None and config.resume
        else {}
    )

    # Mutated by the per-task completion hook below; read by both the
    # success path and the KeyboardInterrupt summary.
    results: Dict[int, List[SweepRow]] = {}
    failed_cells: List[FailedCell] = []
    counters = {"executed": 0, "failed": 0, "retries": 0}
    tasks: List[SweepTask] = []
    prepared = start

    try:
        stores = _prepare_stores(config, cache_dir)
        prepared = _time.perf_counter()

        tasks, stack_cells = _build_tasks(config)
        keys = [task_key(task) for task in tasks]
        labels = [task_label(task) for task in tasks]

        # Resume: restore rows for checkpointed tasks, run the rest.
        todo: List[int] = []
        for index, key in enumerate(keys):
            record = checkpoints.get(key)
            if record is not None and record.get("status") in ("ok", "retried"):
                results[index] = [row_from_dict(r) for r in record["rows"]]
            else:
                todo.append(index)
        resumed = len(tasks) - len(todo)

        retry = RetryPolicy(
            max_retries=config.max_retries,
            task_timeout=config.task_timeout,
            backoff=config.retry_backoff,
        )

        def on_complete(outcome: TaskOutcome) -> None:
            index = todo[outcome.index]
            counters["retries"] += outcome.attempts - 1
            if outcome.status == "failed":
                counters["failed"] += 1
                (scenario, seed), policy, fractions, _, _ = tasks[index]
                failed_cells.extend(
                    FailedCell(
                        seed=seed, policy=policy, capacity_fraction=fraction,
                        scenario=scenario, attempts=outcome.attempts,
                        error=outcome.error or "",
                    )
                    for fraction in fractions
                )
            else:
                counters["executed"] += 1
                results[index] = [
                    dataclasses.replace(
                        row, attempts=outcome.attempts, status=outcome.status
                    )
                    for row in outcome.result
                ]
            if run_dir is not None:
                checkpoint_task(run_dir, keys[index], {
                    "task": task_payload(tasks[index]),
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error": outcome.error,
                    "elapsed_seconds": outcome.elapsed_seconds,
                    "rows": [row_to_dict(row) for row in results.get(index, [])],
                })
                fault_point("parent-checkpoint", labels[index])

        if config.workers == 1:
            # Open in-process; memmapped batches stay locals so nothing
            # pins every seed's pages for the process lifetime.
            opened = {
                key: (TraceStore.open(path).batches(), total)
                for key, (path, total) in stores.items()
            }

            def serial_worker(task: SweepTask) -> List[SweepRow]:
                fault_point("worker-task", task_label(task))
                return _run_cells_with(opened, task)

            run_supervised(
                serial_worker,
                [tasks[index] for index in todo],
                workers=1,
                retry=retry,
                labels=[labels[index] for index in todo],
                on_complete=on_complete,
            )
        else:
            run_supervised(
                _run_cells,
                [tasks[index] for index in todo],
                workers=config.workers,
                retry=retry,
                labels=[labels[index] for index in todo],
                initializer=_init_worker,
                initargs=(stores,),
                on_complete=on_complete,
            )

        rows = [
            row
            for index in range(len(tasks))
            for row in results.get(index, [])
        ]
        done = _time.perf_counter()

        result = SweepResult(
            config=config,
            rows=rows,
            prepare_seconds=prepared - start,
            replay_seconds=done - prepared,
            total_bytes={key: total for key, (_, total) in stores.items()},
            stack_cells=stack_cells,
            des_cells=config.n_cells - stack_cells,
            failed_cells=failed_cells,
            tasks_executed=counters["executed"],
            tasks_resumed=resumed,
            tasks_failed=counters["failed"],
            retries=counters["retries"],
            run_path=str(run_dir) if run_dir is not None else None,
        )
        if run_dir is not None:
            write_run_summary(run_dir, _summary_payload(
                config,
                status="degraded" if failed_cells else "complete",
                n_tasks=len(tasks),
                executed=counters["executed"],
                resumed=resumed,
                failed_tasks=counters["failed"],
                retries=counters["retries"],
                failed_cells=failed_cells,
                n_rows=len(rows),
                prepare_seconds=result.prepare_seconds,
                replay_seconds=result.replay_seconds,
            ))
            _write_sweep_record(config, run_dir, result)
        return result
    except KeyboardInterrupt:
        # The supervisor already terminated (not joined) its pool on the
        # way out; leave a durable partial-run record so a rerun with
        # resume=True picks up from the checkpointed tasks.
        if run_dir is not None:
            write_run_summary(run_dir, _summary_payload(
                config,
                status="interrupted",
                n_tasks=len(tasks),
                executed=counters["executed"],
                resumed=len(results) - counters["executed"],
                failed_tasks=counters["failed"],
                retries=counters["retries"],
                failed_cells=failed_cells,
                n_rows=sum(len(rows) for rows in results.values()),
                prepare_seconds=prepared - start,
                replay_seconds=_time.perf_counter() - prepared,
            ))
        raise
    finally:
        if tempdir is not None:
            tempdir.cleanup()
