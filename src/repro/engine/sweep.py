"""The parallel experiment runner: seeds x capacities x policies.

One call fans the full Section 6 ablation grid out over worker processes.
The parent prepares each seed's replay stream once -- into an on-disk
columnar :class:`~repro.engine.store.TraceStore` -- and ships workers
only the store *paths*: each worker memory-maps the shared shards, so
the initializer payload carries no arrays and N workers share one copy
of every seed's stream through the page cache.  With a ``cache_dir``
the stores are content-addressed and persist across sweeps; without one
they live in a temporary directory for the run.  Replay is the
embarrassingly parallel part, so wall-clock scales with cores.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import DEFAULT_CHUNK_SIZE, EventBatch
from repro.engine.replay import replay_policy
from repro.engine.store import TraceStore, open_or_generate
from repro.hsm.metrics import HSMMetrics
from repro.util.units import DAY

#: Capacity range (fractions of the referenced store) a point-count sweep
#: spans: around the paper's ~1.5 % managed-disk operating point.
DEFAULT_FRACTION_RANGE = (0.005, 0.08)


@dataclass(frozen=True)
class SweepConfig:
    """The full grid one sweep covers."""

    policies: Tuple[str, ...]
    capacity_fractions: Tuple[float, ...]
    seeds: Tuple[int, ...] = (0,)
    scale: float = 0.02
    duration_days: Optional[float] = None
    writeback_delay: Optional[float] = 4 * 3600.0
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Persistent content-addressed store cache; None uses a per-run
    #: temporary directory (prepared streams still go through the store
    #: so workers memmap instead of unpickling).
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.migration.registry import available_policies

        if not self.policies:
            raise ValueError("need at least one policy")
        known = set(available_policies()) | {"opt"}
        unknown = [name for name in self.policies if name not in known]
        if unknown:
            raise ValueError(
                f"unknown policies {unknown}; choose from {sorted(known)}"
            )
        if not self.capacity_fractions:
            raise ValueError("need at least one capacity fraction")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return len(self.policies) * len(self.capacity_fractions) * len(self.seeds)


def log_spaced_fractions(
    count: int,
    low: float = DEFAULT_FRACTION_RANGE[0],
    high: float = DEFAULT_FRACTION_RANGE[1],
) -> Tuple[float, ...]:
    """``count`` log-spaced capacity fractions in ``[low, high]``."""
    if count < 1:
        raise ValueError("need at least one capacity point")
    if count == 1:
        return (low * (high / low) ** 0.5,)
    ratio = (high / low) ** (1.0 / (count - 1))
    return tuple(low * ratio**i for i in range(count))


@dataclass(frozen=True)
class SweepRow:
    """One replayed grid cell."""

    seed: int
    policy: str
    capacity_fraction: float
    capacity_bytes: int
    metrics: HSMMetrics


@dataclass
class SweepResult:
    """Everything a sweep produced."""

    config: SweepConfig
    rows: List[SweepRow]
    prepare_seconds: float
    replay_seconds: float
    total_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock (stream preparation + parallel replay)."""
        return self.prepare_seconds + self.replay_seconds

    def aggregated(self) -> Dict[Tuple[str, float], HSMMetrics]:
        """Seed-summed metrics per (policy, capacity fraction) cell.

        Every counter field sums across seeds; ``span_seconds`` is a
        duration, so the grid cell keeps the longest seed's span.
        """
        import dataclasses

        counter_names = [
            field.name
            for field in dataclasses.fields(HSMMetrics)
            if field.name != "span_seconds"
        ]
        merged: Dict[Tuple[str, float], HSMMetrics] = {}
        for row in self.rows:
            key = (row.policy, row.capacity_fraction)
            bucket = merged.setdefault(key, HSMMetrics())
            for name in counter_names:
                setattr(bucket, name, getattr(bucket, name) + getattr(row.metrics, name))
            bucket.span_seconds = max(bucket.span_seconds, row.metrics.span_seconds)
        return merged

    def render(self) -> str:
        """The Section 6 comparison table over the whole grid."""
        from repro.analysis.render import TextTable

        table = TextTable(
            ["policy", "capacity", "miss ratio", "capacity-miss", "person-min/day"],
            title=(
                f"Section 6 sweep: {len(self.config.policies)} policies x "
                f"{len(self.config.capacity_fractions)} capacities x "
                f"{len(self.config.seeds)} seeds (scale {self.config.scale})"
            ),
        )
        merged = self.aggregated()
        for policy in self.config.policies:
            for fraction in self.config.capacity_fractions:
                metrics = merged[(policy, fraction)]
                per_seed = metrics.person_minutes_per_day() / len(self.config.seeds)
                table.add_row(
                    policy,
                    f"{fraction:.3%}",
                    f"{metrics.read_miss_ratio:.4f}",
                    f"{metrics.capacity_miss_ratio:.4f}",
                    f"{per_seed:.2f}",
                )
        lines = [table.render()]
        lines.append(
            f"prepare {self.prepare_seconds:.1f}s + replay {self.replay_seconds:.1f}s "
            f"({self.config.n_cells} cells, {self.config.workers} workers)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side

#: seed -> (store path, referenced-store bytes).  The initializer payload
#: is strings and ints only -- never arrays: each worker memory-maps the
#: shared shards on first use, so the OS page cache holds one copy of
#: every seed's stream regardless of worker count.
_WORKER_STORES: Dict[int, Tuple[str, int]] = {}

#: Per-process memmapped batch lists, opened lazily per seed.
_WORKER_BATCHES: Dict[int, List[EventBatch]] = {}


def _init_worker(stores: Dict[int, Tuple[str, int]]) -> None:
    global _WORKER_STORES, _WORKER_BATCHES
    _WORKER_STORES = stores
    _WORKER_BATCHES = {}


def _open_stream(seed: int) -> Tuple[List[EventBatch], int]:
    """Memmapped batches (cached per process) for one seed's store."""
    path, total_bytes = _WORKER_STORES[seed]
    batches = _WORKER_BATCHES.get(seed)
    if batches is None:
        batches = TraceStore.open(path).batches()
        _WORKER_BATCHES[seed] = batches
    return batches, total_bytes


def _run_cell(task: Tuple[int, str, float, Optional[float]]) -> SweepRow:
    seed, _, _, _ = task
    return _run_cell_with({seed: _open_stream(seed)}, task)


def _run_cell_with(
    streams: Dict[int, Tuple[List[EventBatch], int]],
    task: Tuple[int, str, float, Optional[float]],
) -> SweepRow:
    seed, policy, fraction, writeback_delay = task
    batches, total_bytes = streams[seed]
    capacity = max(int(total_bytes * fraction), 1)
    metrics = replay_policy(
        batches, policy, capacity, writeback_delay=writeback_delay
    )
    return SweepRow(
        seed=seed,
        policy=policy,
        capacity_fraction=fraction,
        capacity_bytes=capacity,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Parent side


def _seed_config(config: SweepConfig, seed: int):
    from repro.workload.config import WorkloadConfig

    kwargs = {"scale": config.scale, "seed": seed, "fill_latencies": False}
    if config.duration_days is not None:
        kwargs["duration_seconds"] = config.duration_days * DAY
    return WorkloadConfig(**kwargs)


def _prepare_stores(config: SweepConfig, cache_dir: str) -> Dict[int, Tuple[str, int]]:
    """Per-seed prepared-stream stores: seed -> (path, referenced bytes).

    The returned payload is what the pool initializer ships to workers,
    so it must stay plain strings and ints -- no ndarrays (the whole
    point of the store is that workers memmap instead of unpickling).
    """
    stores: Dict[int, Tuple[str, int]] = {}
    for seed in config.seeds:
        store = open_or_generate(
            _seed_config(config, seed),
            cache_dir,
            variant="hsm",
            chunk_size=config.chunk_size,
        )
        total = store.total_bytes
        if total is None:
            raise ValueError(f"store {store.path} lacks referenced-store bytes")
        stores[seed] = (str(store.path), total)
    return stores


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the full grid; parallel across cells when ``workers > 1``."""
    start = _time.perf_counter()
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    if config.cache_dir is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        cache_dir = tempdir.name
    else:
        cache_dir = config.cache_dir
    try:
        stores = _prepare_stores(config, cache_dir)
        prepared = _time.perf_counter()

        tasks = [
            (seed, policy, fraction, config.writeback_delay)
            for seed in config.seeds
            for policy in config.policies
            for fraction in config.capacity_fractions
        ]
        if config.workers == 1:
            # Open in-process; memmapped batches stay locals so nothing
            # pins every seed's pages for the process lifetime.
            opened = {
                seed: (TraceStore.open(path).batches(), total)
                for seed, (path, total) in stores.items()
            }
            rows = [_run_cell_with(opened, task) for task in tasks]
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                ctx = multiprocessing.get_context("spawn")
            workers = min(config.workers, len(tasks))
            with ctx.Pool(
                processes=workers, initializer=_init_worker, initargs=(stores,)
            ) as pool:
                rows = pool.map(_run_cell, tasks, chunksize=1)
        done = _time.perf_counter()

        return SweepResult(
            config=config,
            rows=rows,
            prepare_seconds=prepared - start,
            replay_seconds=done - prepared,
            total_bytes={seed: total for seed, (_, total) in stores.items()},
        )
    finally:
        if tempdir is not None:
            tempdir.cleanup()
