"""Single-pass multi-capacity replay: the Mattson-style stack engine.

The Section 6 sweep replays the same prepared stream once per (policy,
capacity) cell, so its cost is multiplicative in capacity points.  For
the policies whose victim ordering reduces to a *static per-file key* --
LRU (last access), FIFO (insertion time), MRU (negated last access) and
the two size policies -- every capacity's exact victim sequence can be
recovered from shared bookkeeping, so one scan over the stream yields
the full miss/migration curve for an arbitrary capacity vector.

This is the ghost-stack generalization of Mattson's stack-distance
algorithm [Mattson et al. 1970] to the HSM's byte-weighted, watermarked
cache: instead of requiring the inclusion property to hold between
capacities (watermark eviction waves and per-capacity FIFO insertion
times break strict inclusion), the engine keeps the capacity-independent
state *shared* -- last-access times, per-file sizes, dirty/write-back
scheduling, first-touch tracking -- and keeps only the genuinely
per-capacity state (residency bit, usage, lazy victim heap) separate.
Per-event cost is O(1) for the dominant hit/write path (a residency
bitmask lookup and a mask-keyed counter bump) plus per-capacity work
proportional to that capacity's misses, versus the DES's full per-event
cost at every capacity.

Exactness, not approximation: for every supported policy the emitted
:class:`~repro.hsm.metrics.HSMMetrics` rows are pinned bit-for-bit to
:func:`repro.engine.replay.replay_policy` (the DES reference) by the
equivalence suite, including watermark wave sizes, victim tie-breaking
(stable rank sort by per-capacity insertion order), lazy write-back
absorption, forced flushes, and the oversized-file bypass path.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import EventBatch
from repro.hsm.cache import CacheConfig
from repro.hsm.metrics import HSMMetrics

#: Registry policies the stack engine can replay: their DES ``rank`` is a
#: monotone transform of one capacity-independent per-file key at any
#: instant, so a lazily-updated heap reproduces the exact victim order.
#: (STP mixes size and age through a non-separable power law, SAAC keeps
#: decayed per-access state, and random draws fresh RNG ranks per wave --
#: none reduce to a static key, so they fall back to the DES.)
STACK_POLICIES = ("fifo", "largest-first", "lru", "mru", "smallest-first")

#: Capacities simulated per pass: residency is a bitmask per file, and a
#: Python int mask with <= 64 bits keeps every mask operation single-word.
MAX_CAPACITIES_PER_PASS = 64

_CACHE_FIELDS = {f.name: f.default for f in dataclasses.fields(CacheConfig)}
DEFAULT_HIGH_WATERMARK: float = _CACHE_FIELDS["high_watermark"]
DEFAULT_LOW_WATERMARK: float = _CACHE_FIELDS["low_watermark"]
DEFAULT_WRITEBACK_DELAY: Optional[float] = _CACHE_FIELDS["writeback_delay"]


class StackEngineError(ValueError):
    """The policy or stream cannot be replayed by the stack engine."""


#: Static victim-priority key per policy, applied at insertion time.
#: Heap order (key ascending, then per-capacity insertion sequence) must
#: equal the DES's stable sort on (rank descending, residency order) --
#: each policy's rank is a monotone transform of its key at any instant.
_KEY_FUNCS = {
    "lru": lambda sz, t: t,
    "fifo": lambda sz, t: t,
    "largest-first": lambda sz, t: -sz,
    "smallest-first": lambda sz, t: sz,
    "mru": lambda sz, t: -t,
}


def supports_policy(policy_name: str) -> bool:
    """Whether one scan can produce exact curves for this policy."""
    return policy_name in STACK_POLICIES


def resolve_engine(engine: str, policy_name: str) -> bool:
    """Map an ``{auto,stack,des}`` selector to "use the stack engine?".

    ``auto`` picks the stack engine whenever the policy qualifies;
    ``stack`` insists and raises :class:`StackEngineError` when it
    cannot be honored (non-inclusion-preserving policies, and OPT).
    """
    if engine not in ("auto", "stack", "des"):
        raise ValueError(
            f"unknown engine {engine!r}; choose from ['auto', 'des', 'stack']"
        )
    if engine == "des":
        return False
    supported = supports_policy(policy_name)
    if engine == "stack" and not supported:
        raise StackEngineError(
            f"policy {policy_name!r} is not stack-replayable; use "
            f"--engine auto/des or one of {sorted(STACK_POLICIES)}"
        )
    return supported


class _MultiCapacityReplay:
    """One pass over a stream for <= 64 capacities of one policy.

    Shared (capacity-independent) per-file state lives in parallel lists
    indexed by file id: size (0 = never seen), last access time,
    residency/dirty bitmasks, and the write-back version counter.
    Per-capacity state is the usage counter, the lazy victim heap, and
    the stint map (file -> per-capacity insertion sequence number, which
    doubles as the DES's stable-sort tie-break).
    """

    def __init__(
        self,
        policy_name: str,
        capacities: Sequence[int],
        writeback_delay: Optional[float],
        high_watermark: float,
        low_watermark: float,
    ) -> None:
        if policy_name not in STACK_POLICIES:
            raise StackEngineError(
                f"policy {policy_name!r} is not stack-replayable; "
                f"choose from {sorted(STACK_POLICIES)}"
            )
        if len(capacities) > MAX_CAPACITIES_PER_PASS:
            raise ValueError("one pass handles at most 64 capacities")
        if any(c <= 0 for c in capacities):
            raise ValueError("capacity must be positive")
        if list(capacities) != sorted(set(capacities)):
            raise ValueError("capacities must be strictly increasing")
        self.policy_name = policy_name
        self.caps: List[int] = [int(c) for c in capacities]
        self.caps_arr = np.asarray(self.caps, dtype=np.int64)
        self.delay = writeback_delay
        # Same float expressions as ManagedDiskCache so threshold
        # comparisons land on identical values.
        self.high = [high_watermark * c for c in self.caps]
        self.low = [low_watermark * c for c in self.caps]

        k = len(self.caps)
        self.n_caps = k
        self.full_mask = (1 << k) - 1
        #: eligible[lvl] = capacities that can cache a file whose size
        #: exceeds capacities [0, lvl) -- the oversized-bypass boundary.
        self.eligible = [
            self.full_mask & ~((1 << lvl) - 1) for lvl in range(k + 1)
        ]

        # LRU keys go stale when a resident file is re-read (rank falls);
        # the pop loop refreshes them lazily.  MRU keys move the other
        # way (an access *raises* eviction priority), so the access path
        # pushes eagerly and stale duplicates are dropped on pop.
        self.lazy_refresh = policy_name == "lru"
        self.eager_touch = policy_name == "mru"
        self._key = _KEY_FUNCS[policy_name]

        # Shared per-file state, indexed by file id.
        self._size: List[int] = []
        self._last: List[float] = []
        self._res: List[int] = []
        self._dirty: List[int] = []
        self._ver: List[int] = []

        self.usage = [0] * k
        self.heaps: List[list] = [[] for _ in range(k)]
        # stints[k][fid]: the per-capacity insertion sequence number of
        # the file's current residency stint, or -1 when not resident.
        # Fid-indexed lists, not dicts: the stint check runs once per
        # heap pop, which is the engine's hottest read.
        self.stints: List[List[int]] = [[] for _ in range(k)]
        self.seqs = [0] * k
        self.resident_counts = [0] * k

        # Shared counters (identical at every capacity).
        self.reads_total = 0
        self.writes_total = 0
        self.bytes_written_total = 0
        self.compulsory_total = 0
        self.hits_full = 0
        # Mask-keyed accumulators: one dict bump per event instead of one
        # counter bump per capacity.
        self.hit_by_mask: Dict[int, int] = {}
        self.absorb_by_mask: Dict[int, int] = {}
        self.flush_by_mask: Dict[int, list] = {}  # mask -> [count, bytes]
        # Direct per-capacity counters (miss-path only, so cheap).
        self.staged_bytes = [0] * k
        self.evictions = [0] * k
        self.bytes_evicted = [0] * k
        self.forced_flushes = [0] * k
        self.forced_tape_writes = [0] * k
        self.forced_flushed_bytes = [0] * k
        # Oversized-bypass accounting, histogrammed by bypass level: an
        # event at level L bypasses capacities [0, L).
        self.bypass_read_count = [0] * (k + 1)
        self.bypass_read_bytes = [0] * (k + 1)
        self.bypass_write_count = [0] * (k + 1)
        self.bypass_write_bytes = [0] * (k + 1)

        #: Shared write-back queue: (due time, file, version).  One entry
        #: per write serves every capacity; validity at pop time is the
        #: shared version check plus the per-capacity dirty bit (a forced
        #: flush clears its capacity's bit, superseding writes bump the
        #: version), which reproduces the DES's per-capacity version
        #: bookkeeping without per-capacity queues.
        self.queue: List[Tuple[float, int, int]] = []
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def _grow(self, max_fid: int) -> None:
        need = max_fid + 1 - len(self._size)
        if need > 0:
            self._size.extend([0] * need)
            self._last.extend([0.0] * need)
            self._res.extend([0] * need)
            self._dirty.extend([0] * need)
            self._ver.extend([0] * need)
            for stints in self.stints:
                stints.extend([-1] * need)

    # ------------------------------------------------------------------
    # The event loop

    def feed(self, batch: EventBatch) -> None:
        """Apply one time-ordered batch to every capacity."""
        n = len(batch)
        if n == 0:
            return
        sizes_np = batch.size
        if int(sizes_np.min()) <= 0:
            # Raise exactly where the DES would, with every earlier event
            # already applied.
            bad = int(np.argmax(sizes_np <= 0))
            if bad:
                self.feed(batch.slice(0, bad))
            raise ValueError("file size must be positive")
        if int(batch.file_id.min()) < 0:
            raise StackEngineError(
                "negative file ids: strip error rows before replay"
            )
        self._grow(int(batch.file_id.max()))

        ts = batch.time
        if self.first_time is None:
            self.first_time = float(ts[0])
        self.last_time = float(ts[-1])

        oversized = int(sizes_np.max()) > self.caps[0]
        if oversized or self.eager_touch:
            lvls = (
                np.searchsorted(self.caps_arr, sizes_np, side="left").tolist()
                if oversized
                else [0] * n
            )
            self._feed_general(
                batch.file_id.tolist(),
                sizes_np.tolist(),
                ts.tolist(),
                batch.is_write.tolist(),
                lvls,
            )
        else:
            self._feed_fast(
                batch.file_id.tolist(),
                sizes_np.tolist(),
                ts.tolist(),
                batch.is_write.tolist(),
            )

    def _feed_fast(
        self,
        fids: List[int],
        szs: List[int],
        ts: List[float],
        ws: List[bool],
    ) -> None:
        """Hot loop for batches with no oversized files (the normal case)
        and no eager-touch policy: every event is bypass-free, so the
        level/bypass bookkeeping drops out entirely."""
        size_l = self._size
        last_l = self._last
        res_l = self._res
        dirty_l = self._dirty
        ver_l = self._ver
        queue = self.queue
        full = self.full_mask
        hit_by_mask = self.hit_by_mask
        absorb_by_mask = self.absorb_by_mask
        delay = self.delay
        write_through = delay is None
        flush_by_mask = self.flush_by_mask
        push = heapq.heappush
        insert_bits = self._insert_bits
        flush_due = self._flush_due
        reads = 0
        hits_full = 0
        writes = 0
        bytes_written = 0
        compulsory = 0

        for fid, sz, t, w in zip(fids, szs, ts, ws):
            if queue and queue[0][0] <= t:
                flush_due(t)
            sz0 = size_l[fid]
            if not w:
                reads += 1
                if sz0 == 0:
                    size_l[fid] = sz
                    compulsory += 1
                    last_l[fid] = t
                    self.staged_all(sz)
                    insert_bits(fid, sz, t, full)
                    continue
                if sz0 != sz:
                    raise StackEngineError(
                        f"file {fid} changed size {sz0} -> {sz}; the "
                        "stack engine requires stable per-file sizes"
                    )
                rmask = res_l[fid]
                if rmask == full:
                    # The dominant path: resident everywhere, pure hit.
                    hits_full += 1
                    last_l[fid] = t
                    continue
                if rmask:
                    hit_by_mask[rmask] = hit_by_mask.get(rmask, 0) + 1
                last_l[fid] = t
                miss_bits = full & ~rmask
                staged = self.staged_bytes
                mask = miss_bits
                while mask:
                    k = (mask & -mask).bit_length() - 1
                    mask &= mask - 1
                    staged[k] += sz
                insert_bits(fid, sz, t, miss_bits)
            else:
                writes += 1
                bytes_written += sz
                if sz0 == 0:
                    size_l[fid] = sz
                elif sz0 != sz:
                    raise StackEngineError(
                        f"file {fid} changed size {sz0} -> {sz}; the "
                        "stack engine requires stable per-file sizes"
                    )
                rmask = res_l[fid]
                absorb = rmask & dirty_l[fid]
                if absorb:
                    absorb_by_mask[absorb] = (
                        absorb_by_mask.get(absorb, 0) + 1
                    )
                last_l[fid] = t
                if rmask != full:
                    insert_bits(fid, sz, t, full & ~rmask)
                if write_through:
                    # Write-through: the tape copy lands immediately at
                    # every capacity (all cached the file: no bypasses).
                    entry = flush_by_mask.get(full)
                    if entry is None:
                        flush_by_mask[full] = [1, sz]
                    else:
                        entry[0] += 1
                        entry[1] += sz
                else:
                    dirty_l[fid] = full
                    ver = ver_l[fid] + 1
                    ver_l[fid] = ver
                    push(queue, (t + delay, fid, ver))

        self.reads_total += reads
        self.hits_full += hits_full
        self.writes_total += writes
        self.bytes_written_total += bytes_written
        self.compulsory_total += compulsory

    def staged_all(self, sz: int) -> None:
        """Account miss-staged bytes at every capacity."""
        staged = self.staged_bytes
        for k in range(self.n_caps):
            staged[k] += sz

    def _feed_general(
        self,
        fids: List[int],
        szs: List[int],
        ts: List[float],
        ws: List[bool],
        lvls: List[int],
    ) -> None:
        """Full event loop: oversized-file bypass and MRU eager touches."""
        size_l = self._size
        last_l = self._last
        res_l = self._res
        dirty_l = self._dirty
        ver_l = self._ver
        queue = self.queue
        full = self.full_mask
        eligible = self.eligible
        hit_by_mask = self.hit_by_mask
        absorb_by_mask = self.absorb_by_mask
        eager_touch = self.eager_touch
        delay = self.delay
        flush_by_mask = self.flush_by_mask
        push = heapq.heappush
        insert_bits = self._insert_bits
        flush_due = self._flush_due

        for fid, sz, t, w, lvl in zip(fids, szs, ts, ws, lvls):
            if queue and queue[0][0] <= t:
                flush_due(t)
            sz0 = size_l[fid]
            if sz0 == 0:
                size_l[fid] = sz
                first_touch = True
            else:
                if sz0 != sz:
                    raise StackEngineError(
                        f"file {fid} changed size {sz0} -> {sz}; the "
                        "stack engine requires stable per-file sizes"
                    )
                first_touch = False
            if not w:
                self.reads_total += 1
                rmask = res_l[fid]
                if rmask == full and not eager_touch:
                    self.hits_full += 1
                    last_l[fid] = t
                    continue
                if first_touch:
                    self.compulsory_total += 1
                if lvl:
                    self.bypass_read_count[lvl] += 1
                    self.bypass_read_bytes[lvl] += sz
                if rmask:
                    hit_by_mask[rmask] = hit_by_mask.get(rmask, 0) + 1
                    if eager_touch:
                        self._touch(fid, sz, t, rmask)
                last_l[fid] = t
                miss_bits = eligible[lvl] & ~rmask
                if miss_bits:
                    staged = self.staged_bytes
                    mask = miss_bits
                    while mask:
                        k = (mask & -mask).bit_length() - 1
                        mask &= mask - 1
                        staged[k] += sz
                    insert_bits(fid, sz, t, miss_bits)
            else:
                self.writes_total += 1
                self.bytes_written_total += sz
                if lvl:
                    self.bypass_write_count[lvl] += 1
                    self.bypass_write_bytes[lvl] += sz
                can_cache = eligible[lvl]
                rmask = res_l[fid]
                absorb = rmask & dirty_l[fid]
                if absorb:
                    absorb_by_mask[absorb] = (
                        absorb_by_mask.get(absorb, 0) + 1
                    )
                if eager_touch and rmask:
                    self._touch(fid, sz, t, rmask)
                last_l[fid] = t
                miss_bits = can_cache & ~rmask
                if miss_bits:
                    insert_bits(fid, sz, t, miss_bits)
                if can_cache:
                    if delay is None:
                        # Write-through: the tape copy lands immediately
                        # at every capacity that cached the file.
                        entry = flush_by_mask.get(can_cache)
                        if entry is None:
                            flush_by_mask[can_cache] = [1, sz]
                        else:
                            entry[0] += 1
                            entry[1] += sz
                    else:
                        dirty_l[fid] = can_cache
                        ver = ver_l[fid] + 1
                        ver_l[fid] = ver
                        push(queue, (t + delay, fid, ver))

    def _touch(self, fid: int, sz: int, t: float, rmask: int) -> None:
        """MRU only: an access raises eviction priority, so the heaps
        need an eager entry per resident capacity."""
        key = -t
        heaps = self.heaps
        stints = self.stints
        while rmask:
            k = (rmask & -rmask).bit_length() - 1
            rmask &= rmask - 1
            heapq.heappush(heaps[k], (key, stints[k][fid], fid, sz))

    def _insert_bits(self, fid: int, sz: int, t: float, bits: int) -> None:
        """Stage the file at every capacity in ``bits`` (waves included)."""
        key = self._key(sz, t)
        usage = self.usage
        high = self.high
        seqs = self.seqs
        stints = self.stints
        heaps = self.heaps
        counts = self.resident_counts
        push = heapq.heappush
        make_room = self._make_room
        newbits = bits
        while bits:
            k = (bits & -bits).bit_length() - 1
            bits &= bits - 1
            if usage[k] + sz > high[k]:
                make_room(k, sz, t)
            seq = seqs[k]
            seqs[k] = seq + 1
            stints[k][fid] = seq
            push(heaps[k], (key, seq, fid, sz))
            usage[k] += sz
            counts[k] += 1
        self._res[fid] |= newbits

    # ------------------------------------------------------------------
    # Migration waves

    def _make_room(self, k: int, incoming: int, now: float) -> None:
        """Mirror of ``ManagedDiskCache._make_room`` for one capacity.

        The victim loop is the migration hot path (one iteration per
        eviction, evictions >> waves), so the pop/validate/evict cycle
        is inlined here rather than calling :meth:`_pop_victim` per
        victim.
        """
        cap = self.caps[k]
        usage = self.usage[k]
        if usage + incoming > self.high[k]:
            target = self.low[k] - incoming
        elif usage + incoming > cap:
            target = cap - incoming
        else:
            return
        needed = usage - max(target, 0.0)
        if needed <= 0:
            return
        needed = int(needed)
        heap = self.heaps[k]
        stints = self.stints[k]
        last_l = self._last
        res_l = self._res
        dirty_l = self._dirty
        lazy_refresh = self.lazy_refresh
        eager_touch = self.eager_touch
        bit = 1 << k
        notbit = ~bit
        pop = heapq.heappop
        replace = heapq.heapreplace
        freed = 0
        evicted = 0
        forced = 0
        forced_bytes = 0
        while freed < needed and heap:
            key, seq, fid, sz = heap[0]
            if stints[fid] != seq:
                pop(heap)  # evicted or re-inserted: stale stint
                continue
            if lazy_refresh:
                last = last_l[fid]
                if last != key:
                    # Re-read since insertion: sink to its true position.
                    replace(heap, (last, seq, fid, sz))
                    continue
            elif eager_touch and -key != last_l[fid]:
                pop(heap)  # a newer eager entry exists
                continue
            pop(heap)
            stints[fid] = -1
            res_l[fid] &= notbit
            freed += sz
            evicted += 1
            if dirty_l[fid] & bit:
                # Migrating a dirty file forces its tape copy first.
                dirty_l[fid] &= notbit
                forced += 1
                forced_bytes += sz
        self.usage[k] = usage - freed
        self.evictions[k] += evicted
        self.bytes_evicted[k] += freed
        self.resident_counts[k] -= evicted
        if forced:
            self.forced_flushes[k] += forced
            self.forced_tape_writes[k] += forced
            self.forced_flushed_bytes[k] += forced_bytes
        # Defensive tail, as in the DES: if the wave under-delivered,
        # keep evicting one victim at a time until the file fits.
        while self.usage[k] + incoming > cap and self.resident_counts[k]:
            victim = self._pop_victim(k)
            if victim is None:
                raise RuntimeError("no victims left but cache is full")
            self._evict(k, *victim)

    def _pop_victim(self, k: int) -> Optional[Tuple[int, int]]:
        """Highest-priority valid victim at capacity ``k``, or None."""
        heap = self.heaps[k]
        stints = self.stints[k]
        last_l = self._last
        while heap:
            key, seq, fid, sz = heap[0]
            if stints[fid] != seq:
                heapq.heappop(heap)
                continue
            if self.lazy_refresh:
                last = last_l[fid]
                if last != key:
                    heapq.heapreplace(heap, (last, seq, fid, sz))
                    continue
            elif self.eager_touch and -key != last_l[fid]:
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            return fid, sz
        return None

    def _evict(self, k: int, fid: int, sz: int) -> None:
        self.stints[k][fid] = -1
        bit = 1 << k
        self._res[fid] &= ~bit
        self.usage[k] -= sz
        self.evictions[k] += 1
        self.bytes_evicted[k] += sz
        self.resident_counts[k] -= 1
        if self._dirty[fid] & bit:
            self._dirty[fid] &= ~bit
            self.forced_flushes[k] += 1
            self.forced_tape_writes[k] += 1
            self.forced_flushed_bytes[k] += sz

    # ------------------------------------------------------------------
    # Write-back

    def _flush_due(self, now: float) -> None:
        queue = self.queue
        ver_l = self._ver
        dirty_l = self._dirty
        size_l = self._size
        flush_by_mask = self.flush_by_mask
        while queue and queue[0][0] <= now:
            _, fid, version = heapq.heappop(queue)
            if ver_l[fid] != version:
                continue  # superseded by a later write
            mask = dirty_l[fid]
            if mask:
                entry = flush_by_mask.get(mask)
                if entry is None:
                    flush_by_mask[mask] = [1, size_l[fid]]
                else:
                    entry[0] += 1
                    entry[1] += size_l[fid]
                dirty_l[fid] = 0

    # ------------------------------------------------------------------
    # Finalization

    def finish(self) -> List[HSMMetrics]:
        """End-of-run flush, then one metrics row per capacity."""
        flush_by_mask = self.flush_by_mask
        size_l = self._size
        for fid, mask in enumerate(self._dirty):
            if mask:
                entry = flush_by_mask.get(mask)
                if entry is None:
                    flush_by_mask[mask] = [1, size_l[fid]]
                else:
                    entry[0] += 1
                    entry[1] += size_l[fid]
                self._dirty[fid] = 0

        k = self.n_caps
        hits = [self.hits_full] * k
        absorbs = [0] * k
        tape_writes = list(self.forced_tape_writes)
        flushed_bytes = list(self.forced_flushed_bytes)

        def expand(masked: Dict[int, int], out: List[int]) -> None:
            for mask, count in masked.items():
                while mask:
                    bit = (mask & -mask).bit_length() - 1
                    mask &= mask - 1
                    out[bit] += count

        expand(self.hit_by_mask, hits)
        expand(self.absorb_by_mask, absorbs)
        for mask, (count, nbytes) in flush_by_mask.items():
            while mask:
                bit = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                tape_writes[bit] += count
                flushed_bytes[bit] += nbytes

        span = 0.0
        if self.first_time is not None:
            span = (self.last_time or 0.0) - self.first_time

        rows: List[HSMMetrics] = []
        for i in range(k):
            bypassed_reads = sum(self.bypass_read_count[i + 1 :])
            bypassed_writes = sum(self.bypass_write_count[i + 1 :])
            bypass_read_bytes = sum(self.bypass_read_bytes[i + 1 :])
            bypass_write_bytes = sum(self.bypass_write_bytes[i + 1 :])
            rows.append(
                HSMMetrics(
                    reads=self.reads_total,
                    read_hits=hits[i],
                    read_misses=self.reads_total - hits[i],
                    compulsory_misses=self.compulsory_total,
                    bytes_staged=self.staged_bytes[i] + bypass_read_bytes,
                    writes=self.writes_total,
                    bytes_written=self.bytes_written_total,
                    tape_writes=tape_writes[i] + bypassed_writes,
                    bytes_flushed=flushed_bytes[i] + bypass_write_bytes,
                    rewrites_absorbed=absorbs[i],
                    evictions=self.evictions[i],
                    bytes_evicted=self.bytes_evicted[i],
                    forced_flushes=self.forced_flushes[i],
                    bypassed_reads=bypassed_reads,
                    bypassed_writes=bypassed_writes,
                    span_seconds=span,
                )
            )
        return rows


def multi_capacity_replay(
    batches: Iterable[EventBatch],
    policy_name: str,
    capacities: Sequence[int],
    writeback_delay: Optional[float] = DEFAULT_WRITEBACK_DELAY,
    high_watermark: float = DEFAULT_HIGH_WATERMARK,
    low_watermark: float = DEFAULT_LOW_WATERMARK,
) -> List[HSMMetrics]:
    """Exact per-capacity metrics for every capacity in one scan.

    ``capacities`` may be unsorted and may contain duplicates; the result
    list matches its order (duplicates get equal, independent rows).
    More than 64 distinct capacities are handled in several passes, so
    ``batches`` must be re-iterable (a list, as ``prepare_stream``
    returns) when that limit is exceeded.
    """
    if not supports_policy(policy_name):
        raise StackEngineError(
            f"policy {policy_name!r} is not stack-replayable; "
            f"choose from {sorted(STACK_POLICIES)}"
        )
    requested = [int(c) for c in capacities]
    if not requested:
        return []
    if any(c <= 0 for c in requested):
        raise ValueError("capacity must be positive")
    from repro.verify.invariants import (
        StackInvariantChecker, invariant_context, invariants_enabled,
    )

    unique = sorted(set(requested))
    by_capacity: Dict[int, HSMMetrics] = {}
    if len(unique) > MAX_CAPACITIES_PER_PASS:
        batches = list(batches)
    for start in range(0, len(unique), MAX_CAPACITIES_PER_PASS):
        group = unique[start : start + MAX_CAPACITIES_PER_PASS]
        replay = _MultiCapacityReplay(
            policy_name, group, writeback_delay, high_watermark, low_watermark
        )
        checker = (
            StackInvariantChecker(replay) if invariants_enabled() else None
        )
        with invariant_context(
            engine="stack", policy=policy_name, capacities=group,
            writeback_delay=writeback_delay,
            high_watermark=high_watermark, low_watermark=low_watermark,
        ):
            for batch in batches:
                replay.feed(batch)
                if checker is not None:
                    checker.after_batch(batch)
            if checker is not None:
                checker.at_finish()
        for capacity, metrics in zip(group, replay.finish()):
            by_capacity[capacity] = metrics
    seen: set = set()
    rows: List[HSMMetrics] = []
    for capacity in requested:
        metrics = by_capacity[capacity]
        if capacity in seen:
            metrics = dataclasses.replace(metrics)
        seen.add(capacity)
        rows.append(metrics)
    return rows


__all__ = [
    "MAX_CAPACITIES_PER_PASS",
    "STACK_POLICIES",
    "StackEngineError",
    "multi_capacity_replay",
    "resolve_engine",
    "supports_policy",
]
