"""The columnar event batch: the single interchange format between layers.

Every producer (the workload generator, trace readers) and every consumer
(HSM replay, the MSS simulator, the analyses) speaks :class:`EventBatch`:
a numpy struct-of-arrays holding one chunk of a time-ordered reference
stream.  Layers exchange *iterables of batches*, so a two-year
production-scale trace never has to exist as per-record Python objects --
the stream is processed chunk by chunk with vectorized column operations,
and only the code that genuinely needs per-record views (the table/figure
renderers) materializes records, lazily, through
:mod:`repro.engine.records`.

The contract:

* columns are parallel 1-D numpy arrays of equal length;
* ``time`` is nondecreasing within a batch, and batch boundaries are
  nondecreasing across a stream (a stream of batches is globally
  time-ordered);
* ``file_id`` indexes ``namespace.files``; negative ids mark references
  to files that never existed (NO_SUCH_FILE errors);
* ``device`` indexes ``Device.storage_devices()`` and ``error`` holds
  :class:`~repro.trace.errors.ErrorKind` values;
* the optional columns (``user``, ``latency``, ``transfer``) are carried
  when the producer has them and dropped by transforms that do not need
  them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.trace.record import Device

#: Storage devices in column-index order (matches the generator's table).
DEVICE_ORDER = Device.storage_devices()
_DEVICE_INDEX = {device: i for i, device in enumerate(DEVICE_ORDER)}

#: Default number of events per batch: large enough that per-batch Python
#: overhead vanishes, small enough to stay cache- and memory-friendly.
DEFAULT_CHUNK_SIZE = 65_536


def device_index(device: Device) -> int:
    """Column value for one storage device."""
    return _DEVICE_INDEX[device]


def device_at(index: int) -> Device:
    """Inverse of :func:`device_index`."""
    return DEVICE_ORDER[index]


@dataclass(frozen=True)
class EventBatch:
    """One chunk of a reference stream as parallel columns."""

    file_id: np.ndarray   # int64; negative = never-existed file
    size: np.ndarray      # int64 bytes
    time: np.ndarray      # float64 seconds, nondecreasing
    is_write: np.ndarray  # bool
    device: np.ndarray    # int8 index into DEVICE_ORDER
    error: np.ndarray     # int8 ErrorKind values
    user: Optional[np.ndarray] = None      # int32
    latency: Optional[np.ndarray] = None   # float64 seconds
    transfer: Optional[np.ndarray] = None  # float64 seconds

    def __post_init__(self) -> None:
        n = self.file_id.shape[0]
        for name in ("size", "time", "is_write", "device", "error"):
            column = getattr(self, name)
            if column.shape != (n,):
                raise ValueError(
                    f"column {name!r} has shape {column.shape}, expected ({n},)"
                )
        for name in ("user", "latency", "transfer"):
            column = getattr(self, name)
            if column is not None and column.shape != (n,):
                raise ValueError(
                    f"column {name!r} has shape {column.shape}, expected ({n},)"
                )

    # ------------------------------------------------------------------
    # Shape and views

    def __len__(self) -> int:
        return int(self.file_id.shape[0])

    @property
    def n_events(self) -> int:
        """Number of events in the batch."""
        return len(self)

    def _map(self, fn) -> "EventBatch":
        """Apply an array transform to every present column."""
        kwargs = {}
        for name in ("user", "latency", "transfer"):
            column = getattr(self, name)
            kwargs[name] = None if column is None else fn(column)
        return EventBatch(
            file_id=fn(self.file_id),
            size=fn(self.size),
            time=fn(self.time),
            is_write=fn(self.is_write),
            device=fn(self.device),
            error=fn(self.error),
            **kwargs,
        )

    def select(self, mask_or_index: np.ndarray) -> "EventBatch":
        """Batch restricted to a boolean mask or index array."""
        return self._map(lambda column: column[mask_or_index])

    def slice(self, start: int, stop: int) -> "EventBatch":
        """Zero-copy view of rows ``[start, stop)``."""
        return self._map(lambda column: column[start:stop])

    def good(self) -> "EventBatch":
        """Successful references only (drops every error row)."""
        return self.select(self.error == 0)

    def validate(self) -> None:
        """Raise if the batch violates the stream contract (test hook)."""
        if len(self) and np.any(np.diff(self.time) < 0):
            raise ValueError("batch times must be nondecreasing")
        ok = self.error == 0
        if np.any(self.file_id[ok] < 0):
            raise ValueError("negative file ids on successful references")
        if np.any(self.size < 0):
            raise ValueError("negative sizes")
        if len(self) and not (
            0 <= int(self.device.min()) and int(self.device.max()) < len(DEVICE_ORDER)
        ):
            raise ValueError("device index out of range")

    # ------------------------------------------------------------------
    # Construction

    @staticmethod
    def from_columns(
        file_id: Sequence[int],
        size: Sequence[int],
        time: Sequence[float],
        is_write: Sequence[bool],
        device: Optional[Sequence[int]] = None,
        error: Optional[Sequence[int]] = None,
        **optional: Optional[Sequence],
    ) -> "EventBatch":
        """Build a batch from any array-likes, coercing dtypes."""
        file_id = np.asarray(file_id, dtype=np.int64)
        n = file_id.shape[0]
        zeros8 = np.zeros(n, dtype=np.int8)
        extras = {}
        casts = {"user": np.int32, "latency": np.float64, "transfer": np.float64}
        for name, dtype in casts.items():
            value = optional.get(name)
            extras[name] = None if value is None else np.asarray(value, dtype=dtype)
        unknown = set(optional) - set(casts)
        if unknown:
            raise TypeError(f"unknown columns {sorted(unknown)}")
        return EventBatch(
            file_id=file_id,
            size=np.asarray(size, dtype=np.int64),
            time=np.asarray(time, dtype=np.float64),
            is_write=np.asarray(is_write, dtype=bool),
            device=zeros8 if device is None else np.asarray(device, dtype=np.int8),
            error=zeros8 if error is None else np.asarray(error, dtype=np.int8),
            **extras,
        )

    @staticmethod
    def empty() -> "EventBatch":
        """A zero-length batch."""
        return EventBatch.from_columns([], [], [], [])

    @staticmethod
    def concat(batches: Sequence["EventBatch"]) -> "EventBatch":
        """One batch holding every event of ``batches``, in order."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return EventBatch.empty()
        if len(batches) == 1:
            return batches[0]

        def cat(name: str) -> Optional[np.ndarray]:
            columns = [getattr(b, name) for b in batches]
            if any(c is None for c in columns):
                return None
            return np.concatenate(columns)

        return EventBatch(
            file_id=cat("file_id"),
            size=cat("size"),
            time=cat("time"),
            is_write=cat("is_write"),
            device=cat("device"),
            error=cat("error"),
            user=cat("user"),
            latency=cat("latency"),
            transfer=cat("transfer"),
        )

    # ------------------------------------------------------------------
    # Iteration helpers

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator["EventBatch"]:
        """Re-chunk one batch into smaller zero-copy views."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, start + chunk_size)


def rechunk(
    batches: Iterable[EventBatch], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[EventBatch]:
    """Re-chunk a batch stream to ``chunk_size``-event batches."""
    for batch in batches:
        yield from batch.chunks(chunk_size)
