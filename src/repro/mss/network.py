"""The NCAR network topology of Figure 2.

Two data paths reach the MSS:

* the **LDN** (Local Data Network): direct device-to-Cray connections used
  for bulk data ("providing a high-speed data path");
* the **MASnet**: a hyperchannel-based control/data network through the
  3090's main memory, used by everything else ("a slower path").

The simulator charges a small fixed control-message cost per request on
the MASnet and (optionally) bandwidth on the LDN; the topology object
itself also backs the Figure 2 reproduction and its tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.units import GB, MB


@dataclass(frozen=True)
class Link:
    """One edge of the topology."""

    a: str
    b: str
    network: str            # "LDN" or "MASnet" or "NFS"
    bandwidth: float        # bytes/second

    def touches(self, node: str) -> bool:
        """True when the link is incident on the node."""
        return node in (self.a, self.b)


@dataclass
class Topology:
    """The machine graph of Figure 2."""

    nodes: List[str] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)

    def add_node(self, name: str) -> None:
        """Add a machine."""
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        self.nodes.append(name)

    def add_link(self, a: str, b: str, network: str, bandwidth: float) -> None:
        """Connect two machines."""
        for node in (a, b):
            if node not in self.nodes:
                raise ValueError(f"unknown node {node!r}")
        self.links.append(Link(a, b, network, bandwidth))

    def neighbors(self, node: str) -> List[str]:
        """Machines with a direct link to ``node``."""
        out = []
        for link in self.links:
            if link.touches(node):
                out.append(link.b if link.a == node else link.a)
        return sorted(set(out))

    def path_bandwidth(self, path: List[str]) -> float:
        """Bottleneck bandwidth along a node path."""
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        bottleneck = float("inf")
        for a, b in zip(path, path[1:]):
            candidates = [
                link.bandwidth
                for link in self.links
                if link.touches(a) and link.touches(b)
            ]
            if not candidates:
                raise ValueError(f"no link between {a!r} and {b!r}")
            bottleneck = min(bottleneck, max(candidates))
        return bottleneck

    def links_by_network(self, network: str) -> List[Link]:
        """All edges of one network."""
        return [link for link in self.links if link.network == network]


def ncar_topology() -> Topology:
    """Figure 2's machine graph with Section 3.1 bandwidths."""
    topo = Topology()
    for node in (
        "cray-ymp",        # shavano
        "ibm-3090",        # the MSS control processor
        "mss-disk",        # IBM 3380 farm
        "tape-silo",       # StorageTek 4400
        "shelf-tapes",
        "vaxen",
        "gateway-ws-1",
        "gateway-ws-2",
        "rest-of-ncar",
    ):
        topo.add_node(node)
    # Direct LDN paths between the Cray and the MSS devices.
    topo.add_link("cray-ymp", "mss-disk", "LDN", 100 * MB)
    topo.add_link("cray-ymp", "tape-silo", "LDN", 100 * MB)
    topo.add_link("cray-ymp", "shelf-tapes", "LDN", 100 * MB)
    # Everything speaks to the 3090 over the MASnet.
    for node in ("cray-ymp", "vaxen", "gateway-ws-1", "gateway-ws-2"):
        topo.add_link(node, "ibm-3090", "MASnet", 4 * MB)
    # The 3090 owns its devices.
    topo.add_link("ibm-3090", "mss-disk", "LDN", 24 * MB)
    topo.add_link("ibm-3090", "tape-silo", "LDN", 12 * MB)
    topo.add_link("ibm-3090", "shelf-tapes", "LDN", 12 * MB)
    # Workstation gateways front the internal networks.
    topo.add_link("gateway-ws-1", "rest-of-ncar", "NFS", int(1.2 * MB))
    topo.add_link("gateway-ws-2", "rest-of-ncar", "NFS", int(1.2 * MB))
    return topo


#: Per-request MASnet control-message latency charged by the MSCP.
CONTROL_MESSAGE_SECONDS = 0.15
