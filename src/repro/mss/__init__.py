"""Discrete-event simulator of the NCAR mass storage system."""

from repro.mss.devices import (
    DEFAULT_TRANSFER_RATE,
    PEAK_TRANSFER_RATE,
    StorageDevice,
    stable_hash,
)
from repro.mss.disk import DiskArray, DiskConfig
from repro.mss.jukebox import JukeboxConfig, OpticalJukebox
from repro.mss.kernel import EventHandle, Resource, SimulationError, Simulator
from repro.mss.metrics import LatencyBreakdown, MetricsCollector
from repro.mss.mscp import MSCP, MSCPConfig
from repro.mss.network import (
    CONTROL_MESSAGE_SECONDS,
    Link,
    Topology,
    ncar_topology,
)
from repro.mss.operators import OperatorConfig, OperatorPool
from repro.mss.request import MSSRequest, Phase
from repro.mss.system import MSSConfig, MSSSystem, replay_trace
from repro.mss.tape import ShelfStation, TapeConfig, TapeDrive, TapeLibrary, TapeSilo

__all__ = [
    "CONTROL_MESSAGE_SECONDS",
    "DEFAULT_TRANSFER_RATE",
    "DiskArray",
    "DiskConfig",
    "EventHandle",
    "JukeboxConfig",
    "LatencyBreakdown",
    "OpticalJukebox",
    "Link",
    "MSCP",
    "MSCPConfig",
    "MSSConfig",
    "MSSRequest",
    "MSSSystem",
    "MetricsCollector",
    "OperatorConfig",
    "OperatorPool",
    "PEAK_TRANSFER_RATE",
    "Phase",
    "Resource",
    "ShelfStation",
    "SimulationError",
    "Simulator",
    "StorageDevice",
    "TapeConfig",
    "TapeDrive",
    "TapeLibrary",
    "TapeSilo",
    "Topology",
    "ncar_topology",
    "replay_trace",
    "stable_hash",
]
