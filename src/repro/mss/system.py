"""Wiring: a complete simulated MSS and trace replay.

``MSSSystem.replay(records)`` pushes a trace through the full simulator --
MSCP, bitfile movers, disk array, tape silo, shelf station, operators --
and returns the same records with *simulated* startup latencies and
transfer times, plus a :class:`MetricsCollector` holding the Section 5.1.1
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.mss.disk import DiskArray, DiskConfig
from repro.mss.kernel import Simulator
from repro.mss.metrics import MetricsCollector
from repro.mss.mscp import MSCP, MSCPConfig
from repro.mss.operators import OperatorConfig, OperatorPool
from repro.mss.request import MSSRequest
from repro.mss.tape import ShelfStation, TapeConfig, TapeSilo
from repro.trace.record import Device, TraceRecord
from repro.util.rng import SeedSequenceFactory

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch
    from repro.namespace.model import Namespace


@dataclass(frozen=True)
class MSSConfig:
    """Hardware shape of the simulated MSS (defaults = Section 3.1)."""

    seed: int = 0
    disk: DiskConfig = field(default_factory=DiskConfig)
    silo: TapeConfig = field(default_factory=TapeConfig)
    shelf: TapeConfig = field(default_factory=lambda: TapeConfig(n_drives=3))
    operators: OperatorConfig = field(default_factory=OperatorConfig)
    mscp: MSCPConfig = field(default_factory=MSCPConfig)
    n_robots: int = 2


class MSSSystem:
    """A live simulated MSS."""

    def __init__(self, config: Optional[MSSConfig] = None) -> None:
        self.config = config or MSSConfig()
        seeds = SeedSequenceFactory(self.config.seed)
        self.sim = Simulator()
        self.operators = OperatorPool(
            self.sim, seeds.named("operators"), self.config.operators
        )
        self.disk = DiskArray(self.sim, seeds.named("disk"), self.config.disk)
        self.silo = TapeSilo(
            self.sim, seeds.named("silo"), self.config.silo, self.config.n_robots
        )
        self.shelf = ShelfStation(
            self.sim, seeds.named("shelf"), self.operators, self.config.shelf
        )
        self.devices: Dict[Device, object] = {
            Device.MSS_DISK: self.disk,
            Device.TAPE_SILO: self.silo,
            Device.TAPE_SHELF: self.shelf,
        }
        self.mscp = MSCP(self.sim, seeds.named("mscp"), self.devices, self.config.mscp)
        self.metrics = MetricsCollector()
        self._next_id = 0

    # ------------------------------------------------------------------
    # Single-request interface (used by the HSM and by tests)

    def submit(
        self,
        path: str,
        size: int,
        is_write: bool,
        device: Device,
        when: Optional[float] = None,
    ) -> MSSRequest:
        """Schedule one request; returns the request object (latencies are
        filled once the simulator runs past its completion)."""
        arrival = self.sim.now if when is None else when
        request = MSSRequest(
            request_id=self._next_id,
            path=path,
            size=size,
            is_write=is_write,
            device=device,
            arrival_time=arrival,
            directory=path.rsplit("/", 1)[0] or "/",
        )
        self._next_id += 1

        def submit_now() -> None:
            self.mscp.submit(request, self.metrics.record)

        self.sim.schedule_at(arrival, submit_now)
        return request

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation."""
        self.sim.run(until)

    # ------------------------------------------------------------------
    # Trace replay

    def replay(
        self, records: Iterable[TraceRecord]
    ) -> Tuple[List[TraceRecord], MetricsCollector]:
        """Replay a trace; returns (records with simulated times, metrics).

        Failed references pass through untouched (the paper excludes them
        from latency statistics).  Records must be time-ordered.
        """
        requests: List[Tuple[TraceRecord, Optional[MSSRequest]]] = []
        for record in records:
            if record.is_error:
                requests.append((record, None))
                continue
            request = self.submit(
                path=record.mss_path,
                size=record.file_size,
                is_write=record.is_write,
                device=record.storage_device,
                when=record.start_time,
            )
            requests.append((record, request))
        self.run()
        out: List[TraceRecord] = []
        for record, request in requests:
            if request is None:
                out.append(record)
                continue
            out.append(
                record.with_times(
                    startup_latency=request.startup_latency,
                    transfer_time=request.transfer_time,
                )
            )
        return out, self.metrics

    def replay_batches(
        self, batches: Iterable["EventBatch"], namespace: "Namespace"
    ) -> Tuple[List[TraceRecord], MetricsCollector]:
        """Replay a columnar batch stream.

        Batches flow straight from the generator; the record-view adapter
        materializes per-request views lazily, so no intermediate record
        list exists before submission.
        """
        from repro.engine.records import records_from_batches

        return self.replay(records_from_batches(batches, namespace))

    def replay_columns(
        self, batches: Iterable["EventBatch"], namespace: "Namespace"
    ) -> Tuple[List["EventBatch"], MetricsCollector]:
        """Replay a batch stream and return it *as batches*.

        The columnar twin of :meth:`replay`: requests are submitted
        straight from the columns (no ``TraceRecord`` is ever built) and
        the simulated startup latencies and transfer times come back as
        fresh ``latency`` / ``transfer`` columns.  Failed references pass
        through with their original timings, as in :meth:`replay`.
        Submission order, parameters and seeds match :meth:`replay`
        exactly, so latencies and metrics are bit-identical.
        """
        from repro.engine.batch import DEVICE_ORDER, EventBatch

        batches = list(batches)
        pending: List[Tuple[int, int, MSSRequest]] = []
        path_of = namespace.path_of
        for batch_no, batch in enumerate(batches):
            rows = zip(
                batch.file_id.tolist(),
                batch.size.tolist(),
                batch.time.tolist(),
                batch.is_write.tolist(),
                batch.device.tolist(),
                batch.error.tolist(),
            )
            for row_no, (fid, size, time, is_write, device, error) in enumerate(rows):
                if error:
                    continue
                request = self.submit(
                    path=path_of(fid),
                    size=size,
                    is_write=is_write,
                    device=DEVICE_ORDER[device],
                    when=time,
                )
                pending.append((batch_no, row_no, request))
        self.run()
        n_rows = [len(batch) for batch in batches]
        latencies = [
            batch.latency.copy() if batch.latency is not None else np.zeros(n)
            for batch, n in zip(batches, n_rows)
        ]
        transfers = [
            batch.transfer.copy() if batch.transfer is not None else np.zeros(n)
            for batch, n in zip(batches, n_rows)
        ]
        for batch_no, row_no, request in pending:
            latencies[batch_no][row_no] = request.startup_latency
            transfers[batch_no][row_no] = request.transfer_time
        out = [
            EventBatch(
                file_id=batch.file_id,
                size=batch.size,
                time=batch.time,
                is_write=batch.is_write,
                device=batch.device,
                error=batch.error,
                user=batch.user,
                latency=latencies[batch_no],
                transfer=transfers[batch_no],
            )
            for batch_no, batch in enumerate(batches)
        ]
        return out, self.metrics


def replay_trace(
    records: Iterable[TraceRecord], config: Optional[MSSConfig] = None
) -> Tuple[List[TraceRecord], MetricsCollector]:
    """Convenience: build a system and replay a trace through it."""
    system = MSSSystem(config)
    return system.replay(records)
