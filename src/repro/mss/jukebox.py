"""An optical-disk jukebox, the Section 5.4 what-if device.

"Such small files make up under 1% of the total data storage requirement,
so it seems wise to store these files on inexpensive, low-performance
disks rather than on tape.  If magnetic disk would be too expensive, an
optical disk jukebox could provide low latency to the first byte and high
capacity."

Built from the Table 1 optical column: ~7 s random access (platter swap +
seek in the jukebox), 0.25 MB/s transfer.  Used by the ablation bench to
ask: what would small-file reads cost if they moved off the 3380s?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import paper
from repro.mss.devices import CompletionCallback, StorageDevice, stable_hash
from repro.mss.kernel import Resource, Simulator
from repro.mss.request import MSSRequest, Phase


@dataclass(frozen=True)
class JukeboxConfig:
    """Optical jukebox parameters (defaults from Table 1)."""

    n_drives: int = 4
    n_pickers: int = 1
    #: Platter swap by the picker arm.
    swap_min: float = 4.0
    swap_max: float = 8.0
    #: Seek/settle once the platter is in a drive.
    access_seconds: float = paper.TABLE1_OPTICAL.random_access_seconds
    transfer_rate: float = paper.TABLE1_OPTICAL.transfer_rate_bytes_per_s
    platter_capacity: int = paper.TABLE1_OPTICAL.capacity_bytes
    #: Files per platter, derived from typical small-file sizes.
    files_per_platter: int = 400


class OpticalJukebox(StorageDevice):
    """A robotic optical-disk library serving small files."""

    name = "jukebox"

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: JukeboxConfig = JukeboxConfig(),
    ) -> None:
        super().__init__(sim, rng)
        self.config = config
        self._drives = Resource(sim, config.n_drives, name="jukebox-drives")
        self._picker = Resource(sim, config.n_pickers, name="jukebox-picker")
        self._mounted: dict = {}  # drive slot bookkeeping is statistical
        self.swaps = 0
        self.platter_hits = 0

    def platter_of(self, request: MSSRequest) -> int:
        """Directory-affine platter placement."""
        directory = request.directory or request.path.rsplit("/", 1)[0]
        return stable_hash(directory) % 10_000

    def submit(self, request: MSSRequest, on_complete: CompletionCallback) -> None:
        """Serve one request: drive, (maybe) platter swap, seek, stream."""
        request.phase = Phase.QUEUED_DEVICE
        platter = self.platter_of(request)
        request.served_by = self.name

        def with_drive() -> None:
            request.device_grant_time = self.sim.now
            if self._mounted.get(platter):
                self.platter_hits += 1
                request.mount_done_time = self.sim.now
                begin_access()
            else:
                request.mount_was_needed = True
                request.phase = Phase.MOUNTING
                self._picker.acquire(do_swap)

        def do_swap() -> None:
            delay = float(self.rng.uniform(self.config.swap_min, self.config.swap_max))
            self.sim.schedule(delay, swap_done)

        def swap_done() -> None:
            self._picker.release()
            self._mounted[platter] = True
            self.swaps += 1
            request.mount_done_time = self.sim.now
            begin_access()

        def begin_access() -> None:
            request.phase = Phase.SEEKING
            access = float(
                self.rng.uniform(
                    0.5 * self.config.access_seconds, 1.5 * self.config.access_seconds
                )
            )
            self.sim.schedule(access, begin_transfer)

        def begin_transfer() -> None:
            request.seek_done_time = self.sim.now
            request.first_byte_time = self.sim.now
            request.phase = Phase.TRANSFERRING
            duration = 0.05 + request.size / self.config.transfer_rate
            self.sim.schedule(duration, done)

        def done() -> None:
            self._drives.release()
            self._finish(request, on_complete)

        self._drives.acquire(with_drive)
