"""Human operators who fetch shelved cartridges.

"an operator must intervene to mount any non-silo tapes which are
requested" (Section 3.2).  The manual mount averages about two minutes but
has a very long tail -- "10% of all manual tape mounts were not completed
within 400 seconds" -- because operators handle other duties, walk the
tape library, and thin out overnight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mss.kernel import Resource, Simulator
from repro.util.units import DAY, HOUR


@dataclass(frozen=True)
class OperatorConfig:
    """Staffing and fetch-time parameters."""

    n_operators: int = 3
    fetch_median: float = 108.0        # walk to the shelf and back
    fetch_sigma: float = 0.45
    #: Probability the operator is busy elsewhere (console, backups) and
    #: the fetch stalls; stall duration is exponential.
    distraction_probability: float = 0.07
    distraction_mean: float = 200.0
    #: Night shift (22:00-06:00) runs with a skeleton crew.
    night_factor: float = 1.45
    night_start_hour: int = 22
    night_end_hour: int = 6


class OperatorPool:
    """A small pool of humans executing cartridge fetch tasks."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: OperatorConfig = OperatorConfig(),
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.config = config
        self._staff = Resource(sim, config.n_operators, name="operators")
        self.fetches_completed = 0

    def _is_night(self) -> bool:
        hour = int((self.sim.now % DAY) // HOUR)
        cfg = self.config
        if cfg.night_start_hour <= cfg.night_end_hour:
            return cfg.night_start_hour <= hour < cfg.night_end_hour
        return hour >= cfg.night_start_hour or hour < cfg.night_end_hour

    def sample_fetch_seconds(self) -> float:
        """One fetch duration, including distraction stalls and shifts."""
        cfg = self.config
        duration = float(self.rng.lognormal(np.log(cfg.fetch_median), cfg.fetch_sigma))
        if self.rng.random() < cfg.distraction_probability:
            duration += float(self.rng.exponential(cfg.distraction_mean))
        if self._is_night():
            duration *= cfg.night_factor
        return duration

    def fetch(self, done: Callable[[], None]) -> None:
        """Dispatch a fetch; ``done`` runs when the cartridge is at the
        drive (includes queueing for a free operator)."""

        def start() -> None:
            self.sim.schedule(self.sample_fetch_seconds(), finish)

        def finish() -> None:
            self.fetches_completed += 1
            self._staff.release()
            done()

        self._staff.acquire(start)

    @property
    def mean_queue_wait(self) -> float:
        """Average time fetch tasks waited for a free operator."""
        return self._staff.mean_wait
