"""Tape libraries: the StorageTek silo and the manual shelf station.

Both share drive mechanics (mount / seek / transfer / rewind); they differ
in who fetches the cartridge -- a robot arm in under ten seconds, or a
human operator in about two minutes with a long tail (Section 5.1.1).

Cartridge affinity matters: once a cartridge is mounted, follow-on requests
for files on the same cartridge skip the mount entirely, which is how
batch jobs reading consecutive history files see mostly seek-limited
latencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.mss.devices import CompletionCallback, StorageDevice, stable_hash
from repro.mss.kernel import Resource, Simulator
from repro.mss.operators import OperatorPool
from repro.mss.request import MSSRequest, Phase

_LEAF_SEQUENCE = re.compile(r"(\d+)")


@dataclass(frozen=True)
class TapeConfig:
    """Parameters common to both tape stations."""

    n_drives: int = 4
    #: Tape positioning: reads land anywhere on the reel (mean ~50 s,
    #: Section 5.1.1); writes append near the load point.
    seek_read_min: float = 10.0
    seek_read_max: float = 95.0
    seek_write_min: float = 5.0
    seek_write_max: float = 45.0
    #: Rewind + unload before a cartridge swap.
    rewind_mean: float = 18.0
    #: 200 MB cartridges hold only a few supercomputer files.
    files_per_cartridge: int = 3
    #: Drive load/thread time once the cartridge arrives.
    load_time: float = 4.0


@dataclass
class TapeDrive:
    """One transport: its gate plus the currently mounted cartridge."""

    index: int
    gate: Resource
    mounted: Optional[int] = None
    pending: int = field(default=0)  # requests routed here, not yet done
    #: Cartridge of the most recently routed request; queued requests for
    #: the same cartridge follow it to this drive instead of triggering a
    #: second mount elsewhere.
    target: Optional[int] = None


class TapeLibrary(StorageDevice):
    """Drive pool + cartridge fetch mechanism (subclasses provide fetch)."""

    name = "tape"

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: TapeConfig = TapeConfig(),
    ) -> None:
        super().__init__(sim, rng)
        self.config = config
        self.drives: List[TapeDrive] = [
            TapeDrive(index=i, gate=Resource(sim, 1, name=f"{self.name}-drive-{i}"))
            for i in range(config.n_drives)
        ]
        self.mounts_performed = 0
        self.mount_hits = 0  # requests served without a mount

    # ------------------------------------------------------------------
    # Cartridge geometry

    def cartridge_of(self, request: MSSRequest) -> int:
        """Deterministic file -> cartridge mapping with locality.

        Files of one directory fill cartridges in sequence order, so the
        consecutive history files a batch job reads share cartridges.
        """
        directory = request.directory or request.path.rsplit("/", 1)[0]
        leaf = request.path.rsplit("/", 1)[-1]
        match = _LEAF_SEQUENCE.search(leaf)
        sequence = int(match.group(1)) if match else stable_hash(leaf) % 1000
        return stable_hash(directory) + sequence // self.config.files_per_cartridge

    # ------------------------------------------------------------------
    # Fetch mechanism (robot or human), provided by subclasses

    def _fetch_cartridge(self, cartridge: int, done: Callable[[], None]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Drive routing

    def _pick_drive(self, cartridge: int) -> TapeDrive:
        """Prefer the drive holding -- or already heading for -- this
        cartridge, then the least loaded drive."""
        for drive in self.drives:
            if drive.target == cartridge or (
                drive.pending == 0 and drive.mounted == cartridge
            ):
                return drive
        return min(self.drives, key=lambda d: (d.pending, d.index))

    def submit(self, request: MSSRequest, on_complete: CompletionCallback) -> None:
        """Route to a drive; mount if needed; seek; transfer."""
        request.phase = Phase.QUEUED_DEVICE
        cartridge = self.cartridge_of(request)
        drive = self._pick_drive(cartridge)
        drive.pending += 1
        drive.target = cartridge
        request.served_by = f"{self.name}-drive-{drive.index}"

        def with_drive() -> None:
            request.device_grant_time = self.sim.now
            if drive.mounted == cartridge:
                self.mount_hits += 1
                request.mount_done_time = self.sim.now
                begin_seek()
                return
            request.mount_was_needed = True
            request.phase = Phase.MOUNTING
            delay = 0.0
            if drive.mounted is not None:
                delay += float(self.rng.exponential(self.config.rewind_mean))
            drive.mounted = None

            def after_rewind() -> None:
                self._fetch_cartridge(cartridge, after_fetch)

            def after_fetch() -> None:
                self.sim.schedule(self.config.load_time, after_load)

            def after_load() -> None:
                drive.mounted = cartridge
                self.mounts_performed += 1
                request.mount_done_time = self.sim.now
                begin_seek()

            self.sim.schedule(delay, after_rewind)

        def begin_seek() -> None:
            request.phase = Phase.SEEKING
            if request.is_write:
                seek = self.rng.uniform(
                    self.config.seek_write_min, self.config.seek_write_max
                )
            else:
                seek = self.rng.uniform(
                    self.config.seek_read_min, self.config.seek_read_max
                )
            self.sim.schedule(float(seek), begin_transfer)

        def begin_transfer() -> None:
            request.seek_done_time = self.sim.now
            request.first_byte_time = self.sim.now
            request.phase = Phase.TRANSFERRING
            self.sim.schedule(self.sample_transfer_seconds(request.size), done)

        def done() -> None:
            drive.pending -= 1
            drive.gate.release()
            self._finish(request, on_complete)

        drive.gate.acquire(with_drive)

    @property
    def mount_hit_ratio(self) -> float:
        """Fraction of requests that found their cartridge mounted."""
        total = self.mounts_performed + self.mount_hits
        return self.mount_hits / total if total else 0.0


class TapeSilo(TapeLibrary):
    """StorageTek 4400 ACS: robot arms fetch cartridges in seconds."""

    name = "silo"

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: TapeConfig = TapeConfig(),
        n_robots: int = 2,
        pick_min: float = 4.0,
        pick_max: float = 8.0,
    ) -> None:
        super().__init__(sim, rng, config)
        self._robots = Resource(sim, n_robots, name="silo-robots")
        self._pick_min = pick_min
        self._pick_max = pick_max

    def _fetch_cartridge(self, cartridge: int, done: Callable[[], None]) -> None:
        def picked() -> None:
            delay = float(self.rng.uniform(self._pick_min, self._pick_max))
            self.sim.schedule(delay, finish)

        def finish() -> None:
            self._robots.release()
            done()

        self._robots.acquire(picked)


class ShelfStation(TapeLibrary):
    """Operator-mounted shelf tapes (the "manual" column of Table 3)."""

    name = "shelf"

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        operators: OperatorPool,
        config: Optional[TapeConfig] = None,
    ) -> None:
        super().__init__(sim, rng, config or TapeConfig(n_drives=3))
        self.operators = operators

    def _fetch_cartridge(self, cartridge: int, done: Callable[[], None]) -> None:
        self.operators.fetch(done)
