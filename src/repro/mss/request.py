"""The unit of work flowing through the simulated MSS."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.trace.record import Device


class Phase(enum.Enum):
    """Lifecycle phases of a request, in order."""

    SUBMITTED = "submitted"
    QUEUED_MSCP = "queued-mscp"
    QUEUED_DEVICE = "queued-device"
    MOUNTING = "mounting"
    SEEKING = "seeking"
    TRANSFERRING = "transferring"
    COMPLETE = "complete"


@dataclass
class MSSRequest:
    """One iread/lwrite as seen by the simulator.

    Timestamps are filled in as the request progresses, so the latency
    decomposition of Section 5.1.1 (queue + mount + seek) can be recovered
    per request.
    """

    request_id: int
    path: str
    size: int
    is_write: bool
    device: Device
    arrival_time: float
    directory: str = ""

    # Filled during simulation:
    mscp_grant_time: Optional[float] = None
    device_grant_time: Optional[float] = None
    mount_done_time: Optional[float] = None
    seek_done_time: Optional[float] = None
    first_byte_time: Optional[float] = None
    completion_time: Optional[float] = None
    mount_was_needed: bool = False
    served_by: str = ""
    phase: Phase = field(default=Phase.SUBMITTED)

    @property
    def startup_latency(self) -> float:
        """Seconds from arrival to the first byte (Table 3 metric)."""
        if self.first_byte_time is None:
            raise ValueError(f"request {self.request_id} has no first byte yet")
        return self.first_byte_time - self.arrival_time

    @property
    def transfer_time(self) -> float:
        """Seconds moving data."""
        if self.completion_time is None or self.first_byte_time is None:
            raise ValueError(f"request {self.request_id} is not complete")
        return self.completion_time - self.first_byte_time

    @property
    def response_time(self) -> float:
        """Total time the requester waited."""
        if self.completion_time is None:
            raise ValueError(f"request {self.request_id} is not complete")
        return self.completion_time - self.arrival_time

    @property
    def mscp_queue_time(self) -> float:
        """Wait for a bitfile mover / MSCP slot."""
        if self.mscp_grant_time is None:
            return 0.0
        return self.mscp_grant_time - self.arrival_time

    @property
    def device_queue_time(self) -> float:
        """Wait for the storage device after the MSCP grant (or after
        arrival, when the request went straight to a device)."""
        if self.device_grant_time is None:
            return 0.0
        base = (
            self.mscp_grant_time
            if self.mscp_grant_time is not None
            else self.arrival_time
        )
        return self.device_grant_time - base

    @property
    def mount_time(self) -> float:
        """Media mount portion of the latency (zero on disk)."""
        if self.mount_done_time is None or self.device_grant_time is None:
            return 0.0
        return self.mount_done_time - self.device_grant_time

    @property
    def seek_time(self) -> float:
        """Positioning portion of the latency."""
        if self.seek_done_time is None:
            return 0.0
        base = self.mount_done_time or self.device_grant_time
        if base is None:
            return 0.0
        return self.seek_done_time - base
