"""Measurement side of the MSS simulator.

Collects per-(device, direction) latency samples and the Section 5.1.1
decomposition (queue / mount / seek / transfer) so the analyses can
regenerate Figure 3 and the latency rows of Table 3 from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mss.request import MSSRequest
from repro.trace.record import Device
from repro.util.stats import CDF, StreamingMoments


@dataclass
class LatencyBreakdown:
    """Latency components accumulated for one (device, direction) cell."""

    startup: StreamingMoments = field(default_factory=StreamingMoments)
    mscp_queue: StreamingMoments = field(default_factory=StreamingMoments)
    device_queue: StreamingMoments = field(default_factory=StreamingMoments)
    mount: StreamingMoments = field(default_factory=StreamingMoments)
    seek: StreamingMoments = field(default_factory=StreamingMoments)
    transfer: StreamingMoments = field(default_factory=StreamingMoments)
    samples: List[float] = field(default_factory=list)

    def add(self, request: MSSRequest) -> None:
        """Fold one completed request."""
        self.startup.add(request.startup_latency)
        self.mscp_queue.add(request.mscp_queue_time)
        self.device_queue.add(request.device_queue_time)
        self.mount.add(request.mount_time)
        self.seek.add(request.seek_time)
        self.transfer.add(request.transfer_time)
        self.samples.append(request.startup_latency)

    def cdf(self) -> CDF:
        """Empirical CDF of startup latencies (Figure 3 curve)."""
        return CDF.from_samples(self.samples)


class MetricsCollector:
    """Accumulates completed requests across the simulation."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[Device, bool], LatencyBreakdown] = {}
        self.total_completed = 0

    def record(self, request: MSSRequest) -> None:
        """Fold a completed request into its cell."""
        key = (request.device, request.is_write)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = LatencyBreakdown()
        cell.add(request)
        self.total_completed += 1

    def cell(self, device: Device, is_write: bool) -> LatencyBreakdown:
        """Breakdown for one (device, direction); empty if never hit."""
        return self._cells.get((device, is_write), LatencyBreakdown())

    def device_samples(self, device: Device) -> List[float]:
        """All startup-latency samples for a device, both directions."""
        out: List[float] = []
        for is_write in (False, True):
            out.extend(self.cell(device, is_write).samples)
        return out

    def device_cdf(self, device: Device) -> CDF:
        """Figure 3 curve for one device."""
        return CDF.from_samples(self.device_samples(device))

    def mean_startup(self, device: Device, is_write: bool) -> float:
        """Mean seconds to first byte (a Table 3 cell)."""
        return self.cell(device, is_write).startup.mean

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Nested dict of means, for reports and tests."""
        out: Dict[str, Dict[str, float]] = {}
        for (device, is_write), cell in sorted(
            self._cells.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            name = f"{device.value}-{'write' if is_write else 'read'}"
            out[name] = {
                "count": float(cell.startup.count),
                "startup_mean": cell.startup.mean,
                "mscp_queue_mean": cell.mscp_queue.mean,
                "device_queue_mean": cell.device_queue.mean,
                "mount_mean": cell.mount.mean,
                "seek_mean": cell.seek.mean,
                "transfer_mean": cell.transfer.mean,
            }
        return out
