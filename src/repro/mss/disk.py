"""The MSS online disk: IBM 3380s behind shared 3090 channels.

Latency structure (Section 5.1.1): "For the disk, media mounting time and
seek time are very short, usually well under a second.  While median access
time for the disk was 4 seconds, the distribution has a long tail due to
queueing at individual disks.  Each disk has a relatively low bandwidth, so
a large file takes several seconds to satisfy.  Any requests for this disk
that arrive in the meantime must wait for the long request to finish."

Two queueing points reproduce that shape:

* **spindle affinity** -- files of one directory live on one spindle, so a
  session reading a directory serializes behind its own large transfers;
* **shared channels** -- all spindles funnel through a few 3090 channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mss.devices import CompletionCallback, StorageDevice, stable_hash
from repro.mss.kernel import Resource, Simulator
from repro.mss.request import MSSRequest, Phase


@dataclass(frozen=True)
class DiskConfig:
    """Disk subsystem parameters."""

    n_spindles: int = 8
    n_channels: int = 2
    #: Head positioning: seek + rotation, well under a second.
    position_min: float = 0.02
    position_max: float = 0.9
    #: Fixed per-request controller overhead (MSCP bookkeeping, VTOC walk).
    controller_overhead: float = 1.2
    #: Mean of the additional exponential catalog/VTOC delay on the 3090.
    controller_jitter_mean: float = 2.2


class DiskArray(StorageDevice):
    """The 100 GB of IBM 3380s fronting the MSS."""

    name = "disk"

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: DiskConfig = DiskConfig(),
    ) -> None:
        super().__init__(sim, rng)
        self.config = config
        self._spindles: List[Resource] = [
            Resource(sim, 1, name=f"spindle-{i}") for i in range(config.n_spindles)
        ]
        self._channels = Resource(sim, config.n_channels, name="disk-channels")

    def spindle_of(self, request: MSSRequest) -> int:
        """Directory-affine spindle placement."""
        key = request.directory or request.path
        return stable_hash(key) % self.config.n_spindles

    def submit(self, request: MSSRequest, on_complete: CompletionCallback) -> None:
        """Queue on the owning spindle, then a channel, then transfer."""
        request.phase = Phase.QUEUED_DEVICE
        spindle = self._spindles[self.spindle_of(request)]
        request.served_by = spindle.name

        def with_spindle() -> None:
            request.device_grant_time = self.sim.now
            position = (
                self.config.controller_overhead
                + float(self.rng.exponential(self.config.controller_jitter_mean))
                + float(
                    self.rng.uniform(
                        self.config.position_min, self.config.position_max
                    )
                )
            )
            self.sim.schedule(position, lambda: self._channels.acquire(with_channel))

        def with_channel() -> None:
            request.phase = Phase.TRANSFERRING
            request.seek_done_time = self.sim.now
            request.first_byte_time = self.sim.now
            duration = self.sample_transfer_seconds(request.size)
            self.sim.schedule(duration, done)

        def done() -> None:
            self._channels.release()
            spindle.release()
            self._finish(request, on_complete)

        spindle.acquire(with_spindle)
