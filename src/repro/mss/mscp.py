"""The Mass Storage Control Processor and its bitfile movers.

Section 3.2: user commands send messages to the MSCP on the IBM 3090,
which "locates the file and arranges for any necessary media mounts",
then hands the transfer to one of a limited set of bitfile mover
processes on the Cray.  The mover limit is the MSS-level queueing point:
during request storms every transfer slot is busy and new requests wait
before their device is even approached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.mss.devices import StorageDevice
from repro.mss.kernel import Resource, Simulator
from repro.mss.network import CONTROL_MESSAGE_SECONDS
from repro.mss.request import MSSRequest, Phase
from repro.trace.record import Device

CompletionCallback = Callable[[MSSRequest], None]


@dataclass(frozen=True)
class MSCPConfig:
    """Control-processor parameters."""

    #: Concurrent bitfile movers (simultaneous transfers in flight).
    n_movers: int = 12
    #: Catalog lookup / request parsing on the 3090.
    processing_mean: float = 0.6


class MSCP:
    """Routes requests to devices under the mover concurrency limit."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        devices: Dict[Device, StorageDevice],
        config: MSCPConfig = MSCPConfig(),
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.devices = devices
        self.config = config
        self._movers = Resource(sim, config.n_movers, name="bitfile-movers")
        self.submitted = 0
        self.completed = 0

    def submit(self, request: MSSRequest, on_complete: CompletionCallback) -> None:
        """Accept a request from the Cray side."""
        if request.device not in self.devices:
            raise ValueError(f"no device registered for {request.device}")
        self.submitted += 1
        request.phase = Phase.QUEUED_MSCP

        def with_mover() -> None:
            request.mscp_grant_time = self.sim.now
            overhead = CONTROL_MESSAGE_SECONDS + float(
                self.rng.exponential(self.config.processing_mean)
            )
            self.sim.schedule(overhead, dispatch)

        def dispatch() -> None:
            self.devices[request.device].submit(request, finished)

        def finished(done_request: MSSRequest) -> None:
            self._movers.release()
            self.completed += 1
            done_request.phase = Phase.COMPLETE
            on_complete(done_request)

        self._movers.acquire(with_mover)

    @property
    def mover_queue_wait(self) -> float:
        """Mean time requests waited for a mover slot."""
        return self._movers.mean_wait
