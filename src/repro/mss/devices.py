"""Base machinery shared by the simulated storage devices."""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

import numpy as np

from repro.mss.kernel import Simulator
from repro.mss.request import MSSRequest
from repro.util.units import MB

CompletionCallback = Callable[[MSSRequest], None]

#: Observed device transfer rate (Section 5.1.1: "usually closer to
#: 2 MB/sec" against a 3 MB/s channel peak).
DEFAULT_TRANSFER_RATE = 2.0 * MB
PEAK_TRANSFER_RATE = 3.0 * MB


def stable_hash(text: str) -> int:
    """Deterministic string hash (Python's builtin is salted per-run)."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


class StorageDevice:
    """Common interface: ``submit`` a request, get a callback at the end."""

    name = "device"

    def __init__(self, sim: Simulator, rng: np.random.Generator) -> None:
        self.sim = sim
        self.rng = rng
        self.completed: int = 0

    def submit(self, request: MSSRequest, on_complete: CompletionCallback) -> None:
        """Begin serving a request; must eventually invoke ``on_complete``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers

    def sample_transfer_seconds(self, size: int) -> float:
        """Transfer duration at a noisy ~2 MB/s, capped at channel peak."""
        rate = float(
            min(
                self.rng.lognormal(np.log(DEFAULT_TRANSFER_RATE), 0.22),
                PEAK_TRANSFER_RATE,
            )
        )
        return 0.05 + size / rate

    def _finish(
        self, request: MSSRequest, on_complete: CompletionCallback
    ) -> None:
        request.completion_time = self.sim.now
        self.completed += 1
        on_complete(request)
