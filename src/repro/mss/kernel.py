"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are (time, sequence) ordered,
callbacks run at their scheduled instant, and ties break by scheduling
order.  Everything in :mod:`repro.mss` -- drives, robots, operators,
movers -- is built on this loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised on kernel misuse (scheduling in the past, etc.)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by ``schedule``; allows cancelling a pending event."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled fire time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._heap: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is already at {self.now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process one event; returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap drains (or the clock passes
        ``until``, leaving later events pending)."""
        while True:
            next_time = self.peek()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed


class Resource:
    """A counted resource with a FIFO wait queue (drives, robots, movers).

    Acquire by callback: if a unit is free it is granted immediately
    (synchronously); otherwise the callback queues until a release.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Tuple[int, Callable[[], None]]] = []
        self._wait_seq = itertools.count()
        # Statistics
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self._wait_started: dict = {}

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Callbacks waiting for a unit."""
        return len(self._waiters)

    def acquire(self, callback: Callable[[], None]) -> None:
        """Request one unit; ``callback`` runs when it is granted."""
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            callback()
        else:
            token = next(self._wait_seq)
            self._wait_started[token] = self.sim.now
            self._waiters.append((token, callback))

    def release(self) -> None:
        """Return one unit, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            token, callback = self._waiters.pop(0)
            started = self._wait_started.pop(token)
            self.total_wait_time += self.sim.now - started
            self.total_acquisitions += 1
            callback()
        else:
            self._in_use -= 1

    @property
    def mean_wait(self) -> float:
        """Average time spent queueing for this resource."""
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions
