"""Analyses that regenerate every table and figure in the paper."""

from repro.analysis.compare import Comparison, ComparisonRow
from repro.analysis.filestore import FilestoreStatistics, filestore_statistics
from repro.analysis.intervals import (
    IntervalAnalysis,
    file_interreference,
    fraction_of_file_gaps_under_one_day,
    system_interarrivals,
)
from repro.analysis.latency import (
    LatencyDistributions,
    decomposition_comparison,
    from_metrics,
    latency_distributions,
)
from repro.analysis.overall import OverallStatistics, overall_statistics
from repro.analysis.periodicity import (
    PeriodicityReport,
    analyze_direction,
    periodicity_comparison,
    rate_series,
)
from repro.analysis.rates import (
    RateProfile,
    holiday_read_dip,
    hourly_profile,
    read_growth_factor,
    secular_series,
    weekend_read_dip,
    weekly_profile,
    working_hours_lift,
    write_flatness,
)
from repro.analysis.refcounts import ReferenceCounts, reference_counts
from repro.analysis.render import TextTable, render_cdf, render_series
from repro.analysis.sizes import (
    DirectorySizeDistribution,
    DynamicSizeDistribution,
    StaticSizeDistribution,
    directory_distribution,
    dynamic_distribution,
    static_distribution,
)
from repro.analysis.tables import (
    PyramidLevel,
    crossover_size,
    measured_media_behaviour,
    media_comparison_table,
    pyramid_is_consistent,
    pyramid_table,
    storage_pyramid,
    time_to_last_byte,
    trace_format_table,
)

__all__ = [
    "Comparison",
    "ComparisonRow",
    "DirectorySizeDistribution",
    "DynamicSizeDistribution",
    "FilestoreStatistics",
    "IntervalAnalysis",
    "LatencyDistributions",
    "OverallStatistics",
    "PeriodicityReport",
    "PyramidLevel",
    "RateProfile",
    "ReferenceCounts",
    "StaticSizeDistribution",
    "TextTable",
    "analyze_direction",
    "crossover_size",
    "decomposition_comparison",
    "directory_distribution",
    "dynamic_distribution",
    "file_interreference",
    "filestore_statistics",
    "fraction_of_file_gaps_under_one_day",
    "from_metrics",
    "holiday_read_dip",
    "hourly_profile",
    "latency_distributions",
    "measured_media_behaviour",
    "media_comparison_table",
    "overall_statistics",
    "periodicity_comparison",
    "pyramid_is_consistent",
    "pyramid_table",
    "rate_series",
    "read_growth_factor",
    "reference_counts",
    "render_cdf",
    "render_series",
    "secular_series",
    "static_distribution",
    "storage_pyramid",
    "system_interarrivals",
    "time_to_last_byte",
    "trace_format_table",
    "weekend_read_dip",
    "weekly_profile",
    "working_hours_lift",
    "write_flatness",
]
