"""Analyses that regenerate every table and figure in the paper.

Every stream-consuming analysis has two entry points: the legacy
record-based function (kept as a compatibility API for external
callers) and a ``*_from_batches`` variant that reduces columnar
:class:`~repro.engine.batch.EventBatch` streams in one vectorized pass
(see :mod:`repro.analysis.accumulators`).  The figure/table experiment
path uses only the batch variants.
"""

from repro.analysis import accumulators
from repro.analysis.compare import Comparison, ComparisonRow
from repro.analysis.filestore import (
    FilestoreStatistics,
    filestore_statistics,
    referenced_share,
)
from repro.analysis.intervals import (
    IntervalAnalysis,
    file_interreference,
    file_interreference_from_batches,
    fraction_of_file_gaps_under_one_day,
    system_interarrivals,
    system_interarrivals_from_batches,
)
from repro.analysis.latency import (
    LatencyDistributions,
    decomposition_comparison,
    from_metrics,
    latency_distributions,
    latency_distributions_from_batches,
)
from repro.analysis.overall import (
    OverallStatistics,
    overall_statistics,
    overall_statistics_from_batches,
)
from repro.analysis.periodicity import (
    PeriodicityReport,
    analyze_direction,
    analyze_direction_from_batches,
    periodicity_comparison,
    periodicity_comparison_from_batches,
    rate_series,
    rate_series_from_batches,
)
from repro.analysis.tenants import (
    TenantBreakdown,
    tenant_breakdown_from_batches,
)
from repro.analysis.rates import (
    RateProfile,
    holiday_read_dip,
    hourly_profile,
    hourly_profile_from_batches,
    read_growth_factor,
    secular_series,
    secular_series_from_batches,
    weekend_read_dip,
    weekly_profile,
    weekly_profile_from_batches,
    working_hours_lift,
    write_flatness,
)
from repro.analysis.refcounts import (
    ReferenceCounts,
    reference_counts,
    reference_counts_from_batches,
)
from repro.analysis.render import TextTable, render_cdf, render_series
from repro.analysis.sizes import (
    DirectorySizeDistribution,
    DynamicSizeDistribution,
    StaticSizeDistribution,
    directory_distribution,
    dynamic_distribution,
    dynamic_distribution_from_batches,
    static_distribution,
)
from repro.analysis.tables import (
    PyramidLevel,
    crossover_size,
    measured_media_behaviour,
    media_comparison_table,
    pyramid_is_consistent,
    pyramid_table,
    storage_pyramid,
    time_to_last_byte,
    trace_format_table,
    verbose_log_sample,
)

__all__ = [
    "Comparison",
    "ComparisonRow",
    "accumulators",
    "DirectorySizeDistribution",
    "DynamicSizeDistribution",
    "FilestoreStatistics",
    "IntervalAnalysis",
    "LatencyDistributions",
    "OverallStatistics",
    "PeriodicityReport",
    "PyramidLevel",
    "RateProfile",
    "ReferenceCounts",
    "StaticSizeDistribution",
    "TextTable",
    "analyze_direction",
    "analyze_direction_from_batches",
    "crossover_size",
    "decomposition_comparison",
    "directory_distribution",
    "dynamic_distribution",
    "dynamic_distribution_from_batches",
    "file_interreference",
    "file_interreference_from_batches",
    "filestore_statistics",
    "fraction_of_file_gaps_under_one_day",
    "from_metrics",
    "holiday_read_dip",
    "hourly_profile",
    "hourly_profile_from_batches",
    "latency_distributions",
    "latency_distributions_from_batches",
    "measured_media_behaviour",
    "media_comparison_table",
    "overall_statistics",
    "overall_statistics_from_batches",
    "periodicity_comparison",
    "periodicity_comparison_from_batches",
    "pyramid_is_consistent",
    "pyramid_table",
    "rate_series",
    "rate_series_from_batches",
    "read_growth_factor",
    "reference_counts",
    "reference_counts_from_batches",
    "referenced_share",
    "render_cdf",
    "render_series",
    "secular_series",
    "secular_series_from_batches",
    "static_distribution",
    "storage_pyramid",
    "system_interarrivals",
    "system_interarrivals_from_batches",
    "TenantBreakdown",
    "tenant_breakdown_from_batches",
    "time_to_last_byte",
    "trace_format_table",
    "verbose_log_sample",
    "weekend_read_dip",
    "weekly_profile",
    "weekly_profile_from_batches",
    "working_hours_lift",
    "write_flatness",
]
