"""Tables 1-2 and Figures 1-2: the specification-level artifacts.

* Table 1 compares optical disk, linear tape and helical-scan tape; we
  reproduce it from the spec constants and *measure* access latency and
  transfer rate on simulated devices built to those specs.
* Table 2 is the trace-record format; reproduced from the codec.
* Figure 1 is the storage pyramid; we verify its monotonicity (cost/GB
  falls and latency rises toward the base).
* Figure 2 is the network topology, backed by :mod:`repro.mss.network`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.analysis.render import TextTable
from repro.core import paper
from repro.trace.record import TraceRecord
from repro.util.units import GB, MB, bytes_to_mb


# ---------------------------------------------------------------------------
# Table 1


def media_comparison_table() -> TextTable:
    """Table 1 as published."""
    table = TextTable(
        ["category"] + [spec.name for spec in paper.TABLE1],
        title="Table 1: optical disk vs tape",
    )
    table.add_row(
        "Media capacity (GB)",
        *(f"{spec.capacity_bytes / GB:g}" for spec in paper.TABLE1),
    )
    table.add_row(
        "Random access (s)",
        *(f"{spec.random_access_seconds:g}" for spec in paper.TABLE1),
    )
    table.add_row(
        "Transfer rate (MB/s)",
        *(f"{spec.transfer_rate_bytes_per_s / MB:g}" for spec in paper.TABLE1),
    )
    table.add_row(
        "Media cost/GB ($)",
        *(f"{spec.cost_per_gb_dollars:g}" for spec in paper.TABLE1),
    )
    return table


def measured_media_behaviour(
    spec: paper.MediaSpec, file_size: int = 80 * MB, n_trials: int = 200, seed: int = 0
) -> Tuple[float, float]:
    """(mean seconds to first byte, effective MB/s) for one medium.

    Builds a toy device from the spec -- random access uniform around the
    quoted figure, transfer at the quoted rate -- and measures whole-file
    fetches, reproducing Table 1's derived trade-off: optical disk wins
    time-to-first-byte, tape wins time-to-last-byte for large files.
    """
    rng = np.random.default_rng(seed)
    access = rng.uniform(
        0.5 * spec.random_access_seconds, 1.5 * spec.random_access_seconds, n_trials
    )
    transfer = file_size / spec.transfer_rate_bytes_per_s
    total = access + transfer
    return float(access.mean()), float(bytes_to_mb(file_size) / total.mean())


def time_to_last_byte(spec: paper.MediaSpec, file_size: int) -> float:
    """Expected seconds to fetch a whole file from one medium."""
    return spec.random_access_seconds + file_size / spec.transfer_rate_bytes_per_s


def crossover_size() -> int:
    """File size where helical tape beats the optical jukebox end-to-end.

    The paper argues supercomputer files are large enough that tape's
    bandwidth beats optical's fast access; this returns the break-even
    size in bytes.
    """
    optical = paper.TABLE1_OPTICAL
    tape = paper.TABLE1_HELICAL_TAPE
    # access_o + s / rate_o = access_t + s / rate_t  ->  solve for s
    rate_delta = 1.0 / optical.transfer_rate_bytes_per_s - 1.0 / tape.transfer_rate_bytes_per_s
    access_delta = tape.random_access_seconds - optical.random_access_seconds
    if rate_delta <= 0:
        raise ValueError("optical must be slower per byte for a crossover")
    return int(access_delta / rate_delta)


# ---------------------------------------------------------------------------
# Table 2


def trace_format_table() -> TextTable:
    """Table 2: the fields of one trace record."""
    table = TextTable(["field", "meaning"], title="Table 2: trace record format")
    rows = (
        ("source", "Device the data came from"),
        ("destination", "Device the data is going to"),
        ("flags", "Read/write, error information, compression information"),
        ("start time", "Seconds since the previous record's start time"),
        ("startup latency", "Seconds until the transfer started"),
        ("transfer time", "Milliseconds moving the data"),
        ("file size", "File size in bytes"),
        ("MSS file name", "File name on the MSS"),
        ("local file name", "File name on the computer"),
        ("user ID", "User who made the request"),
    )
    for field, meaning in rows:
        table.add_row(field, meaning)
    return table


def verbose_log_sample(records: Iterable[TraceRecord]) -> str:
    """A verbose "system log" rendering approximating the original logs.

    Fields are labelled, dates human-readable, and -- as Section 4.1
    notes -- "there are several records in the system log which
    correspond to the same I/O" (request + completion per reference).
    Used by the Table 2 experiment to measure the log-to-trace
    compaction ratio; takes any bounded record iterable (the figure
    path hands it a lazy head of the record view, never a full list).
    """
    from repro.util.timeutil import TraceCalendar

    calendar = TraceCalendar()
    verbose = io.StringIO()
    for seq, record in enumerate(records):
        date = calendar.datetime_at(record.start_time).strftime(
            "%a %b %d %H:%M:%S 1991"
        )
        verbose.write(
            f"MSCP REQUEST SEQ={seq:08d} DATE='{date}' "
            f"SRC={record.source.value} DST={record.destination.value} "
            f"FLAGS={record.flags.encode()} SIZE={record.file_size} "
            f"MSS={record.mss_path} LOCAL={record.local_path} "
            f"USER=user{record.user_id:04d} PROJECT=proj{record.user_id % 97:02d}\n"
        )
        verbose.write(
            f"MOVER COMPLETE SEQ={seq:08d} DATE='{date}' "
            f"STATUS={'ERROR' if record.is_error else 'OK'} "
            f"LATENCY={record.startup_latency:.0f}s "
            f"XFER={record.transfer_time * 1000:.0f}ms "
            f"MSS={record.mss_path} USER=user{record.user_id:04d}\n"
        )
    return verbose.getvalue()


# ---------------------------------------------------------------------------
# Figure 1


@dataclass(frozen=True)
class PyramidLevel:
    """One level of the storage pyramid."""

    name: str
    typical_latency_seconds: float
    cost_per_gb_dollars: float
    typical_capacity_bytes: float


def storage_pyramid() -> List[PyramidLevel]:
    """Figure 1's levels, top (fastest, priciest) to bottom."""
    return [
        PyramidLevel("cpu cache", 2e-8, 1e6, 1e6),
        PyramidLevel("main memory", 2e-7, 6e4, 512e6),
        PyramidLevel("solid state disk", 1e-4, 8e3, 1e9),
        PyramidLevel("magnetic disk", 2e-2, 2e3, 1e11),
        PyramidLevel("robotic tape/optical", 10.0, 25.0, 1.2e12),
        PyramidLevel("shelf tape/optical", 120.0, 2.0, 2.5e13),
    ]


def pyramid_is_consistent(levels: List[PyramidLevel]) -> bool:
    """Latency and capacity rise, cost falls, toward the base."""
    for above, below in zip(levels, levels[1:]):
        if not (
            above.typical_latency_seconds < below.typical_latency_seconds
            and above.cost_per_gb_dollars > below.cost_per_gb_dollars
            and above.typical_capacity_bytes < below.typical_capacity_bytes
        ):
            return False
    return True


def pyramid_table() -> TextTable:
    """Figure 1 rendered as a table."""
    table = TextTable(
        ["level", "latency (s)", "$/GB", "capacity (GB)"],
        title="Figure 1: the storage pyramid",
    )
    for level in storage_pyramid():
        table.add_row(
            level.name,
            f"{level.typical_latency_seconds:g}",
            f"{level.cost_per_gb_dollars:g}",
            f"{level.typical_capacity_bytes / GB:g}",
        )
    return table
