"""Figures 4-6: transfer-rate profiles by hour, weekday, and week.

All three figures plot average data rate (GB per hour) for reads, writes
and their total, binned three different ways.  The writes-flat /
reads-periodic contrast is the paper's core observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis import accumulators
from repro.analysis.render import render_series
from repro.trace.record import TraceRecord
from repro.util.timeutil import DAY_NAMES, TraceCalendar
from repro.util.units import DAY, HOUR, WEEK, bytes_to_gb

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class RateProfile:
    """GB/hour for reads and writes across a set of bins."""

    bin_labels: List[str]
    read_gb_per_hour: np.ndarray
    write_gb_per_hour: np.ndarray

    @property
    def total_gb_per_hour(self) -> np.ndarray:
        """Reads + writes."""
        return self.read_gb_per_hour + self.write_gb_per_hour

    def read_peak_to_trough(self) -> float:
        """How strongly reads swing across the bins."""
        low = self.read_gb_per_hour.min()
        return float(self.read_gb_per_hour.max() / max(low, 1e-12))

    def write_peak_to_trough(self) -> float:
        """How strongly writes swing (should stay near 1)."""
        low = self.write_gb_per_hour.min()
        return float(self.write_gb_per_hour.max() / max(low, 1e-12))

    def render(self, title: str) -> str:
        """ASCII chart in the style of the paper's figures."""
        xs = list(range(len(self.bin_labels)))
        return render_series(
            xs,
            [
                ("reads", self.read_gb_per_hour.tolist()),
                ("writes", self.write_gb_per_hour.tolist()),
                ("total", self.total_gb_per_hour.tolist()),
            ],
            title=title,
            y_label="(bins: " + ", ".join(self.bin_labels[:8]) + " ...)",
        )


def _accumulate(
    records: Iterable[TraceRecord],
    bin_of: "callable",
    n_bins: int,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Sum bytes per bin for reads and writes; also returns the span."""
    read_bytes = np.zeros(n_bins)
    write_bytes = np.zeros(n_bins)
    first = None
    last = None
    for record in records:
        if record.is_error:
            continue
        if first is None:
            first = record.start_time
        last = record.start_time
        idx = bin_of(record.start_time)
        if record.is_write:
            write_bytes[idx] += record.file_size
        else:
            read_bytes[idx] += record.file_size
    if first is None or last is None or last <= first:
        raise ValueError("need a non-degenerate record stream")
    return read_bytes, write_bytes, last - first


def _hourly_labels_and_norm(span: float) -> Tuple[List[str], float]:
    # Each hour-of-day bin collects one hour per traced day.
    return [f"{h:02d}" for h in range(24)], max(span / DAY, 1.0)


def _weekly_labels_and_norm(span: float) -> Tuple[List[str], float]:
    return list(DAY_NAMES), max(span / WEEK, 1.0) * 24.0


def _profile(
    read_bytes: np.ndarray,
    write_bytes: np.ndarray,
    bin_labels: List[str],
    hours_per_bin: float,
) -> RateProfile:
    """Byte sums to GB/hour, numpy end to end."""
    return RateProfile(
        bin_labels=bin_labels,
        read_gb_per_hour=bytes_to_gb(read_bytes) / hours_per_bin,
        write_gb_per_hour=bytes_to_gb(write_bytes) / hours_per_bin,
    )


def hourly_profile(records: Iterable[TraceRecord]) -> RateProfile:
    """Figure 4: average GB/hour by hour of day (0 = midnight)."""
    read_bytes, write_bytes, span = _accumulate(
        records, lambda t: int((t % DAY) // HOUR), 24
    )
    return _profile(read_bytes, write_bytes, *_hourly_labels_and_norm(span))


def weekly_profile(records: Iterable[TraceRecord]) -> RateProfile:
    """Figure 5: average GB/hour by day of week (0 = Sunday)."""
    calendar = TraceCalendar()
    read_bytes, write_bytes, span = _accumulate(
        records, calendar.day_of_week, 7
    )
    return _profile(read_bytes, write_bytes, *_weekly_labels_and_norm(span))


def secular_series(
    records: Iterable[TraceRecord], n_weeks: int = 104
) -> RateProfile:
    """Figure 6: average GB/hour for each trace week."""
    read_bytes, write_bytes, _ = _accumulate(
        records,
        lambda t: min(int(t // WEEK), n_weeks - 1),
        n_weeks,
    )
    hours_per_week = WEEK / HOUR
    return _profile(
        read_bytes, write_bytes, [f"w{w}" for w in range(n_weeks)], hours_per_week
    )


# ---------------------------------------------------------------------------
# Columnar entry points (the figure/table path)


def hourly_profile_from_batches(batches: Iterable["EventBatch"]) -> RateProfile:
    """Figure 4 from a batch stream (one vectorized pass)."""
    read_bytes, write_bytes, span = accumulators.binned_byte_sums(
        batches, accumulators.hour_of_day_bins, 24
    )
    return _profile(read_bytes, write_bytes, *_hourly_labels_and_norm(span))


def weekly_profile_from_batches(batches: Iterable["EventBatch"]) -> RateProfile:
    """Figure 5 from a batch stream (one vectorized pass)."""
    read_bytes, write_bytes, span = accumulators.binned_byte_sums(
        batches, accumulators.day_of_week_bins, 7
    )
    return _profile(read_bytes, write_bytes, *_weekly_labels_and_norm(span))


def secular_series_from_batches(
    batches: Iterable["EventBatch"], n_weeks: int = 104
) -> RateProfile:
    """Figure 6 from a batch stream (one vectorized pass)."""
    read_bytes, write_bytes, _ = accumulators.binned_byte_sums(
        batches, lambda t: accumulators.week_of_trace_bins(t, n_weeks), n_weeks
    )
    return _profile(
        read_bytes, write_bytes, [f"w{w}" for w in range(n_weeks)], WEEK / HOUR
    )


# ---------------------------------------------------------------------------
# Shape checks used by benches and tests


def working_hours_lift(profile: RateProfile) -> float:
    """Read rate in 9-17 h over the 0-6 h small hours (Figure 4 shape)."""
    reads = profile.read_gb_per_hour
    if len(reads) != 24:
        raise ValueError("expects the hourly profile")
    return float(reads[9:17].mean() / max(reads[0:6].mean(), 1e-12))


def weekend_read_dip(profile: RateProfile) -> float:
    """Weekend / weekday read rate (Figure 5 shape; below 1)."""
    reads = profile.read_gb_per_hour
    if len(reads) != 7:
        raise ValueError("expects the weekly profile")
    weekend = (reads[0] + reads[6]) / 2.0
    return float(weekend / max(reads[1:6].mean(), 1e-12))


def read_growth_factor(profile: RateProfile) -> float:
    """Last-quarter over first-quarter read rate (Figure 6 growth)."""
    reads = profile.read_gb_per_hour
    quarter = max(len(reads) // 4, 1)
    return float(reads[-quarter:].mean() / max(reads[:quarter].mean(), 1e-12))


def write_flatness(profile: RateProfile) -> float:
    """Coefficient of variation of writes across bins (small = flat)."""
    writes = profile.write_gb_per_hour
    return float(writes.std() / max(writes.mean(), 1e-12))


def holiday_read_dip(
    profile: RateProfile, holiday_weeks: List[int]
) -> float:
    """Holiday-week read rate over nearby non-holiday weeks (Figure 6).

    Holiday weeks cluster (Christmas through New Year), so each one is
    compared against the nearest week on each side that is *not* itself a
    holiday week.
    """
    reads = profile.read_gb_per_hour
    holidays = set(holiday_weeks)
    n = len(reads)

    def nearest_normal(week: int, step: int) -> Optional[float]:
        probe = week + step
        while 0 <= probe < n:
            if probe not in holidays:
                return float(reads[probe])
            probe += step
        return None

    ratios = []
    for week in holiday_weeks:
        if not 0 <= week < n:
            continue
        neighbours = [
            value
            for value in (nearest_normal(week, -1), nearest_normal(week, +1))
            if value is not None
        ]
        if neighbours and np.mean(neighbours) > 0:
            ratios.append(reads[week] / np.mean(neighbours))
    if not ratios:
        raise ValueError("no in-range holiday weeks")
    return float(np.mean(ratios))
