"""Per-tenant breakdown of Table-3-style metrics for composed scenarios.

One pass over a composed :class:`~repro.engine.batch.EventBatch` stream,
splitting every batch by the compositor's id-remapping contract
(``tenant rank = file_id % k``) and folding each tenant's slice into its
own :class:`~repro.analysis.accumulators.OverallAccumulator`.  Memory is
one accumulator per tenant; the merged event list is never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.analysis.accumulators import OverallAccumulator
from repro.analysis.render import TextTable
from repro.trace.record import Device
from repro.trace.stats import TraceStatistics

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch

_DEVICE_SHORT = {
    Device.MSS_DISK: "disk",
    Device.TAPE_SILO: "silo",
    Device.TAPE_SHELF: "shelf",
}


@dataclass
class TenantBreakdown:
    """Table-3-style statistics per tenant of one composed stream."""

    labels: List[str]
    stats: Dict[str, TraceStatistics]

    def tenant(self, label: str) -> TraceStatistics:
        """One tenant's accumulated statistics."""
        return self.stats[label]

    def render(self, title: str = "Per-tenant overall statistics") -> str:
        """One row per tenant (plus a total row when multi-tenant)."""
        table = TextTable(
            [
                "tenant",
                "refs",
                "read share",
                "GB moved",
                "avg MB",
                "disk/silo/shelf",
                "errors",
            ],
            title=title,
        )
        for label in self.labels + (["total"] if len(self.labels) > 1 else []):
            stats = (
                self.stats[label]
                if label in self.stats
                else _merged_statistics(self.stats.values())
            )
            total = stats.grand_total()
            reads = stats.direction_total(False)
            refs = max(total.references, 1)
            shares = "/".join(
                f"{stats.device_total(device).references / refs:.0%}"
                for device in Device.storage_devices()
            )
            table.add_row(
                label,
                total.references,
                f"{reads.references / refs:.2f}",
                f"{total.gb_transferred:,.1f}",
                f"{total.avg_file_size_mb:.1f}",
                shares,
                f"{stats.error_fraction:.2%}",
            )
        return table.render()


def _merged_statistics(parts: Iterable[TraceStatistics]) -> TraceStatistics:
    """Whole-stream statistics from per-tenant parts (the total row)."""
    merged = TraceStatistics()
    for stats in parts:
        merged.raw_references += stats.raw_references
        for kind, count in stats.error_counts.items():
            merged.error_counts[kind] = merged.error_counts.get(kind, 0) + count
        for device in Device.storage_devices():
            for direction in (False, True):
                cell = stats.cell(device, direction)
                if cell.references == 0:
                    continue
                target = merged._cells.setdefault(
                    (device, direction), type(cell)()
                )
                target.merge(cell)
        for stamp in (stats.first_start, stats.last_start):
            if stamp is None:
                continue
            if merged.first_start is None or stamp < merged.first_start:
                merged.first_start = stamp
            if merged.last_start is None or stamp > merged.last_start:
                merged.last_start = stamp
    return merged


def render_scenario_comparison(
    breakdowns: Dict[str, "TenantBreakdown"],
    title: str = "Scenario comparison (per tenant)",
) -> str:
    """One per-scenario, per-tenant metrics table (``scenario compare``)."""
    table = TextTable(
        ["scenario", "tenant", "refs", "read share", "GB moved", "avg MB",
         "disk/silo/shelf"],
        title=title,
    )
    for scenario, breakdown in breakdowns.items():
        for label in breakdown.labels:
            stats = breakdown.stats[label]
            total = stats.grand_total()
            reads = stats.direction_total(False)
            refs = max(total.references, 1)
            shares = "/".join(
                f"{stats.device_total(device).references / refs:.0%}"
                for device in Device.storage_devices()
            )
            table.add_row(
                scenario,
                label,
                total.references,
                f"{reads.references / refs:.2f}",
                f"{total.gb_transferred:,.1f}",
                f"{total.avg_file_size_mb:.1f}",
                shares,
            )
    return table.render()


def tenant_breakdown_from_batches(
    batches: Iterable["EventBatch"], labels: Sequence[str]
) -> TenantBreakdown:
    """Fold a composed raw stream into per-tenant Table-3 statistics.

    ``labels`` is the compositor's rank-ordered tenant list; with a
    single label the whole stream is attributed to it (the degenerate
    one-tenant scenario and plain traces both work).
    """
    labels = list(labels)
    if not labels:
        raise ValueError("need at least one tenant label")
    k = len(labels)
    accumulators = [OverallAccumulator() for _ in labels]
    for batch in batches:
        if not len(batch):
            continue
        if k == 1:
            accumulators[0].add(batch)
            continue
        ranks = batch.file_id % k
        for rank in range(k):
            part = batch.select(ranks == rank)
            if len(part):
                accumulators[rank].add(part)
    return TenantBreakdown(
        labels=labels,
        stats={
            label: accumulator.statistics()
            for label, accumulator in zip(labels, accumulators)
        },
    )
