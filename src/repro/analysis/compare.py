"""Paper-vs-measured comparison plumbing.

Every bench emits a :class:`Comparison`: named rows pairing a published
value with the measured one.  Shapes, shares and ratios are compared
directly; absolute counts are compared after scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.render import TextTable
from repro.util.stats import relative_error


@dataclass
class ComparisonRow:
    """One measured-vs-published quantity."""

    label: str
    paper_value: float
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def relative_error(self) -> float:
        """|measured - paper| / |paper|."""
        return relative_error(self.measured_value, self.paper_value)


@dataclass
class Comparison:
    """A named set of comparison rows (one per statistic)."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    def add(
        self,
        label: str,
        paper_value: float,
        measured_value: float,
        unit: str = "",
        note: str = "",
    ) -> ComparisonRow:
        """Append one row and return it."""
        row = ComparisonRow(label, float(paper_value), float(measured_value), unit, note)
        self.rows.append(row)
        return row

    def row(self, label: str) -> ComparisonRow:
        """Find a row by label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no comparison row {label!r}")

    def max_relative_error(self) -> float:
        """Worst row."""
        if not self.rows:
            return 0.0
        return max(row.relative_error for row in self.rows)

    def within(self, tolerance: float, labels: Optional[List[str]] = None) -> bool:
        """True when all (or the named) rows are within the tolerance."""
        rows = self.rows if labels is None else [self.row(l) for l in labels]
        return all(row.relative_error <= tolerance for row in rows)

    def render(self) -> str:
        """Readable paper-vs-measured table."""
        table = TextTable(
            ["statistic", "paper", "measured", "rel.err", "note"], title=self.title
        )
        for row in self.rows:
            table.add_row(
                f"{row.label}{f' [{row.unit}]' if row.unit else ''}",
                f"{row.paper_value:,.4g}",
                f"{row.measured_value:,.4g}",
                f"{row.relative_error * 100:.1f}%",
                row.note,
            )
        return table.render()
