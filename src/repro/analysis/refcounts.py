"""Figure 8: per-file reference-count distribution (Section 5.3).

Computed on the deduped stream ("at most one read and one write from any
eight hour period").  The population is the set of files referenced in
the trace, as in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Tuple

import numpy as np

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.analysis.render import render_cdf
from repro.core import paper
from repro.trace.record import TraceRecord
from repro.util.stats import CDF

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class ReferenceCounts:
    """Read/write/total reference counts per referenced file."""

    reads: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        if self.reads.shape != self.writes.shape:
            raise ValueError("reads and writes must align")
        if self.reads.size == 0:
            raise ValueError("no referenced files")

    @property
    def totals(self) -> np.ndarray:
        """Total references per file."""
        return self.reads + self.writes

    @property
    def n_files(self) -> int:
        """Referenced-file population size."""
        return int(self.reads.size)

    # -- headline fractions ------------------------------------------------

    def fraction_never_read(self) -> float:
        """Paper: 50 %."""
        return float((self.reads == 0).mean())

    def fraction_read_once(self) -> float:
        """Paper: 25 %."""
        return float((self.reads == 1).mean())

    def fraction_never_written(self) -> float:
        """Paper: 21 %."""
        return float((self.writes == 0).mean())

    def fraction_written_once(self) -> float:
        """Paper: 65 %."""
        return float((self.writes == 1).mean())

    def fraction_write_once_never_read(self) -> float:
        """Paper: 44 %."""
        return float(((self.writes == 1) & (self.reads == 0)).mean())

    def fraction_exactly_one_access(self) -> float:
        """Paper: 57 %."""
        return float((self.totals == 1).mean())

    def fraction_exactly_two_accesses(self) -> float:
        """Paper: 19 %."""
        return float((self.totals == 2).mean())

    def fraction_more_than(self, count: int) -> float:
        """Paper: 5 % referenced more than ten times."""
        return float((self.totals > count).mean())

    def median_references(self) -> int:
        """Paper: 1 (Smith's 1981 study found 2)."""
        return int(np.median(self.totals))

    # -- distribution ------------------------------------------------------

    def cdf(self, which: str = "total") -> CDF:
        """Cumulative distribution of counts (Figure 8 curves).

        ``which`` is "read", "write", or "total".
        """
        samples = {
            "read": self.reads,
            "write": self.writes,
            "total": self.totals,
        }.get(which)
        if samples is None:
            raise ValueError(f"unknown series {which!r}")
        return CDF.from_samples(samples)

    def render(self) -> str:
        """ASCII Figure 8 (total references)."""
        return render_cdf(
            self.cdf("total"),
            log_x=True,
            x_label="references",
            title="Figure 8: distribution of file reference counts",
            x_limits=(1, paper.MAX_PLOTTED_REFERENCES),
        )

    def comparison(self) -> Comparison:
        """Paper-vs-measured for all Section 5.3 headline numbers."""
        comp = Comparison("Figure 8 / Section 5.3 reference counts")
        comp.add("never read", paper.FRACTION_FILES_NEVER_READ, self.fraction_never_read())
        comp.add("read exactly once", paper.FRACTION_FILES_READ_ONCE, self.fraction_read_once())
        comp.add(
            "never written", paper.FRACTION_FILES_NEVER_WRITTEN, self.fraction_never_written()
        )
        comp.add(
            "written exactly once",
            paper.FRACTION_FILES_WRITTEN_ONCE,
            self.fraction_written_once(),
        )
        comp.add(
            "write-once never-read",
            paper.FRACTION_WRITE_ONCE_NEVER_READ,
            self.fraction_write_once_never_read(),
        )
        comp.add(
            "exactly one access",
            paper.FRACTION_EXACTLY_ONE_ACCESS,
            self.fraction_exactly_one_access(),
        )
        comp.add(
            "exactly two accesses",
            paper.FRACTION_EXACTLY_TWO_ACCESSES,
            self.fraction_exactly_two_accesses(),
        )
        comp.add(
            "more than 10 references",
            paper.FRACTION_MORE_THAN_TEN_REFERENCES,
            self.fraction_more_than(10),
        )
        comp.add("median references", paper.MEDIAN_FILE_REFERENCES, self.median_references())
        return comp


def reference_counts(records: Iterable[TraceRecord]) -> ReferenceCounts:
    """Count per-file reads and writes from a (deduped) record stream."""
    counts: Dict[str, Tuple[int, int]] = {}
    for record in records:
        reads, writes = counts.get(record.mss_path, (0, 0))
        if record.is_write:
            counts[record.mss_path] = (reads, writes + 1)
        else:
            counts[record.mss_path] = (reads + 1, writes)
    if not counts:
        raise ValueError("no records")
    reads = np.fromiter((rw[0] for rw in counts.values()), dtype=np.int64)
    writes = np.fromiter((rw[1] for rw in counts.values()), dtype=np.int64)
    return ReferenceCounts(reads=reads, writes=writes)


def reference_counts_from_batches(
    batches: Iterable["EventBatch"],
) -> ReferenceCounts:
    """Figure 8 from an (already deduped) batch stream.

    Two ``bincount`` calls replace the per-record dict updates; files
    come out in first-appearance order, matching the record path.
    """
    reads, writes = accumulators.file_reference_counts(batches)
    return ReferenceCounts(reads=reads, writes=writes)
