"""Table 3: overall trace statistics.

Builds the references / GB / average-size / seconds-to-first-byte
breakdown by storage device and direction, and compares the
scale-invariant quantities (shares, ratios, sizes, latencies) against the
published table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.analysis.render import TextTable
from repro.core import paper
from repro.trace.record import Device, TraceRecord
from repro.trace.stats import TraceStatistics

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch

_DEVICE_LABELS = {
    Device.MSS_DISK: "Disk",
    Device.TAPE_SILO: "Tape (silo)",
    Device.TAPE_SHELF: "Tape (manual)",
}


@dataclass
class OverallStatistics:
    """Table 3 for one trace."""

    stats: TraceStatistics

    def render(self) -> str:
        """The Table 3 layout as text."""
        table = TextTable(
            ["", "Reads", "Writes", "Total"],
            title="Table 3: overall trace statistics (measured)",
        )
        reads = self.stats.direction_total(False)
        writes = self.stats.direction_total(True)
        total = self.stats.grand_total()
        table.add_row("References", reads.references, writes.references, total.references)
        for device in Device.storage_devices():
            table.add_row(
                f"  {_DEVICE_LABELS[device]}",
                self.stats.cell(device, False).references,
                self.stats.cell(device, True).references,
                self.stats.device_total(device).references,
            )
        table.add_row(
            "GB transferred",
            reads.gb_transferred,
            writes.gb_transferred,
            total.gb_transferred,
        )
        for device in Device.storage_devices():
            table.add_row(
                f"  {_DEVICE_LABELS[device]}",
                self.stats.cell(device, False).gb_transferred,
                self.stats.cell(device, True).gb_transferred,
                self.stats.device_total(device).gb_transferred,
            )
        table.add_row(
            "Avg. file size (MB)",
            reads.avg_file_size_mb,
            writes.avg_file_size_mb,
            total.avg_file_size_mb,
        )
        for device in Device.storage_devices():
            table.add_row(
                f"  {_DEVICE_LABELS[device]}",
                self.stats.cell(device, False).avg_file_size_mb,
                self.stats.cell(device, True).avg_file_size_mb,
                self.stats.device_total(device).avg_file_size_mb,
            )
        table.add_row(
            "Secs to first byte",
            reads.avg_latency_seconds,
            writes.avg_latency_seconds,
            total.avg_latency_seconds,
        )
        for device in Device.storage_devices():
            table.add_row(
                f"  {_DEVICE_LABELS[device]}",
                self.stats.cell(device, False).avg_latency_seconds,
                self.stats.cell(device, True).avg_latency_seconds,
                self.stats.device_total(device).avg_latency_seconds,
            )
        return table.render()

    def comparison(self, include_latency: bool = True) -> Comparison:
        """Scale-invariant paper-vs-measured rows."""
        comp = Comparison("Table 3 (shares, sizes, latencies)")
        total = self.stats.grand_total()
        reads = self.stats.direction_total(False)
        comp.add(
            "read share of references",
            paper.READ_FRACTION,
            reads.references / max(total.references, 1),
        )
        comp.add(
            "read share of GB",
            paper.TABLE3[(None, False)].gb_transferred / paper.TABLE3_TOTAL.gb_transferred,
            reads.gb_transferred / max(total.gb_transferred, 1e-12),
        )
        comp.add("error fraction", paper.ERROR_FRACTION, self.stats.error_fraction)
        for device in Device.storage_devices():
            label = _DEVICE_LABELS[device]
            comp.add(
                f"{label}: share of refs",
                paper.DEVICE_REFERENCE_SHARES[device],
                self.stats.device_total(device).references / max(total.references, 1),
            )
            comp.add(
                f"{label}: avg file size",
                paper.TABLE3_DEVICE_TOTALS[device].avg_file_size_mb,
                self.stats.device_total(device).avg_file_size_mb,
                unit="MB",
            )
            if include_latency:
                comp.add(
                    f"{label}: secs to first byte",
                    paper.TABLE3_DEVICE_TOTALS[device].secs_to_first_byte,
                    self.stats.device_total(device).avg_latency_seconds,
                    unit="s",
                )
        comp.add(
            "avg file size overall",
            paper.TABLE3_TOTAL.avg_file_size_mb,
            total.avg_file_size_mb,
            unit="MB",
        )
        comp.add(
            "read:write ratio",
            paper.READ_WRITE_RATIO,
            self.stats.read_write_ratio(),
        )
        return comp


def overall_statistics(records: Iterable[TraceRecord]) -> OverallStatistics:
    """Accumulate Table 3 from a raw record stream (errors included)."""
    stats = TraceStatistics().add_all(records)
    return OverallStatistics(stats)


def overall_statistics_from_batches(
    batches: Iterable["EventBatch"],
) -> OverallStatistics:
    """Table 3 from a raw batch stream (errors included).

    Whole-column reductions per (device, direction) cell; counts and
    byte totals are bit-identical to the record walk, means agree to
    numerical rounding (numpy vs Welford accumulation order).
    """
    stats = accumulators.OverallAccumulator().add_all(batches).statistics()
    return OverallStatistics(stats)
