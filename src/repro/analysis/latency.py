"""Figure 3 and the Section 5.1.1 latency decomposition.

Figure 3 plots the CDF of latency-to-first-byte for disk, tape-silo and
manual-tape requests.  Section 5.1.1 then derives component costs from
those curves: subtracting disk queueing leaves the silo's pick-and-mount
(~10 s) plus tape seek (~50 s), and the manual mount (~115 s).  With the
DES we can do the same subtraction *and* check it against the simulator's
internal ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

import numpy as np

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.analysis.render import render_cdf
from repro.core import paper
from repro.mss.metrics import MetricsCollector
from repro.trace.record import Device, TraceRecord
from repro.util.stats import CDF

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class LatencyDistributions:
    """Startup-latency samples per storage device."""

    samples: Dict[Device, np.ndarray]

    def cdf(self, device: Device) -> CDF:
        """Figure 3 curve for one device."""
        return CDF.from_samples(self.samples[device])

    def median(self, device: Device) -> float:
        """Median seconds to first byte."""
        return float(np.median(self.samples[device]))

    def mean(self, device: Device) -> float:
        """Mean seconds to first byte."""
        return float(np.mean(self.samples[device]))

    def tail_fraction(self, device: Device, bound: float) -> float:
        """Fraction of requests slower than ``bound`` seconds."""
        return float((self.samples[device] > bound).mean())

    def silo_vs_manual_speedup(self) -> float:
        """How much faster the robot is than the human (paper: 2-2.5x),
        after subtracting the disk's queueing baseline from both."""
        baseline = self.mean(Device.MSS_DISK)
        silo = self.mean(Device.TAPE_SILO) - baseline
        manual = self.mean(Device.TAPE_SHELF) - baseline
        if silo <= 0:
            raise ValueError("silo latency did not exceed the disk baseline")
        return manual / silo

    def render(self) -> str:
        """ASCII Figure 3, one CDF per device."""
        blocks: List[str] = []
        for device, label in (
            (Device.MSS_DISK, "disk"),
            (Device.TAPE_SILO, "tape silo"),
            (Device.TAPE_SHELF, "manual tape"),
        ):
            blocks.append(
                render_cdf(
                    self.cdf(device),
                    log_x=False,
                    x_label="seconds",
                    title=f"Figure 3 ({label}): latency to first byte",
                    x_limits=(0, 400),
                    height=8,
                )
            )
        return "\n\n".join(blocks)

    def comparison(self) -> Comparison:
        """Paper-vs-measured Figure 3 anchors."""
        comp = Comparison("Figure 3 (latency to first byte)")
        comp.add(
            "disk median", paper.DISK_MEDIAN_LATENCY, self.median(Device.MSS_DISK), unit="s"
        )
        for device, label in (
            (Device.MSS_DISK, "disk"),
            (Device.TAPE_SILO, "silo"),
            (Device.TAPE_SHELF, "manual"),
        ):
            comp.add(
                f"{label} mean",
                paper.TABLE3_DEVICE_TOTALS[device].secs_to_first_byte,
                self.mean(device),
                unit="s",
            )
        comp.add(
            "manual tail beyond 400 s",
            paper.MANUAL_TAIL_FRACTION,
            self.tail_fraction(Device.TAPE_SHELF, paper.MANUAL_TAIL_LATENCY),
        )
        comp.add(
            "silo vs manual speedup",
            float(np.mean(paper.SILO_VS_MANUAL_SPEEDUP)),
            self.silo_vs_manual_speedup(),
        )
        return comp


def latency_distributions(records: Iterable[TraceRecord]) -> LatencyDistributions:
    """Collect Figure 3 samples from records carrying latencies."""
    buckets: Dict[Device, List[float]] = {d: [] for d in Device.storage_devices()}
    for record in records:
        if record.is_error:
            continue
        buckets[record.storage_device].append(record.startup_latency)
    samples = {}
    for device, values in buckets.items():
        if not values:
            raise ValueError(f"no successful references to {device}")
        samples[device] = np.asarray(values)
    return LatencyDistributions(samples=samples)


def latency_distributions_from_batches(
    batches: Iterable["EventBatch"],
) -> LatencyDistributions:
    """Figure 3 samples from a batch stream carrying latency columns."""
    return LatencyDistributions(
        samples=accumulators.latency_samples_by_device(batches)
    )


def from_metrics(metrics: MetricsCollector) -> LatencyDistributions:
    """Figure 3 samples straight from a DES replay."""
    samples = {}
    for device in Device.storage_devices():
        values = metrics.device_samples(device)
        if not values:
            raise ValueError(f"no simulated references to {device}")
        samples[device] = np.asarray(values)
    return LatencyDistributions(samples=samples)


def decomposition_comparison(metrics: MetricsCollector) -> Comparison:
    """Section 5.1.1: component costs from the simulator's ground truth."""
    comp = Comparison("Section 5.1.1 latency decomposition")
    silo_read = metrics.cell(Device.TAPE_SILO, False)
    shelf_read = metrics.cell(Device.TAPE_SHELF, False)
    comp.add(
        "silo pick-and-mount", paper.SILO_PICK_AND_MOUNT,
        silo_read.mount.mean, unit="s",
        note="paper: under 10 s",
    )
    comp.add(
        "tape seek", paper.TAPE_AVG_SEEK, silo_read.seek.mean, unit="s"
    )
    comp.add(
        "manual mount", paper.MANUAL_MOUNT_TIME, shelf_read.mount.mean, unit="s",
        note="paper: ~115 s derived, plus queueing",
    )
    return comp
