"""Plain-text rendering: tables and CDF plots for terminal output.

The benches print the paper's tables and figures as ASCII; nothing here
depends on plotting libraries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.stats import CDF


class TextTable:
    """A fixed-column table rendered with aligned ASCII."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cells are stringified (floats get 2 decimals)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:,.2f}")
            elif isinstance(cell, int):
                rendered.append(f"{cell:,}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def render(self) -> str:
        """The table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)


def render_cdf(
    cdf: CDF,
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    x_label: str = "",
    title: str = "",
    x_limits: Optional[Tuple[float, float]] = None,
) -> str:
    """An ASCII rendering of a CDF, in the spirit of the paper's figures."""
    if x_limits is None:
        lo, hi = float(cdf.values[0]), float(cdf.values[-1])
    else:
        lo, hi = x_limits
    if log_x:
        lo = max(lo, 1e-9)
        xs = np.logspace(np.log10(lo), np.log10(max(hi, lo * 10)), width)
    else:
        xs = np.linspace(lo, max(hi, lo + 1), width)
    fractions = np.array([cdf.fraction_at_or_below(x) for x in xs])
    rows = []
    for level in range(height, 0, -1):
        threshold = level / height
        line = "".join("#" if f >= threshold else " " for f in fractions)
        axis = f"{threshold * 100:3.0f}%|"
        rows.append(axis + line)
    rows.append("    +" + "-" * width)
    label = f"    {lo:.3g} .. {hi:.3g}"
    if x_label:
        label += f" ({x_label}{', log scale' if log_x else ''})"
    rows.append(label)
    if title:
        rows.insert(0, title)
    return "\n".join(rows)


def render_series(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """ASCII line chart for rate profiles (Figures 4-6).

    Each named series gets a marker character; values are normalized to
    the global maximum.
    """
    markers = "*o+x#@"
    all_values = [v for _, values in series for v in values]
    peak = max(all_values) if all_values else 1.0
    peak = peak if peak > 0 else 1.0
    n = len(xs)
    columns = [int(i * (width - 1) / max(n - 1, 1)) for i in range(n)]
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, values) in enumerate(series):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            row = int(round((value / peak) * (height - 1)))
            grid[height - 1 - row][columns[i]] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, (name, _) in enumerate(series)
    )
    lines.append(legend)
    for r, row in enumerate(grid):
        prefix = f"{peak:8.2f}|" if r == 0 else " " * 8 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(f"        x: {xs[0]:g} .. {xs[-1]:g} {y_label}")
    return "\n".join(lines)
