"""One-pass numpy reductions over :class:`EventBatch` streams.

Every figure and table that consumes the reference stream reduces it to
a handful of histograms, sample vectors, or per-cell moments.  The
record-based analysis functions do that one Python object at a time;
the helpers here do the same reductions column-at-a-time, so a
multi-month trace is analyzed at memory bandwidth instead of at
``TraceRecord.__init__`` speed.

Each helper consumes an iterable of batches in stream order and matches
its record-based counterpart number for number: integer reductions
(counts, byte totals, sample vectors, gaps) are bit-identical because
the same values are combined in the same order; floating means computed
with numpy instead of Welford updates agree to rounding error (~1e-15
relative), far below any rendered precision.

The analysis modules re-export these as ``*_from_batches`` entry
points; this module holds only the reductions, no figure dataclasses.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.engine.batch import DEVICE_ORDER, EventBatch
from repro.trace.errors import ErrorKind
from repro.trace.record import Device
from repro.trace.stats import CellStats, TraceStatistics
from repro.util.stats import StreamingMoments
from repro.util.units import DAY, HOUR, WEEK

# ---------------------------------------------------------------------------
# Bin index functions (Figures 4-6)


def hour_of_day_bins(times: np.ndarray) -> np.ndarray:
    """Figure 4 bins: hour of day, 0 = midnight."""
    return ((times % DAY) // HOUR).astype(np.int64)


def day_of_week_bins(times: np.ndarray) -> np.ndarray:
    """Figure 5 bins: day of week, 0 = Sunday.

    The trace epoch (1990-10-01) is a Monday, so trace day ``d`` has
    day-of-week ``(d + 1) % 7`` -- the vectorized equivalent of
    :meth:`repro.util.timeutil.TraceCalendar.day_of_week`.
    """
    return ((times // DAY).astype(np.int64) + 1) % 7


def week_of_trace_bins(times: np.ndarray, n_weeks: int) -> np.ndarray:
    """Figure 6 bins: trace week, clamped to the last week."""
    return np.minimum((times // WEEK).astype(np.int64), n_weeks - 1)


def binned_byte_sums(
    batches: Iterable[EventBatch],
    bin_of: Callable[[np.ndarray], np.ndarray],
    n_bins: int,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Per-bin byte totals for reads and writes, plus the traced span.

    One pass: each batch is error-stripped, binned with ``bin_of`` and
    scatter-added into the read/write accumulators.  ``np.add.at``
    applies updates in element order, so the float sums match the
    record loop exactly.
    """
    read_bytes = np.zeros(n_bins)
    write_bytes = np.zeros(n_bins)
    first: Optional[float] = None
    last: Optional[float] = None
    for batch in batches:
        batch = batch.good()
        if not len(batch):
            continue
        if first is None:
            first = float(batch.time[0])
        last = float(batch.time[-1])
        bins = bin_of(batch.time)
        writes = batch.is_write
        np.add.at(read_bytes, bins[~writes], batch.size[~writes])
        np.add.at(write_bytes, bins[writes], batch.size[writes])
    if first is None or last is None or last <= first:
        raise ValueError("need a non-degenerate batch stream")
    return read_bytes, write_bytes, last - first


def binned_byte_series(
    batches: Iterable[EventBatch],
    bin_seconds: float,
    direction: Optional[bool] = None,
    span_seconds: Optional[float] = None,
) -> np.ndarray:
    """Bytes moved per fixed-width time bin (the periodicity series).

    ``direction`` is ``None`` for both, else ``is_write``; mirrors
    :func:`repro.analysis.periodicity.rate_series`.  Streams batch by
    batch with O(n_bins) state: the bin array grows as the horizon
    advances instead of buffering the whole filtered stream.
    """
    fixed_bins = (
        int(np.ceil(span_seconds / bin_seconds))
        if span_seconds is not None
        else None
    )
    series = np.zeros(fixed_bins if fixed_bins is not None else 1024)
    horizon = 0.0
    matched = 0
    for batch in batches:
        batch = batch.good()
        if direction is not None:
            batch = batch.select(batch.is_write == direction)
        if not len(batch):
            continue
        matched += len(batch)
        horizon = max(horizon, float(batch.time[-1]))
        idx = (batch.time // bin_seconds).astype(np.int64)
        if fixed_bins is not None:
            idx = np.minimum(idx, fixed_bins - 1)
        else:
            top = int(idx[-1])  # times are nondecreasing within a batch
            if top >= series.size:
                series = np.concatenate(
                    [series, np.zeros(max(series.size, top + 1 - series.size))]
                )
        np.add.at(series, idx, batch.size)
    if not matched:
        raise ValueError("no matching events")
    if fixed_bins is not None:
        return series
    n_bins = int(np.ceil((horizon + bin_seconds) / bin_seconds))
    if n_bins <= series.size:
        return series[:n_bins]
    return np.concatenate([series, np.zeros(n_bins - series.size)])


# ---------------------------------------------------------------------------
# Interreference gaps (Figures 7 and 9)


def system_interarrival_gaps(batches: Iterable[EventBatch]) -> np.ndarray:
    """Gaps between consecutive request start times, across batches."""
    parts: List[np.ndarray] = []
    prev: Optional[float] = None
    count = 0
    for batch in batches:
        if not len(batch):
            continue
        count += len(batch)
        if prev is None:
            parts.append(np.diff(batch.time))
        else:
            parts.append(np.diff(batch.time, prepend=prev))
        prev = float(batch.time[-1])
    if count < 2:
        raise ValueError("need at least two events")
    gaps = np.concatenate(parts) if parts else np.empty(0)
    if np.any(gaps < 0):
        raise ValueError("batches must be time-ordered")
    return gaps


def per_file_gaps(batches: Iterable[EventBatch]) -> np.ndarray:
    """Gaps between successive references to the same file.

    Groups a time-ordered stream by ``file_id`` with one stable sort
    and differences within each group.  Gap groups are emitted in
    first-appearance order of their file -- the same order the
    record-path dict walk produces -- so downstream statistics match
    bit for bit.
    """
    id_parts: List[np.ndarray] = []
    time_parts: List[np.ndarray] = []
    for batch in batches:
        if len(batch):
            id_parts.append(batch.file_id)
            time_parts.append(batch.time)
    if not id_parts:
        raise ValueError("no file was referenced twice")
    file_ids = np.concatenate(id_parts)
    times = np.concatenate(time_parts)
    order = np.argsort(file_ids, kind="stable")
    ids_sorted = file_ids[order]
    times_sorted = times[order]
    same_file = ids_sorted[1:] == ids_sorted[:-1]
    if not np.any(same_file):
        raise ValueError("no file was referenced twice")
    gaps = (times_sorted[1:] - times_sorted[:-1])[same_file]
    # Reorder gap groups by the file's first appearance in the stream.
    unique_ids, first_idx = np.unique(file_ids, return_index=True)
    gap_group = np.searchsorted(unique_ids, ids_sorted[1:][same_file])
    return gaps[np.argsort(first_idx[gap_group], kind="stable")]


# ---------------------------------------------------------------------------
# Per-file reference counts (Figure 8)


def file_reference_counts(
    batches: Iterable[EventBatch],
) -> Tuple[np.ndarray, np.ndarray]:
    """(reads, writes) per referenced file, in first-appearance order.

    Expects an error-free (typically deduped) stream, where every
    ``file_id`` is a real namespace file.
    """
    id_parts: List[np.ndarray] = []
    write_parts: List[np.ndarray] = []
    for batch in batches:
        if len(batch):
            id_parts.append(batch.file_id)
            write_parts.append(batch.is_write)
    if not id_parts:
        raise ValueError("no events")
    file_ids = np.concatenate(id_parts)
    is_write = np.concatenate(write_parts)
    _, first_idx, inverse = np.unique(
        file_ids, return_index=True, return_inverse=True
    )
    n_files = first_idx.size
    reads = np.bincount(inverse[~is_write], minlength=n_files).astype(np.int64)
    writes = np.bincount(inverse[is_write], minlength=n_files).astype(np.int64)
    order = np.argsort(first_idx, kind="stable")
    return reads[order], writes[order]


def referenced_file_ids(batches: Iterable[EventBatch]) -> np.ndarray:
    """Distinct real file ids referenced by a stream (errors skipped)."""
    seen: List[np.ndarray] = []
    for batch in batches:
        batch = batch.good()
        if len(batch):
            seen.append(np.unique(batch.file_id))
    if not seen:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(seen))


# ---------------------------------------------------------------------------
# Sample vectors (Figures 3 and 10)


def size_samples_by_direction(
    batches: Iterable[EventBatch],
) -> Tuple[np.ndarray, np.ndarray]:
    """(read sizes, write sizes) of successful references, stream order."""
    reads: List[np.ndarray] = []
    writes: List[np.ndarray] = []
    for batch in batches:
        batch = batch.good()
        if not len(batch):
            continue
        mask = batch.is_write
        reads.append(batch.size[~mask].astype(float))
        writes.append(batch.size[mask].astype(float))
    read_sizes = np.concatenate(reads) if reads else np.empty(0)
    write_sizes = np.concatenate(writes) if writes else np.empty(0)
    return read_sizes, write_sizes


def latency_samples_by_device(
    batches: Iterable[EventBatch],
) -> Dict[Device, np.ndarray]:
    """Startup-latency samples per storage device (successes only)."""
    parts: Dict[Device, List[np.ndarray]] = {d: [] for d in DEVICE_ORDER}
    for batch in batches:
        batch = batch.good()
        n = len(batch)
        if not n:
            continue
        latencies = (
            batch.latency if batch.latency is not None else np.zeros(n)
        )
        for index, device in enumerate(DEVICE_ORDER):
            mask = batch.device == index
            if np.any(mask):
                parts[device].append(latencies[mask])
    samples: Dict[Device, np.ndarray] = {}
    for device, chunks in parts.items():
        if not chunks:
            raise ValueError(f"no successful references to {device}")
        samples[device] = np.concatenate(chunks)
    return samples


# ---------------------------------------------------------------------------
# Table 3 cells


class OverallAccumulator:
    """One-pass Table 3 accumulator over a *raw* batch stream.

    Builds the same :class:`TraceStatistics` the record walk does:
    per-(device, direction) reference counts, byte totals, and
    size/latency/transfer moments, plus error counts and the traced
    span.  Per-batch moments are computed with numpy and folded in with
    the parallel Welford merge.
    """

    def __init__(self) -> None:
        self._cells: Dict[Tuple[Device, bool], CellStats] = {}
        self._error_counts = np.zeros(len(ErrorKind), dtype=np.int64)
        self._raw_references = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None

    def add(self, batch: EventBatch) -> "OverallAccumulator":
        """Fold one batch; returns self for chaining."""
        n = len(batch)
        if n == 0:
            return self
        self._raw_references += n
        if self._first is None:
            self._first = float(batch.time[0])
        self._last = float(batch.time[-1])
        errored = batch.error != 0
        if np.any(errored):
            self._error_counts += np.bincount(
                batch.error[errored].astype(np.int64),
                minlength=self._error_counts.size,
            )
        good = batch.select(~errored) if np.any(errored) else batch
        m = len(good)
        if m == 0:
            return self
        latencies = good.latency if good.latency is not None else np.zeros(m)
        transfers = good.transfer if good.transfer is not None else np.zeros(m)
        for index, device in enumerate(DEVICE_ORDER):
            on_device = good.device == index
            for direction in (False, True):
                mask = on_device & (good.is_write == direction)
                if not np.any(mask):
                    continue
                cell = self._cells.setdefault((device, direction), CellStats())
                sizes = good.size[mask]
                cell.references += int(sizes.size)
                cell.bytes_transferred += int(sizes.sum())
                cell.size_moments.merge(StreamingMoments.from_values(sizes))
                cell.latency_moments.merge(
                    StreamingMoments.from_values(latencies[mask])
                )
                cell.transfer_moments.merge(
                    StreamingMoments.from_values(transfers[mask])
                )
        return self

    def add_all(self, batches: Iterable[EventBatch]) -> "OverallAccumulator":
        """Fold a whole stream; returns self for chaining."""
        for batch in batches:
            self.add(batch)
        return self

    def cells(self) -> Dict[Tuple[Device, bool], CellStats]:
        """The per-(device, direction) cells accumulated so far."""
        return self._cells

    def copy(self) -> "OverallAccumulator":
        """An independent deep copy (for order-independence checks)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def merge(self, other: "OverallAccumulator") -> "OverallAccumulator":
        """Combine two partial accumulators (for parallel Table 3 folds).

        Cells merge via :meth:`CellStats.merge` (parallel Welford for
        the moments), error counts and raw-reference tallies add, and
        the traced span widens to cover both parts.  Counts and byte
        totals are exactly order-independent; moment merges commute up
        to float rounding (pinned by the invariant suite).
        """
        for key, cell in other._cells.items():
            mine = self._cells.get(key)
            if mine is None:
                self._cells[key] = CellStats().merge(cell)
            else:
                mine.merge(cell)
        self._error_counts = self._error_counts + other._error_counts
        self._raw_references += other._raw_references
        firsts = [t for t in (self._first, other._first) if t is not None]
        lasts = [t for t in (self._last, other._last) if t is not None]
        self._first = min(firsts) if firsts else None
        self._last = max(lasts) if lasts else None
        return self

    def statistics(self) -> TraceStatistics:
        """The accumulated cells as a :class:`TraceStatistics`."""
        error_counts = {
            ErrorKind(kind): int(count)
            for kind, count in enumerate(self._error_counts)
            if kind and count
        }
        return TraceStatistics.from_parts(
            cells=self._cells,
            raw_references=self._raw_references,
            error_counts=error_counts,
            first_start=self._first,
            last_start=self._last,
        )
