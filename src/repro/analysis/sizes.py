"""Figures 10-12: file and directory size distributions.

* Figure 10 (dynamic): sizes of transferred files, one count per access,
  split by direction, plus the byte-weighted ("data read/written") curves.
* Figure 11 (static): sizes of the files on the MSS, one count per file,
  plus the byte-weighted curve.
* Figure 12: directory sizes -- fraction of directories, of files, and of
  data in directories of at most N files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List

import numpy as np

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.analysis.render import render_cdf
from repro.core import paper
from repro.namespace.model import Namespace
from repro.trace.record import TraceRecord
from repro.util.stats import CDF, top_fraction_share
from repro.util.units import MB

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class DynamicSizeDistribution:
    """Figure 10: per-access size samples."""

    read_sizes: np.ndarray
    write_sizes: np.ndarray

    def files_read_cdf(self) -> CDF:
        """Fraction of read requests at or below a size."""
        return CDF.from_samples(self.read_sizes)

    def files_written_cdf(self) -> CDF:
        """Fraction of write requests at or below a size."""
        return CDF.from_samples(self.write_sizes)

    def data_read_cdf(self) -> CDF:
        """Fraction of bytes read moved in files at or below a size."""
        return CDF.from_samples(self.read_sizes, weights=self.read_sizes)

    def data_written_cdf(self) -> CDF:
        """Fraction of bytes written moved in files at or below a size."""
        return CDF.from_samples(self.write_sizes, weights=self.write_sizes)

    def fraction_requests_under(self, size_bytes: float) -> float:
        """All-request fraction at or below a size (paper: 40 % <= 1 MB)."""
        all_sizes = np.concatenate([self.read_sizes, self.write_sizes])
        return float((all_sizes <= size_bytes).mean())

    def write_bump_strength(
        self, center: float = paper.WRITE_SIZE_BUMP_BYTES, width: float = 0.25
    ) -> float:
        """Write-request mass within +-width (relative) of the 8 MB atom,
        relative to the same window for reads.  > 1 means the bump is a
        write-side feature, as in Figure 10."""
        lo, hi = center * (1 - width), center * (1 + width)
        writes = float(((self.write_sizes >= lo) & (self.write_sizes <= hi)).mean())
        reads = float(((self.read_sizes >= lo) & (self.read_sizes <= hi)).mean())
        return writes / max(reads, 1e-12)

    def render(self) -> str:
        """ASCII Figure 10 (files read)."""
        return render_cdf(
            CDF.from_samples(self.read_sizes / MB),
            log_x=True,
            x_label="MB",
            title="Figure 10: size distribution of transferred files (reads)",
            x_limits=(0.1, 350),
        )

    def comparison(self) -> Comparison:
        """Paper-vs-measured Figure 10 anchors."""
        comp = Comparison("Figure 10 (dynamic sizes)")
        comp.add(
            "requests <= 1 MB",
            paper.FRACTION_REQUESTS_UNDER_1MB,
            self.fraction_requests_under(1 * MB),
        )
        comp.add(
            "write bump at 8 MB (w/r mass ratio)",
            1.5,
            self.write_bump_strength(),
            note="qualitative: > 1 means writes bump",
        )
        return comp


def dynamic_distribution(records: Iterable[TraceRecord]) -> DynamicSizeDistribution:
    """Collect per-access sizes from successful references."""
    reads: List[int] = []
    writes: List[int] = []
    for record in records:
        if record.is_error:
            continue
        if record.is_write:
            writes.append(record.file_size)
        else:
            reads.append(record.file_size)
    if not reads or not writes:
        raise ValueError("need both reads and writes")
    return DynamicSizeDistribution(
        read_sizes=np.asarray(reads, dtype=float),
        write_sizes=np.asarray(writes, dtype=float),
    )


def dynamic_distribution_from_batches(
    batches: Iterable["EventBatch"],
) -> DynamicSizeDistribution:
    """Figure 10 from a batch stream (masked column concatenation)."""
    read_sizes, write_sizes = accumulators.size_samples_by_direction(batches)
    if read_sizes.size == 0 or write_sizes.size == 0:
        raise ValueError("need both reads and writes")
    return DynamicSizeDistribution(read_sizes=read_sizes, write_sizes=write_sizes)


@dataclass
class StaticSizeDistribution:
    """Figure 11: one size sample per file."""

    sizes: np.ndarray

    def files_cdf(self) -> CDF:
        """Fraction of files at or below a size."""
        return CDF.from_samples(self.sizes)

    def data_cdf(self) -> CDF:
        """Fraction of bytes in files at or below a size."""
        return CDF.from_samples(self.sizes, weights=self.sizes)

    def fraction_files_under(self, size_bytes: float) -> float:
        """Paper: ~50 % of files under 3 MB."""
        return float((self.sizes < size_bytes).mean())

    def fraction_data_under(self, size_bytes: float) -> float:
        """Paper: those files hold ~2 % of the data."""
        total = self.sizes.sum()
        return float(self.sizes[self.sizes < size_bytes].sum() / max(total, 1))

    def render(self) -> str:
        """ASCII Figure 11 (files curve)."""
        return render_cdf(
            CDF.from_samples(self.sizes / MB),
            log_x=True,
            x_label="MB",
            title="Figure 11: distribution of file sizes on the MSS",
            x_limits=(0.02, 350),
        )

    def comparison(self) -> Comparison:
        """Paper-vs-measured Figure 11 anchors."""
        bound = paper.STATIC_SMALL_FILE_BOUND_BYTES
        comp = Comparison("Figure 11 (static sizes)")
        comp.add(
            "files under 3 MB",
            paper.FRACTION_FILES_UNDER_3MB,
            self.fraction_files_under(bound),
        )
        comp.add(
            "data in files under 3 MB",
            paper.FRACTION_DATA_IN_FILES_UNDER_3MB,
            self.fraction_data_under(bound),
        )
        comp.add(
            "mean file size (MB)",
            paper.AVERAGE_FILE_SIZE_BYTES / MB,
            float(self.sizes.mean()) / MB,
        )
        return comp


def static_distribution(namespace: Namespace) -> StaticSizeDistribution:
    """Figure 11 sample from the namespace (each file counted once)."""
    sizes = np.asarray(namespace.file_sizes(), dtype=float)
    if sizes.size == 0:
        raise ValueError("empty namespace")
    return StaticSizeDistribution(sizes=sizes)


@dataclass
class DirectorySizeDistribution:
    """Figure 12: directory population statistics."""

    file_counts: np.ndarray     # files per directory
    data_bytes: np.ndarray      # bytes per directory

    def dirs_cdf(self) -> CDF:
        """Fraction of directories with at most N files."""
        return CDF.from_samples(self.file_counts)

    def files_cdf(self) -> CDF:
        """Fraction of files living in directories with at most N files."""
        return CDF.from_samples(self.file_counts, weights=np.maximum(self.file_counts, 0))

    def data_cdf(self) -> CDF:
        """Fraction of data living in directories with at most N files."""
        return CDF.from_samples(self.file_counts, weights=self.data_bytes)

    def fraction_dirs_at_most(self, n: int) -> float:
        """Paper: 90 % of directories hold <= 10 files; 75 % hold <= 1."""
        return float((self.file_counts <= n).mean())

    def fraction_files_in_dirs_over(self, n: int) -> float:
        """Paper: over half the files live in directories of > 100 files."""
        total = self.file_counts.sum()
        return float(self.file_counts[self.file_counts > n].sum() / max(total, 1))

    def top_dir_file_share(self, fraction: float = paper.TOP_DIR_FRACTION) -> float:
        """Paper: 5 % of directories hold ~50 % of the files."""
        return top_fraction_share(self.file_counts, fraction)

    def render(self) -> str:
        """ASCII Figure 12 (directories curve)."""
        return render_cdf(
            self.dirs_cdf(),
            log_x=True,
            x_label="files in directory",
            title="Figure 12: distribution of directory sizes",
            x_limits=(1, max(float(self.file_counts.max()), 10.0)),
        )

    def comparison(self) -> Comparison:
        """Paper-vs-measured Figure 12 anchors."""
        comp = Comparison("Figure 12 (directory sizes)")
        comp.add(
            "dirs with <= 1 file",
            paper.FRACTION_DIRS_AT_MOST_1_FILE,
            self.fraction_dirs_at_most(1),
        )
        comp.add(
            "dirs with <= 10 files",
            paper.FRACTION_DIRS_AT_MOST_10_FILES,
            self.fraction_dirs_at_most(10),
        )
        comp.add(
            "files in dirs > 100 files",
            paper.FRACTION_FILES_IN_DIRS_OVER_100,
            self.fraction_files_in_dirs_over(100),
        )
        comp.add(
            "file share of top 5% dirs",
            paper.TOP_DIR_FILE_SHARE,
            self.top_dir_file_share(),
        )
        return comp


def directory_distribution(namespace: Namespace) -> DirectorySizeDistribution:
    """Figure 12 sample from the namespace."""
    counts = np.asarray(namespace.directory_file_counts(), dtype=float)
    data = np.asarray(namespace.directory_data_bytes(), dtype=float)
    if counts.size == 0:
        raise ValueError("empty namespace")
    return DirectorySizeDistribution(file_counts=counts, data_bytes=data)
