"""The abstract's periodicity claim.

"The analysis shows that requests to the MSS are periodic, with one day
and one week periods.  Read requests to the MSS account for the majority
of the periodicity; as write requests are relatively constant."

We bin the byte-rate series hourly, take its spectrum, and check that the
24-hour and 168-hour lines dominate for reads but not for writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.trace.record import TraceRecord
from repro.util.stats import autocorrelation, dominant_periods
from repro.util.units import DAY, HOUR, WEEK

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


def rate_series(
    records: Iterable[TraceRecord],
    bin_seconds: float = HOUR,
    direction: Optional[bool] = None,
    span_seconds: Optional[float] = None,
) -> np.ndarray:
    """Bytes moved per bin; ``direction`` None = both, else is_write."""
    totals: List[float] = []
    horizon = 0.0
    buffered = []
    for record in records:
        if record.is_error:
            continue
        if direction is not None and record.is_write != direction:
            continue
        buffered.append((record.start_time, record.file_size))
        horizon = max(horizon, record.start_time)
    if not buffered:
        raise ValueError("no matching records")
    span = span_seconds if span_seconds is not None else horizon + bin_seconds
    n_bins = int(np.ceil(span / bin_seconds))
    series = np.zeros(n_bins)
    for time, size in buffered:
        idx = min(int(time // bin_seconds), n_bins - 1)
        series[idx] += size
    return series


@dataclass
class PeriodicityReport:
    """Spectral summary of one direction's rate series."""

    direction: str
    top_periods_hours: List[Tuple[float, float]]  # (period, power)
    daily_autocorrelation: float
    weekly_autocorrelation: float

    def has_period(self, hours: float, tolerance: float = 0.2) -> bool:
        """Whether a period appears among the top spectral lines."""
        for period, _ in self.top_periods_hours:
            if abs(period - hours) / hours <= tolerance:
                return True
        return False

    @property
    def periodicity_strength(self) -> float:
        """Max of the day/week autocorrelations (1 = perfectly periodic)."""
        return max(self.daily_autocorrelation, self.weekly_autocorrelation)


def analyze_direction(
    records: Iterable[TraceRecord],
    direction: Optional[bool],
    bin_seconds: float = HOUR,
) -> PeriodicityReport:
    """Build a report for reads (False), writes (True) or both (None)."""
    series = rate_series(records, bin_seconds=bin_seconds, direction=direction)
    return _report_from_series(series, direction, bin_seconds)


def _report_from_series(
    series: np.ndarray, direction: Optional[bool], bin_seconds: float
) -> PeriodicityReport:
    """Spectral/autocorrelation summary of one binned rate series."""
    bins_per_day = int(round(DAY / bin_seconds))
    bins_per_week = int(round(WEEK / bin_seconds))
    max_lag = min(len(series) - 1, bins_per_week)
    acf = autocorrelation(series, max_lag)
    daily = float(acf[bins_per_day]) if bins_per_day <= max_lag else 0.0
    weekly = float(acf[bins_per_week]) if bins_per_week <= max_lag else 0.0
    periods = dominant_periods(series, sample_spacing=bin_seconds, top_k=6)
    label = {None: "total", True: "writes", False: "reads"}[direction]
    return PeriodicityReport(
        direction=label,
        top_periods_hours=[(p / HOUR, power) for p, power in periods],
        daily_autocorrelation=daily,
        weekly_autocorrelation=weekly,
    )


def rate_series_from_batches(
    batches: Iterable["EventBatch"],
    bin_seconds: float = HOUR,
    direction: Optional[bool] = None,
    span_seconds: Optional[float] = None,
) -> np.ndarray:
    """Bytes moved per bin, from a batch stream (vectorized binning)."""
    return accumulators.binned_byte_series(
        batches,
        bin_seconds=bin_seconds,
        direction=direction,
        span_seconds=span_seconds,
    )


def analyze_direction_from_batches(
    batches: Iterable["EventBatch"],
    direction: Optional[bool],
    bin_seconds: float = HOUR,
) -> PeriodicityReport:
    """:func:`analyze_direction` on a batch stream."""
    series = rate_series_from_batches(
        batches, bin_seconds=bin_seconds, direction=direction
    )
    return _report_from_series(series, direction, bin_seconds)


def periodicity_comparison(records_factory) -> Comparison:
    """Paper-vs-measured periodicity claims.

    ``records_factory`` is a zero-argument callable returning a fresh
    record iterator (the series is scanned once per direction).
    """
    reads = analyze_direction(records_factory(), direction=False)
    writes = analyze_direction(records_factory(), direction=True)
    return _periodicity_claims(reads, writes)


def periodicity_comparison_from_batches(
    batches_factory: Callable[[], Iterable["EventBatch"]],
) -> Comparison:
    """Paper-vs-measured periodicity claims from a batch stream.

    ``batches_factory`` is a zero-argument callable returning a fresh
    batch iterator (the series is scanned once per direction).
    """
    reads = analyze_direction_from_batches(batches_factory(), direction=False)
    writes = analyze_direction_from_batches(batches_factory(), direction=True)
    return _periodicity_claims(reads, writes)


def _periodicity_claims(
    reads: PeriodicityReport, writes: PeriodicityReport
) -> Comparison:
    """The abstract's three claims as comparison rows."""
    comp = Comparison("Abstract: request periodicity")
    comp.add(
        "reads: 24 h period present",
        1.0,
        1.0 if reads.has_period(24.0) else 0.0,
        note=f"top periods (h): {[round(p) for p, _ in reads.top_periods_hours[:3]]}",
    )
    comp.add(
        "reads: 168 h period present",
        1.0,
        1.0 if reads.has_period(168.0) else 0.0,
    )
    comp.add(
        "reads daily autocorrelation exceeds writes'",
        1.0,
        1.0 if reads.daily_autocorrelation > writes.daily_autocorrelation else 0.0,
        note=(
            f"reads acf(24h)={reads.daily_autocorrelation:.2f}, "
            f"writes acf(24h)={writes.daily_autocorrelation:.2f}"
        ),
    )
    return comp
