"""Table 4: the referenced file store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

from repro.analysis import accumulators
from repro.analysis.compare import Comparison
from repro.analysis.render import TextTable
from repro.core import paper
from repro.namespace.model import Namespace
from repro.util.units import bytes_to_mb

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class FilestoreStatistics:
    """Table 4 for one namespace, with the generation scale for count
    comparisons."""

    namespace: Namespace
    scale: float = 1.0

    def render(self) -> str:
        """The Table 4 layout as text."""
        ns = self.namespace
        table = TextTable(["statistic", "value"], title="Table 4: file store (measured)")
        table.add_row("Number of files", ns.file_count)
        table.add_row("Average file size (MB)", bytes_to_mb(ns.average_file_size))
        table.add_row("Number of directories", ns.directory_count)
        table.add_row("Largest directory (files)", ns.largest_directory_file_count)
        table.add_row("Maximum directory depth", ns.max_depth)
        table.add_row("Total data (TB)", ns.total_bytes / 1e12)
        return table.render()

    def comparison(self) -> Comparison:
        """Paper-vs-measured; counts are scaled back to full size."""
        ns = self.namespace
        inv = 1.0 / self.scale
        comp = Comparison("Table 4 (file store)")
        comp.add("files (scaled)", paper.FILE_COUNT, ns.file_count * inv)
        comp.add(
            "avg file size",
            bytes_to_mb(paper.AVERAGE_FILE_SIZE_BYTES),
            bytes_to_mb(ns.average_file_size),
            unit="MB",
        )
        comp.add(
            "directories (scaled)", paper.DIRECTORY_COUNT, ns.directory_count * inv
        )
        comp.add(
            "largest directory (scaled)",
            paper.LARGEST_DIRECTORY_FILES,
            ns.largest_directory_file_count * inv,
        )
        comp.add(
            "total data (scaled TB)",
            paper.TOTAL_MSS_BYTES / 1e12,
            ns.total_bytes * inv / 1e12,
        )
        comp.add(
            "max directory depth (bound)",
            paper.MAX_DIRECTORY_DEPTH,
            ns.max_depth,
            note="<= 12 at any scale; = 12 at full scale",
        )
        return comp


def filestore_statistics(namespace: Namespace, scale: float = 1.0) -> FilestoreStatistics:
    """Table 4 from a namespace."""
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    return FilestoreStatistics(namespace=namespace, scale=scale)


def referenced_share(
    batches: Iterable["EventBatch"], namespace: Namespace
) -> Tuple[int, float]:
    """(referenced file count, referenced byte fraction) of the store.

    Table 4 describes "the referenced file store"; this vectorized pass
    over the batch stream reports how much of the generated namespace
    the trace actually touched.
    """
    ids = accumulators.referenced_file_ids(batches)
    if namespace.file_count == 0:
        return 0, 0.0
    sizes = np.fromiter(
        (f.size for f in namespace.files),
        dtype=np.int64,
        count=namespace.file_count,
    )
    total = int(sizes.sum())
    touched = int(sizes[ids].sum()) if ids.size else 0
    return int(ids.size), (touched / total if total else 0.0)
