"""Figures 7 and 9: interreference interval distributions.

* Figure 7: intervals between *successive MSS requests* system-wide.
  90 % under 10 seconds, mean ~18 s -- requests are strongly clustered.
* Figure 9: intervals between successive references *to the same file*
  on the deduped stream.  70 % under a day, with a tail past a year.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

import numpy as np

from repro.analysis import accumulators
from repro.analysis.render import render_cdf
from repro.trace.record import TraceRecord
from repro.util.stats import CDF
from repro.util.units import DAY

if TYPE_CHECKING:
    from repro.engine.batch import EventBatch


@dataclass
class IntervalAnalysis:
    """A sample of intervals plus its derived statistics."""

    intervals: np.ndarray  # seconds

    def __post_init__(self) -> None:
        if self.intervals.size == 0:
            raise ValueError("no intervals to analyze")

    @property
    def mean(self) -> float:
        """Mean interval in seconds."""
        return float(self.intervals.mean())

    def cdf(self) -> CDF:
        """Empirical CDF of the intervals."""
        return CDF.from_samples(self.intervals)

    def fraction_below(self, seconds: float) -> float:
        """P(interval < bound)."""
        return float((self.intervals < seconds).mean())

    def render(self, title: str, unit_seconds: float = 1.0, unit: str = "s") -> str:
        """ASCII CDF in the figure's units."""
        scaled = CDF.from_samples(self.intervals / unit_seconds)
        return render_cdf(scaled, log_x=True, x_label=unit, title=title)


def system_interarrivals(records: Iterable[TraceRecord]) -> IntervalAnalysis:
    """Figure 7: gaps between consecutive request start times."""
    times = [r.start_time for r in records]
    if len(times) < 2:
        raise ValueError("need at least two records")
    arr = np.asarray(times)
    gaps = np.diff(arr)
    if np.any(gaps < 0):
        raise ValueError("records must be time-ordered")
    return IntervalAnalysis(intervals=gaps)


def file_interreference(records: Iterable[TraceRecord]) -> IntervalAnalysis:
    """Figure 9: per-file gaps on an already-deduped stream."""
    by_file: Dict[str, List[float]] = {}
    for record in records:
        by_file.setdefault(record.mss_path, []).append(record.start_time)
    gaps: List[float] = []
    for times in by_file.values():
        if len(times) < 2:
            continue
        times.sort()
        gaps.extend(float(b - a) for a, b in zip(times, times[1:]))
    if not gaps:
        raise ValueError("no file was referenced twice")
    return IntervalAnalysis(intervals=np.asarray(gaps))


def fraction_of_file_gaps_under_one_day(records: Iterable[TraceRecord]) -> float:
    """The Figure 9 headline number."""
    return file_interreference(records).fraction_below(DAY)


# ---------------------------------------------------------------------------
# Columnar entry points (the figure/table path)


def system_interarrivals_from_batches(
    batches: Iterable["EventBatch"],
) -> IntervalAnalysis:
    """Figure 7 from a batch stream (vectorized diff, no record objects)."""
    return IntervalAnalysis(
        intervals=accumulators.system_interarrival_gaps(batches)
    )


def file_interreference_from_batches(
    batches: Iterable["EventBatch"],
) -> IntervalAnalysis:
    """Figure 9 from an (already deduped) batch stream.

    One stable sort groups the stream by file; the record path's
    per-path dict walk is reproduced gap for gap.
    """
    return IntervalAnalysis(intervals=accumulators.per_file_gaps(batches))
