"""File-size distributions calibrated to the paper.

Figure 11 (static sizes of files on the MSS): roughly half of all files are
under 3 MB yet hold only ~2 % of the data; the average file is 25 MB
(Table 4); no file exceeds 200 MB because "a file cannot span multiple
tapes" (Section 3.1).

We model this as a two-component lognormal mixture: a *small* population
(editor files, scripts, parameter decks) and a *large* population (climate
model history files).  The component parameters below were solved from the
paper's constraints:

* mixture mean 25 MB,
* P(size < 3 MB) ~= 0.5,
* data share of sub-3 MB files ~= 2 %.

Table 3 additionally gives per-device *dynamic* means (disk 3.75 MB, silo
79.67 MB, shelf 47.14 MB); :class:`DeviceSizeModel` draws request sizes per
storage level with those means, which reproduces both the per-device rows
and (through the device mix) the 24.84 MB overall dynamic mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace.record import Device
from repro.util.units import KB, MB, MSS_FILE_SIZE_LIMIT


@dataclass(frozen=True)
class LognormalSpec:
    """A lognormal in bytes, specified by its median and shape."""

    median_bytes: float
    sigma: float

    @property
    def mu(self) -> float:
        """Location parameter (log of the median)."""
        return float(np.log(self.median_bytes))

    @property
    def mean_bytes(self) -> float:
        """Analytic mean exp(mu + sigma^2/2)."""
        return float(np.exp(self.mu + self.sigma ** 2 / 2.0))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sizes in bytes."""
        return rng.lognormal(self.mu, self.sigma, size=n)


#: Small-file component: median ~400 KB, heavy enough spread to reach the
#: 20 KB floor Figure 11's x-axis starts at.
SMALL_FILES = LognormalSpec(median_bytes=0.4 * MB, sigma=1.3)

#: Large-file component: calibrated so the mixture mean lands at 25 MB given
#: the 0.54 small fraction (0.54 * ~0.93 MB + 0.46 * ~53 MB ~= 25 MB).
LARGE_FILES = LognormalSpec(median_bytes=42.0 * MB, sigma=0.80)

#: Fraction of files drawn from the small component.
SMALL_FRACTION = 0.54

#: Smallest file the MSS stores (Figure 11's axis begins at 0.02 MB).
MIN_FILE_BYTES = 20 * KB


@dataclass(frozen=True)
class FileSizeModel:
    """Static file-size mixture for populating the namespace."""

    small: LognormalSpec = SMALL_FILES
    large: LognormalSpec = LARGE_FILES
    small_fraction: float = SMALL_FRACTION
    max_bytes: int = MSS_FILE_SIZE_LIMIT
    min_bytes: int = MIN_FILE_BYTES

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` file sizes in whole bytes, clipped to MSS limits."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        is_small = rng.random(n) < self.small_fraction
        sizes = np.where(
            is_small,
            self.small.sample(rng, n),
            self.large.sample(rng, n),
        )
        sizes = np.clip(sizes, self.min_bytes, self.max_bytes)
        return sizes.astype(np.int64)

    def expected_mean_bytes(self) -> float:
        """Analytic mixture mean (ignoring clipping)."""
        return (
            self.small_fraction * self.small.mean_bytes
            + (1.0 - self.small_fraction) * self.large.mean_bytes
        )


# Per-device dynamic request-size distributions (Table 3 "Avg. file size").
# Disk holds the small files (placement threshold 30 MB), the silo holds the
# bulk large files, and shelf tape holds older, somewhat smaller archives.
_DEVICE_SPECS = {
    Device.MSS_DISK: LognormalSpec(median_bytes=1.1 * MB, sigma=1.566),
    Device.TAPE_SILO: LognormalSpec(median_bytes=66.0 * MB, sigma=0.613),
    Device.TAPE_SHELF: LognormalSpec(median_bytes=36.0 * MB, sigma=0.734),
}


@dataclass(frozen=True)
class DeviceSizeModel:
    """Dynamic (per-request) size model for one storage level."""

    device: Device
    spec: LognormalSpec
    max_bytes: int = MSS_FILE_SIZE_LIMIT
    min_bytes: int = MIN_FILE_BYTES

    @staticmethod
    def for_device(device: Device) -> "DeviceSizeModel":
        """The calibrated model for a storage level."""
        if device not in _DEVICE_SPECS:
            raise ValueError(f"no size model for {device}")
        return DeviceSizeModel(device=device, spec=_DEVICE_SPECS[device])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` request sizes in whole bytes."""
        sizes = self.spec.sample(rng, n)
        sizes = np.clip(sizes, self.min_bytes, self.max_bytes)
        return sizes.astype(np.int64)

    def expected_mean_bytes(self) -> float:
        """Analytic mean (ignoring clipping)."""
        return self.spec.mean_bytes


def split_oversized(total_bytes: int, limit: Optional[int] = None) -> list:
    """Split a Cray-side file into MSS-legal segments.

    "While the Cray supports much larger files on its local disks, they must
    be broken up before they can be written to the MSS." (Section 3.1)
    Returns the list of segment sizes, all but the last equal to the limit.
    """
    cap = MSS_FILE_SIZE_LIMIT if limit is None else limit
    if cap <= 0:
        raise ValueError("limit must be positive")
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    full, remainder = divmod(total_bytes, cap)
    segments = [cap] * full
    if remainder:
        segments.append(remainder)
    return segments
