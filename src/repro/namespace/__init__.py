"""Synthetic MSS namespace: files, directories, and their size shapes."""

from repro.namespace.dirtree import (
    FULL_SCALE_DIRECTORIES,
    FULL_SCALE_FILES,
    FULL_SCALE_LARGEST_DIRECTORY,
    MAX_DIRECTORY_DEPTH,
    NamespaceProfile,
    generate_namespace,
)
from repro.namespace.model import DirectoryEntry, FileEntry, Namespace
from repro.namespace.sizes import (
    LARGE_FILES,
    MIN_FILE_BYTES,
    SMALL_FILES,
    SMALL_FRACTION,
    DeviceSizeModel,
    FileSizeModel,
    LognormalSpec,
    split_oversized,
)

__all__ = [
    "DeviceSizeModel",
    "DirectoryEntry",
    "FULL_SCALE_DIRECTORIES",
    "FULL_SCALE_FILES",
    "FULL_SCALE_LARGEST_DIRECTORY",
    "FileEntry",
    "FileSizeModel",
    "LARGE_FILES",
    "LognormalSpec",
    "MAX_DIRECTORY_DEPTH",
    "MIN_FILE_BYTES",
    "Namespace",
    "NamespaceProfile",
    "SMALL_FILES",
    "SMALL_FRACTION",
    "generate_namespace",
    "split_oversized",
]
