"""Synthetic directory-tree and file-population generator.

Calibrated to Table 4 and Figure 12:

* ~143,245 directories for ~900,000 files (0.159 dirs per file),
* 75 % of directories hold zero or one file, 90 % hold <= 10,
* a handful of giant archive directories -- the largest holds 24,926 files
  (~2.8 % of all files) -- so that ~5 % of directories hold ~50 % of the
  files and data,
* maximum directory depth 12.

All counts scale linearly with the requested file count so the same *shape*
holds for the small namespaces used in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.namespace.model import Namespace
from repro.namespace.naming import directory_component, file_name, join_path
from repro.namespace.sizes import FileSizeModel
from repro.util.rng import make_rng
from repro.util.stats import zipf_weights

#: Table 4 full-scale reference values.
FULL_SCALE_FILES = 900_000
FULL_SCALE_DIRECTORIES = 143_245
FULL_SCALE_LARGEST_DIRECTORY = 24_926
MAX_DIRECTORY_DEPTH = 12


@dataclass(frozen=True)
class NamespaceProfile:
    """Tunable shape of the generated namespace (defaults = NCAR).

    The giant-directory block models the archive directories Figure 12
    shows: the largest holds 24,926 files (2.77 % of all files), and the
    block as a whole carries ``giant_total_share`` of the file population
    in a geometrically decaying sequence -- which is what puts "over half
    of all files ... in large directories" while 75 % of directories hold
    at most one file.
    """

    n_files: int = FULL_SCALE_FILES
    dirs_per_file: float = FULL_SCALE_DIRECTORIES / FULL_SCALE_FILES
    frac_zero_file_dirs: float = 0.40
    frac_one_file_dirs: float = 0.35
    tail_skew: float = 0.6
    #: Share of all files in the single largest directory (Table 4:
    #: 24,926 / 900,000).
    giant_leading_share: float = FULL_SCALE_LARGEST_DIRECTORY / FULL_SCALE_FILES
    #: Geometric decay between successive giant directories.
    giant_decay: float = 0.95
    #: Total share of files living in the giant block.
    giant_total_share: float = 0.45
    max_depth: int = MAX_DIRECTORY_DEPTH
    #: Mean of the per-directory small-file bias (global small fraction).
    small_bias_mean: float = 0.54
    #: Concentration of the per-directory Beta bias; higher = files within a
    #: directory look more alike (climate history dirs are all-large, home
    #: dirs all-small).
    small_bias_strength: float = 2.0
    size_model: FileSizeModel = field(default_factory=FileSizeModel)

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ValueError("n_files must be at least 1")
        if not 0 < self.dirs_per_file:
            raise ValueError("dirs_per_file must be positive")
        if self.frac_zero_file_dirs + self.frac_one_file_dirs >= 1.0:
            raise ValueError("zero- and one-file fractions must leave a tail")
        if self.max_depth < 2:
            raise ValueError("max_depth must be at least 2")

    @staticmethod
    def scaled(scale: float, **overrides) -> "NamespaceProfile":
        """Profile with the file population scaled from full size."""
        if not 0 < scale:
            raise ValueError("scale must be positive")
        n_files = max(10, int(round(FULL_SCALE_FILES * scale)))
        return NamespaceProfile(n_files=n_files, **overrides)


def _plan_file_counts(
    profile: NamespaceProfile, rng: np.random.Generator
) -> List[int]:
    """Decide how many files each directory will hold.

    Returns a list of per-directory counts summing exactly to
    ``profile.n_files``, in no particular order.
    """
    n_files = profile.n_files
    n_dirs = max(3, int(round(n_files * profile.dirs_per_file)))
    n_zero = int(round(profile.frac_zero_file_dirs * n_dirs))
    n_one = int(round(profile.frac_one_file_dirs * n_dirs))
    n_one = min(n_one, n_files)  # cannot give out more singletons than files

    # Giant archive directories: a geometrically decaying block carrying
    # giant_total_share of all files, largest first.
    remaining = n_files - n_one
    giants: List[int] = []
    giant_budget = profile.giant_total_share * n_files
    share = profile.giant_leading_share
    while giant_budget > 0 and len(giants) < n_dirs // 4:
        count = int(round(share * n_files))
        if count < 3 or count > remaining:
            break
        giants.append(count)
        remaining -= count
        giant_budget -= count
        share *= profile.giant_decay

    n_tail = n_dirs - n_zero - n_one - len(giants)
    if n_tail < 0:
        n_zero = max(0, n_zero + n_tail)
        n_tail = 0

    tail_counts: List[int] = []
    if n_tail > 0 and remaining > 0:
        weights = zipf_weights(n_tail, profile.tail_skew)
        raw = weights * remaining
        tail_counts = np.floor(raw).astype(int).tolist()
        # Tail dirs hold at least 2 files (0/1-file dirs are modelled
        # separately); hand out the rounding remainder by largest fraction.
        tail_counts = [max(2, c) for c in tail_counts]
        excess = sum(tail_counts) - remaining
        idx = len(tail_counts) - 1
        while excess > 0 and idx >= 0:
            reducible = tail_counts[idx] - 2
            take = min(reducible, excess)
            tail_counts[idx] -= take
            excess -= take
            idx -= 1
        if excess > 0:
            # Still over budget (tiny namespaces): drop tail dirs to zero.
            idx = len(tail_counts) - 1
            while excess > 0 and idx >= 0:
                take = min(tail_counts[idx], excess)
                tail_counts[idx] -= take
                excess -= take
                idx -= 1
        deficit = remaining - sum(tail_counts)
        pos = 0
        while deficit > 0 and tail_counts:
            tail_counts[pos % len(tail_counts)] += 1
            deficit -= 1
            pos += 1
        if deficit > 0:
            giants.append(deficit)
    elif remaining > 0:
        # No tail directories; fold the leftovers into one more giant.
        giants.append(remaining)

    counts = [0] * n_zero + [1] * n_one + giants + tail_counts
    total = sum(counts)
    residual = n_files - total
    if residual > 0:
        # Spread the rounding residual over the tail so it does not
        # distort the largest directory.
        base = n_zero + n_one + len(giants)
        if tail_counts:
            for i in range(residual):
                counts[base + i % len(tail_counts)] += 1
        elif giants:
            counts[n_zero + n_one] += residual
        else:
            counts[-1] += residual
    elif residual < 0:
        largest = max(range(len(counts)), key=counts.__getitem__)
        counts[largest] += residual
        if counts[largest] < 0:
            raise AssertionError("file-count planning went negative")
    return counts


def _sample_depths(
    n_dirs: int, max_depth: int, rng: np.random.Generator
) -> np.ndarray:
    """Directory depths in [1, max_depth], geometric-ish with mean ~3.5.

    User homes sit at depth 1, project dirs at 2, and working trees below;
    depth tails off so the deepest level is rare but present at scale.
    """
    depths = np.arange(1, max_depth + 1)
    weights = np.exp(-0.55 * (depths - 2.0) ** 2 / 4.0)  # peak near depth 2-3
    weights[0] *= 1.6  # many user homes
    weights = weights / weights.sum()
    return rng.choice(depths, size=n_dirs, p=weights)


def generate_namespace(
    profile: Optional[NamespaceProfile] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Namespace:
    """Generate a namespace matching the profile (default: NCAR shape)."""
    profile = profile or NamespaceProfile()
    if rng is None:
        rng = make_rng(seed)

    counts = _plan_file_counts(profile, rng)
    n_dirs = len(counts)
    rng.shuffle(counts)

    ns = Namespace()
    root = ns.add_directory("/", depth=0, parent_id=None)

    depths = _sample_depths(n_dirs, profile.max_depth, rng)
    # Giant directories live shallow (project archives), so force the
    # largest counts to depth 2 where possible.
    order = np.argsort(counts)[::-1]
    n_giant_like = max(1, int(0.005 * n_dirs))
    for rank in range(min(n_giant_like, n_dirs)):
        depths[order[rank]] = min(2, profile.max_depth)
    # Guarantee a full-depth working chain (Table 4: max depth 12) by
    # pinning one small directory to every level.
    if n_dirs >= profile.max_depth * 3:
        spine = order[-profile.max_depth:]
        for level, idx in enumerate(spine, start=1):
            depths[idx] = level

    # Create directories level by level so parents always exist.
    by_depth: List[List[int]] = [[root.dir_id]] + [[] for _ in range(profile.max_depth)]
    dir_ids: List[Optional[int]] = [None] * n_dirs
    seen_paths = {"/"}
    for depth_level in range(1, profile.max_depth + 1):
        members = [i for i in range(n_dirs) if depths[i] == depth_level]
        if not members:
            continue
        parent_pool = by_depth[depth_level - 1]
        if not parent_pool:
            # No parent exists at the level above (sparse small namespace):
            # pull the orphaned level up to the deepest populated level.
            deepest = max(d for d in range(depth_level) if by_depth[d])
            parent_pool = by_depth[deepest]
            depth_level_actual = deepest + 1
        else:
            depth_level_actual = depth_level
        for i in members:
            parent_id = int(parent_pool[int(rng.integers(0, len(parent_pool)))])
            parent = ns.directories[parent_id]
            component = directory_component(rng, depth_level_actual)
            path = (
                join_path([component])
                if parent.path == "/"
                else f"{parent.path}/{component}"
            )
            if path in seen_paths:
                path = f"{path}.{i}"
            seen_paths.add(path)
            entry = ns.add_directory(path, depth=depth_level_actual, parent_id=parent_id)
            dir_ids[i] = entry.dir_id
            by_depth[depth_level_actual].append(entry.dir_id)

    # Populate files with per-directory size bias.
    bias_a = profile.small_bias_strength
    bias_b = bias_a * (1.0 - profile.small_bias_mean) / profile.small_bias_mean
    size_model = profile.size_model
    for i in range(n_dirs):
        count = counts[i]
        if count == 0:
            continue
        dir_id = dir_ids[i]
        assert dir_id is not None
        directory = ns.directories[dir_id]
        bias = float(rng.beta(bias_a, bias_b))
        is_small = rng.random(count) < bias
        small_sizes = size_model.small.sample(rng, count)
        large_sizes = size_model.large.sample(rng, count)
        sizes = np.where(is_small, small_sizes, large_sizes)
        sizes = np.clip(sizes, size_model.min_bytes, size_model.max_bytes)
        for seq in range(count):
            leaf = file_name(rng, seq)
            path = f"{directory.path}/{leaf}" if directory.path != "/" else f"/{leaf}"
            ns.add_file(path, int(sizes[seq]), dir_id)

    ns.validate()
    return ns
