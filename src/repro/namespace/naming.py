"""Path naming for the synthetic MSS namespace.

Names follow the flavour of an early-90s climate-computing site: per-user
project trees holding model runs, history files, restart dumps and plot
data.  Nothing downstream parses these names -- they only need to be unique,
plausible, and stable under a fixed seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

PROJECT_WORDS = (
    "ccm", "mm4", "ocean", "stratus", "cirrus", "monsoon", "elnino",
    "radiat", "chem", "gcm", "mesos", "paleo", "boundary", "wave",
)

SUBDIR_WORDS = (
    "hist", "rest", "init", "plots", "src", "data", "runs", "diag",
    "monthly", "daily", "spectral", "grid", "forcing", "anl",
)

FILE_STEMS = (
    "h", "r", "d", "sst", "flx", "tmp", "uv", "ps", "precc", "cld",
    "omega", "vort", "thick", "zonal",
)

FILE_SUFFIXES = ("nc", "dat", "cos", "Z", "tar", "grb", "out")


def user_name(user_id: int) -> str:
    """Login-style name for a numeric user id."""
    return f"u{user_id:04d}"


def directory_component(rng: np.random.Generator, depth: int) -> str:
    """One path component for a directory at the given depth."""
    if depth <= 1:
        return user_name(int(rng.integers(0, 4000)))
    if depth == 2:
        word = PROJECT_WORDS[int(rng.integers(0, len(PROJECT_WORDS)))]
        return f"{word}{int(rng.integers(1, 100)):02d}"
    word = SUBDIR_WORDS[int(rng.integers(0, len(SUBDIR_WORDS)))]
    return f"{word}{int(rng.integers(0, 1000)):03d}"


def file_name(rng: np.random.Generator, sequence: int) -> str:
    """A file leaf name; ``sequence`` keeps siblings distinct and ordered.

    Sequential numbering matters: the paper notes that "a researcher
    interested in day 1 of a climate model simulation will usually be
    interested in day 2, and both days will probably be in separate files"
    (Section 5.2.1) -- the workload's cluster model reads consecutive
    sequence numbers from one directory.
    """
    stem = FILE_STEMS[int(rng.integers(0, len(FILE_STEMS)))]
    suffix = FILE_SUFFIXES[int(rng.integers(0, len(FILE_SUFFIXES)))]
    return f"{stem}{sequence:05d}.{suffix}"


def join_path(components: List[str]) -> str:
    """Assemble an absolute MSS path from components."""
    return "/" + "/".join(components)
