"""Data model for the synthetic MSS namespace.

A :class:`Namespace` is the population of files and directories that the
workload generator references and the analyses measure (Table 4, Figures 11
and 12).  It is a plain in-memory structure: lists of
:class:`DirectoryEntry` and :class:`FileEntry` with parent links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.util.units import bytes_to_mb


@dataclass
class DirectoryEntry:
    """One directory: its path, tree position, and member files."""

    dir_id: int
    path: str
    depth: int
    parent_id: Optional[int]
    file_ids: List[int] = field(default_factory=list)
    subdir_ids: List[int] = field(default_factory=list)

    @property
    def file_count(self) -> int:
        """Number of files directly inside this directory."""
        return len(self.file_ids)


@dataclass
class FileEntry:
    """One file on the MSS."""

    file_id: int
    path: str
    size: int
    dir_id: int
    sequence: int  # position among siblings, for sequential-read clustering

    @property
    def size_mb(self) -> float:
        """Size in megabytes (reporting convenience)."""
        return bytes_to_mb(self.size)


class Namespace:
    """The full synthetic file store."""

    def __init__(self) -> None:
        self.directories: List[DirectoryEntry] = []
        self.files: List[FileEntry] = []
        self._by_path: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_directory(
        self, path: str, depth: int, parent_id: Optional[int]
    ) -> DirectoryEntry:
        """Append a directory; parent (if any) must already exist."""
        if parent_id is not None:
            if not 0 <= parent_id < len(self.directories):
                raise ValueError(f"parent directory {parent_id} does not exist")
        entry = DirectoryEntry(
            dir_id=len(self.directories),
            path=path,
            depth=depth,
            parent_id=parent_id,
        )
        self.directories.append(entry)
        if parent_id is not None:
            self.directories[parent_id].subdir_ids.append(entry.dir_id)
        return entry

    def add_file(self, path: str, size: int, dir_id: int) -> FileEntry:
        """Append a file to an existing directory."""
        if not 0 <= dir_id < len(self.directories):
            raise ValueError(f"directory {dir_id} does not exist")
        if size < 0:
            raise ValueError("file size must be non-negative")
        if path in self._by_path:
            raise ValueError(f"duplicate file path {path!r}")
        directory = self.directories[dir_id]
        entry = FileEntry(
            file_id=len(self.files),
            path=path,
            size=size,
            dir_id=dir_id,
            sequence=directory.file_count,
        )
        self.files.append(entry)
        directory.file_ids.append(entry.file_id)
        self._by_path[path] = entry.file_id
        return entry

    # ------------------------------------------------------------------
    # Lookup

    def file_by_path(self, path: str) -> FileEntry:
        """Find a file by its MSS path."""
        try:
            return self.files[self._by_path[path]]
        except KeyError as exc:
            raise KeyError(f"no such file {path!r}") from exc

    def path_of(self, file_id: int) -> str:
        """MSS path for a (possibly negative) trace file id.

        Negative ids mark references to files that never existed (the
        NO_SUCH_FILE errors); they get a synthesized ``/lost`` path.
        This is the one place that mapping lives.
        """
        if file_id >= 0:
            return self.files[file_id].path
        return f"/lost/req{-file_id:07d}.dat"

    def directory_of(self, file_entry: FileEntry) -> DirectoryEntry:
        """The directory containing a file."""
        return self.directories[file_entry.dir_id]

    def sibling_after(self, file_entry: FileEntry) -> Optional[FileEntry]:
        """The next file in sequence within the same directory, if any.

        Used by the cluster model: reading ``h00012.nc`` usually leads to
        reading ``h00013.nc``.
        """
        directory = self.directories[file_entry.dir_id]
        next_seq = file_entry.sequence + 1
        if next_seq < directory.file_count:
            return self.files[directory.file_ids[next_seq]]
        return None

    # ------------------------------------------------------------------
    # Table 4 aggregates

    @property
    def file_count(self) -> int:
        """Number of files (Table 4: ~900,000 at full scale)."""
        return len(self.files)

    @property
    def directory_count(self) -> int:
        """Number of directories (Table 4: 143,245 at full scale)."""
        return len(self.directories)

    @property
    def total_bytes(self) -> int:
        """Total data stored (Table 4: ~23 TB at full scale)."""
        return sum(f.size for f in self.files)

    @property
    def average_file_size(self) -> float:
        """Mean file size in bytes (Table 4: 25 MB)."""
        if not self.files:
            return 0.0
        return self.total_bytes / self.file_count

    @property
    def max_depth(self) -> int:
        """Deepest directory (Table 4: 12)."""
        if not self.directories:
            return 0
        return max(d.depth for d in self.directories)

    @property
    def largest_directory_file_count(self) -> int:
        """Files in the fullest directory (Table 4: 24,926 at full scale)."""
        if not self.directories:
            return 0
        return max(d.file_count for d in self.directories)

    def directory_file_counts(self) -> List[int]:
        """Per-directory file counts (the Figure 12 sample)."""
        return [d.file_count for d in self.directories]

    def directory_data_bytes(self) -> List[int]:
        """Per-directory direct data volume in bytes."""
        totals = [0] * len(self.directories)
        for f in self.files:
            totals[f.dir_id] += f.size
        return totals

    def file_sizes(self) -> List[int]:
        """All file sizes in bytes (the Figure 11 sample)."""
        return [f.size for f in self.files]

    def iter_files(self) -> Iterator[FileEntry]:
        """Iterate files in id order."""
        return iter(self.files)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage."""
        for d in self.directories:
            if d.parent_id is not None:
                parent = self.directories[d.parent_id]
                if parent.depth != d.depth - 1:
                    raise ValueError(
                        f"directory {d.path!r} depth {d.depth} under parent "
                        f"depth {parent.depth}"
                    )
            for fid in d.file_ids:
                if self.files[fid].dir_id != d.dir_id:
                    raise ValueError(f"file {fid} dir link broken")
        for f in self.files:
            if not f.path.startswith("/"):
                raise ValueError(f"relative file path {f.path!r}")
