"""Published values from Miller & Katz (1993), used as calibration targets.

Every number here is transcribed from the paper's tables, figures, or prose
(section references in comments).  The analysis benchmarks print these next
to measured values; the workload generator is calibrated against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.trace.record import Device
from repro.util.units import GB, MB, TB

# ---------------------------------------------------------------------------
# Section 5.1 / Table 3 -- overall trace statistics

#: Raw references in the two-year trace, before error filtering.
RAW_REFERENCES = 3_688_817
#: References that carried errors ("most common ... non-existence of a
#: requested file").
ERROR_REFERENCES = 175_633
#: Fraction of raw references with errors (the paper rounds to 4.76 %).
ERROR_FRACTION = ERROR_REFERENCES / RAW_REFERENCES
#: Successful references analyzed in Table 3.
ANALYZED_REFERENCES = 3_515_794

#: Trace span (Section 5.2.1: "a period of 731 days").
TRACE_SPAN_DAYS = 731

#: Mean interval between MSS requests (Section 5.2.1).
MEAN_SYSTEM_INTERARRIVAL_SECONDS = 18.0
#: Figure 7: "90% of all references followed another by less than 10 s".
SYSTEM_INTERARRIVAL_P90_BOUND_SECONDS = 10.0
SYSTEM_INTERARRIVAL_FRACTION_UNDER_10S = 0.90


@dataclass(frozen=True)
class Table3Cell:
    """One (device, direction) cell of Table 3."""

    references: int
    gb_transferred: float
    avg_file_size_mb: float
    secs_to_first_byte: float


#: Table 3, keyed by (device, is_write).  ``None`` device = all devices.
TABLE3: Dict[Tuple[object, bool], Table3Cell] = {
    (Device.MSS_DISK, False): Table3Cell(1_419_280, 5_080.4, 3.58, 32.47),
    (Device.MSS_DISK, True): Table3Cell(927_722, 3_727.9, 4.02, 25.39),
    (Device.TAPE_SILO, False): Table3Cell(480_545, 38_256.6, 79.61, 115.14),
    (Device.TAPE_SILO, True): Table3Cell(239_162, 19_081.4, 79.78, 81.86),
    (Device.TAPE_SHELF, False): Table3Cell(436_922, 20_589.2, 47.12, 292.58),
    (Device.TAPE_SHELF, True): Table3Cell(12_163, 580.6, 47.74, 203.84),
    (None, False): Table3Cell(2_336_747, 63_926.2, 27.36, 98.10),
    (None, True): Table3Cell(1_179_047, 23_389.9, 19.84, 38.60),
}

#: Table 3 totals row/column.
TABLE3_TOTAL = Table3Cell(3_515_794, 87_316.2, 24.84, 78.18)

#: Device totals (reads + writes), derived from Table 3.
TABLE3_DEVICE_TOTALS: Dict[Device, Table3Cell] = {
    Device.MSS_DISK: Table3Cell(2_347_002, 8_808.3, 3.75, 29.67),
    Device.TAPE_SILO: Table3Cell(719_707, 57_338.1, 79.67, 104.08),
    Device.TAPE_SHELF: Table3Cell(449_085, 21_169.8, 47.14, 290.18),
}

#: Reference share of each storage level (fraction of analyzed refs).
DEVICE_REFERENCE_SHARES: Dict[Device, float] = {
    device: cell.references / ANALYZED_REFERENCES
    for device, cell in TABLE3_DEVICE_TOTALS.items()
}

#: Read fraction of analyzed references ("read/write ratio ... is 2:1").
READ_FRACTION = TABLE3[(None, False)].references / ANALYZED_REFERENCES
READ_WRITE_RATIO = (
    TABLE3[(None, False)].references / TABLE3[(None, True)].references
)

# ---------------------------------------------------------------------------
# Table 4 -- the referenced file store

FILE_COUNT = 900_000                 # "over 900,000 files" (Sections 2.3, 7)
AVERAGE_FILE_SIZE_BYTES = 25 * MB    # Table 4
DIRECTORY_COUNT = 143_245            # Table 4
LARGEST_DIRECTORY_FILES = 24_926     # Table 4
MAX_DIRECTORY_DEPTH = 12             # Table 4
TOTAL_MSS_BYTES = 23 * TB            # Table 4

# ---------------------------------------------------------------------------
# Table 1 -- media comparison


@dataclass(frozen=True)
class MediaSpec:
    """One column of Table 1."""

    name: str
    capacity_bytes: int
    random_access_seconds: float
    transfer_rate_bytes_per_s: float
    cost_per_gb_dollars: float


TABLE1_OPTICAL = MediaSpec("Optical Disk Jukebox", int(1.2 * GB), 7.0, int(0.25 * MB), 80.0)
TABLE1_LINEAR_TAPE = MediaSpec("Linear Tape (IBM 3490)", int(0.4 * GB), 13.0, 6 * MB, 25.0)
TABLE1_HELICAL_TAPE = MediaSpec("Helical-Scan Tape (Ampex D-2)", 25 * GB, 60.0, 15 * MB, 2.0)
TABLE1 = (TABLE1_OPTICAL, TABLE1_LINEAR_TAPE, TABLE1_HELICAL_TAPE)

# ---------------------------------------------------------------------------
# Section 3 -- NCAR system configuration

CRAY_LOCAL_DISK_BYTES = 56 * GB          # "about 56 GB of disks"
CRAY_SCRATCH_BYTES = 47 * GB             # scratch, purged regularly
MSS_ONLINE_DISK_BYTES = 100 * GB         # IBM 3380s on the 3090
SILO_CARTRIDGES = 6_000                  # StorageTek 4400
CARTRIDGE_CAPACITY_BYTES = 200 * MB      # IBM 3480-style
SHELF_TAPE_BYTES = 25 * TB               # "approximately 25 TB ... shelved"
NFS_MOUNTED_BYTES = int(5.5 * GB)
USER_COUNT = 4_000                       # "each of the 4,000 users"
USER_HOME_QUOTA_BYTES = 1 * MB           # "the 1 MB allocated for a ... home"

# ---------------------------------------------------------------------------
# Section 5.1.1 -- latency decomposition (all in seconds)

DISK_MEDIAN_LATENCY = 4.0          # "median access time for the disk was 4 s"
DISK_AVG_QUEUEING = 25.0           # "average queueing time for the disk ... 25 s"
SILO_PICK_AND_MOUNT = 10.0         # "can pick and mount a tape in under 10 s"
SILO_NONSEEK_OVERHEAD = 35.0       # derived in the paper
TAPE_AVG_ACCESS = 85.0             # "tape accesses take 85 seconds on average"
TAPE_AVG_SEEK = 50.0               # derived: 85 - 25 - 10
MANUAL_MOUNT_TIME = 115.0          # "approximately 115 seconds"
MANUAL_TAIL_LATENCY = 400.0        # "10% of all manual tape mounts were not
MANUAL_TAIL_FRACTION = 0.10        #  completed within 400 seconds"
SILO_VS_MANUAL_SPEEDUP = (2.0, 2.5)  # "2 to 2.5 times as fast"
PEAK_TRANSFER_RATE = 3 * MB        # "peak rate of 3 MB/sec"
OBSERVED_TRANSFER_RATE = 2 * MB    # "usually closer to 2 MB/sec"
AVG_RESPONSE_TIME_BOUND = 60.0     # "average response time ... is over 60 s"

# ---------------------------------------------------------------------------
# Section 5.3 / Figures 8 and 9 -- per-file reference behaviour
# (computed on the 8-hour deduped stream)

FRACTION_FILES_NEVER_READ = 0.50
FRACTION_FILES_READ_ONCE = 0.25
FRACTION_FILES_NEVER_WRITTEN = 0.21
FRACTION_FILES_WRITTEN_ONCE = 0.65
FRACTION_WRITE_ONCE_NEVER_READ = 0.44
FRACTION_EXACTLY_ONE_ACCESS = 0.57
FRACTION_EXACTLY_TWO_ACCESSES = 0.19
FRACTION_MORE_THAN_TEN_REFERENCES = 0.05
MEDIAN_FILE_REFERENCES = 1
MAX_PLOTTED_REFERENCES = 250       # Figure 8 x-axis limit

#: Figure 9: "70% of all intervals were less than 1 day".
FRACTION_FILE_GAPS_UNDER_1_DAY = 0.70

#: Section 6: "About one third of all requests came within eight hours of
#: another request for the same file."
FRACTION_REQUESTS_WITHIN_8H_OF_SAME_FILE = 1.0 / 3.0

# ---------------------------------------------------------------------------
# Figures 10 and 11 -- size distributions

#: Figure 10: "40% of all requests are for files 1 MB or smaller".
FRACTION_REQUESTS_UNDER_1MB = 0.40
#: Figure 10: "a small jump in file writes at approximately 8 MB".
WRITE_SIZE_BUMP_BYTES = 8 * MB
#: Figure 11: "about half of the files are under 3 MB, these files contain
#: 2% of the data".
STATIC_SMALL_FILE_BOUND_BYTES = 3 * MB
FRACTION_FILES_UNDER_3MB = 0.50
FRACTION_DATA_IN_FILES_UNDER_3MB = 0.02
#: Sub-1 MB files "make up under 1% of the total data storage requirement".
FRACTION_DATA_IN_FILES_UNDER_1MB_BOUND = 0.01

# ---------------------------------------------------------------------------
# Figure 12 -- directory sizes

FRACTION_DIRS_AT_MOST_10_FILES = 0.90
FRACTION_DIRS_AT_MOST_1_FILE = 0.75
FRACTION_FILES_IN_DIRS_OVER_100 = 0.50   # "over half"
TOP_DIR_FRACTION = 0.05
TOP_DIR_FILE_SHARE = 0.50                # "5% of the directories held 50%"

# ---------------------------------------------------------------------------
# Section 2.3 -- Smith's STP result, used by the policy benches

#: Smith's best simple criterion: migrate the file with the largest
#: size * (time since last reference) ** STP_TIME_EXPONENT.
STP_TIME_EXPONENT = 1.4
#: "a miss ratio of 1% ... would require a disk system that held 1.5% of
#: the total tertiary storage" (for STP at SLAC).
STP_TARGET_MISS_RATIO = 0.01
STP_DISK_FRACTION_FOR_TARGET = 0.015
#: "a loss of 6.26 person-minutes per day" at 1% miss ratio.
PERSON_MINUTES_PER_DAY_AT_1PCT_MISS = 6.26

# ---------------------------------------------------------------------------
# Workload periodicity (abstract, Sections 5.2, Figures 4-6)

#: The abstract's claim: requests are periodic with one-day and one-week
#: periods, and reads account for the majority of the periodicity.
PERIODS_SECONDS = (24 * 3600.0, 7 * 24 * 3600.0)

#: Figure 4 shape anchors: work begins at 8-9 AM and tails off after 4 PM.
PEAK_HOURS = (9, 17)
READ_RISE_HOUR = 8
