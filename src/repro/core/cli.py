"""Command-line interface: ``repro-mss`` / ``python -m repro``.

Subcommands::

    generate   synthesize a trace file
    analyze    print Table 3 / Table 4 for a trace file
    replay     push a trace file through the MSS simulator
    policies   compare migration policies on a synthetic workload
    sweep      run the Section 6 ablation grid in parallel
    report     run the full experiment suite and print every comparison
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.units import DAY


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of the full NCAR population (default 0.01)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--days", type=float, default=None,
                        help="trace duration in days (default: the full 731)")


def _workload_config(args: argparse.Namespace):
    from repro.workload.config import WorkloadConfig

    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.days is not None:
        kwargs["duration_seconds"] = args.days * DAY
    return WorkloadConfig(**kwargs)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload.generator import generate_trace

    trace = generate_trace(_workload_config(args))
    count = trace.write(args.output)
    print(f"wrote {count} records to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import overall_statistics
    from repro.trace.reader import TraceReader

    with TraceReader(args.trace) as reader:
        analysis = overall_statistics(reader)
    print(analysis.render())
    print()
    print(analysis.comparison().render())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.mss.system import MSSConfig, replay_trace
    from repro.trace.reader import read_trace

    records = read_trace(args.trace)
    _, metrics = replay_trace(records, MSSConfig(seed=args.seed))
    for name, row in metrics.summary().items():
        print(
            f"{name:12s} n={int(row['count']):8d} startup={row['startup_mean']:8.1f}s "
            f"(queue {row['device_queue_mean']:6.1f}s, mount {row['mount_mean']:6.1f}s, "
            f"seek {row['seek_mean']:5.1f}s)"
        )
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.engine import prepare_stream, replay_policy
    from repro.workload.generator import generate_trace

    trace = generate_trace(_workload_config(args))
    batches = prepare_stream(trace)
    n_events = sum(len(batch) for batch in batches)
    capacity = int(trace.namespace.total_bytes * args.capacity_fraction)
    print(
        f"{n_events} deduped references, cache = "
        f"{args.capacity_fraction:.1%} of {trace.namespace.total_bytes / 1e9:.1f} GB"
    )
    for name in args.policy:
        metrics = replay_policy(batches, name, capacity, namespace=trace.namespace)
        print(
            f"{name:15s} miss={metrics.read_miss_ratio:.4f} "
            f"capacity-miss={metrics.capacity_miss_ratio:.4f} "
            f"person-min/day={metrics.person_minutes_per_day():.2f}"
        )
    return 0


def _parse_capacities(value: str):
    """``--capacities``: an int point count or comma-separated fractions.

    Used as an argparse ``type``, so a ValueError here becomes a clean
    usage error rather than a traceback.
    """
    from repro.engine import log_spaced_fractions

    parts = [part for part in value.split(",") if part]
    if not parts:
        raise ValueError("need a point count or capacity fractions")
    if len(parts) == 1:
        try:
            count = int(parts[0])
        except ValueError:
            pass  # not an int point count: fall through to fractions
        else:
            return log_spaced_fractions(count)
    return tuple(float(part) for part in parts)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import SweepConfig, run_sweep

    config = SweepConfig(
        policies=tuple(part for part in args.policies.split(",") if part),
        capacity_fractions=args.capacities,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        scale=args.scale,
        duration_days=args.days,
        workers=args.workers,
    )
    result = run_sweep(config)
    print(result.render())
    print(f"wall-clock: {result.elapsed_seconds:.1f}s")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import time

    from repro.core.experiments import (
        experiment_ids,
        needs_dense_study,
        run_experiment,
    )
    from repro.core.study import Study, StudyConfig

    base = Study(StudyConfig(workload=_workload_config(args)))
    dense = Study(StudyConfig.dense(scale=min(args.scale * 2, 0.05), seed=args.seed))
    profile = getattr(args, "profile", False)
    stages = {}
    if profile:
        # Force each pipeline stage eagerly so the analyze loop below
        # times only the (columnar) analysis passes.
        start = time.perf_counter()
        _ = base.trace
        _ = dense.trace
        stages["generate"] = time.perf_counter() - start
        start = time.perf_counter()
        _ = dense.mss_metrics
        stages["replay"] = time.perf_counter() - start
    start = time.perf_counter()
    for exp_id in experiment_ids():
        study = dense if needs_dense_study(exp_id) else base
        result = run_experiment(exp_id, study)
        print(result.render())
        print()
    if profile:
        stages["analyze"] = time.perf_counter() - start
        total = sum(stages.values())
        print("profile (wall time):")
        for stage, seconds in stages.items():
            print(f"  {stage:9s} {seconds:8.2f} s")
        print(f"  {'total':9s} {total:8.2f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mss",
        description="Reproduction of Miller & Katz 1993: NCAR MSS file migration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a trace file")
    _add_scale_args(p)
    p.add_argument("output", help="trace file to write")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("analyze", help="Table 3/4 for a trace file")
    p.add_argument("trace", help="trace file to read")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("replay", help="simulate a trace on the MSS")
    p.add_argument("trace", help="trace file to read")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("policies", help="compare migration policies")
    _add_scale_args(p)
    p.add_argument("--capacity-fraction", type=float, default=0.015)
    p.add_argument(
        "--policy",
        action="append",
        default=None,
        help="policy name (repeatable); default: the full set",
    )
    p.set_defaults(func=_cmd_policies)

    p = sub.add_parser("sweep", help="parallel Section 6 ablation grid")
    _add_scale_args(p)
    p.add_argument(
        "--policies",
        default="opt,stp,lru,saac",
        help="comma-separated policy names (default: opt,stp,lru,saac)",
    )
    p.add_argument(
        "--capacities",
        type=_parse_capacities,
        default="3",
        help="point count for a log-spaced capacity sweep, or "
        "comma-separated capacity fractions (default: 3 points)",
    )
    p.add_argument("--seeds", type=int, default=1,
                   help="number of workload seeds, --seed..--seed+N-1 (default 1)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the replay grid (default 1)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("report", help="run every experiment")
    _add_scale_args(p)
    p.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage wall time (generate / replay / analyze)",
    )
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "policy", "missing") is None:
        args.policy = ["opt", "stp", "lru", "saac", "fifo", "random", "largest-first"]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
