"""Command-line interface: ``repro-mss`` / ``python -m repro``.

Subcommands::

    generate   synthesize a trace file and/or a columnar store
    analyze    print Table 3 for a trace file, store dir, or cached workload
    replay     push a trace file through the MSS simulator
    policies   compare migration policies on a synthetic workload
    sweep      run the Section 6 ablation grid in parallel
    report     run the full experiment suite and print every comparison
    bench      cold-generation benchmark + per-stage profile table
    trace      columnar trace-store utilities (info / import / verify)
    scenario   declarative workloads (list / show / run / compare)
    runs       experiment registry (list / show / index / query /
               compare / promote / trajectory)
    serve      crash-recoverable HTTP replay service
    session    client for a running service (submit / feed / metrics / ...)
    verify     cross-engine differential checker + violation-bundle replay
    chaos      seeded fault-schedule soak harness (run / replay / report)

Commands that replay events accept ``--check-invariants`` (or the
``REPRO_CHECK_INVARIANTS=1`` environment variable) to enable runtime
conservation-law checking; a violation dumps a replayable quarantine
bundle (see ``repro verify replay``).

A ``--cache-dir`` (or ``--store``) points at the content-addressed
columnar trace store (:mod:`repro.engine.store`): generate once, analyze
many times off memory-mapped shards.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.units import DAY


def _add_invariant_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="enable runtime conservation-law checking "
        "(same as REPRO_CHECK_INVARIANTS=1; forked workers inherit it)",
    )


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of the full NCAR population (default 0.01)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--days", type=float, default=None,
                        help="trace duration in days (default: the full 731)")


def _workload_config(args: argparse.Namespace):
    from repro.workload.config import WorkloadConfig

    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.days is not None:
        kwargs["duration_seconds"] = args.days * DAY
    return WorkloadConfig(**kwargs)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload.generator import generate_trace

    if args.output is None and args.store is None:
        print("generate: need an output trace file and/or --store DIR",
              file=sys.stderr)
        return 2
    config = _workload_config(args)
    if args.output is not None:
        trace = generate_trace(config)
        count = trace.write(args.output)
        print(f"wrote {count} records to {args.output}")
    if args.store is not None:
        from repro.engine.store import cache_trace, open_or_generate

        if args.output is None:
            # Pure store capture: a cache hit skips generation entirely.
            store = open_or_generate(config, args.store)
        else:
            store = cache_trace(trace, args.store)
        print(
            f"stored {store.n_events} events in {store.n_shards} shards "
            f"at {store.path}"
        )
    return 0


def _is_store_dir(path: str) -> bool:
    import os

    return os.path.isdir(path) and os.path.isfile(os.path.join(path, "manifest.json"))


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import overall_statistics_from_batches

    if args.trace is None:
        if args.cache_dir is None:
            print("analyze: need a trace file, a store dir, or --cache-dir",
                  file=sys.stderr)
            return 2
        # No trace artifact named: analyze the cached (or freshly
        # generated-and-cached) store for the requested workload config.
        from repro.engine.store import open_or_generate

        store = open_or_generate(_workload_config(args), args.cache_dir)
        analysis = overall_statistics_from_batches(store.iter_batches())
    elif _is_store_dir(args.trace):
        from repro.engine.store import TraceStore

        analysis = overall_statistics_from_batches(
            TraceStore.open(args.trace).iter_batches()
        )
    else:
        from repro.analysis import overall_statistics
        from repro.trace.reader import TraceReader

        with TraceReader(args.trace) as reader:
            analysis = overall_statistics(reader)
    print(analysis.render())
    print()
    print(analysis.comparison().render())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.mss.system import MSSConfig, replay_trace
    from repro.trace.reader import read_trace

    records = read_trace(args.trace)
    _, metrics = replay_trace(records, MSSConfig(seed=args.seed))
    for name, row in metrics.summary().items():
        print(
            f"{name:12s} n={int(row['count']):8d} startup={row['startup_mean']:8.1f}s "
            f"(queue {row['device_queue_mean']:6.1f}s, mount {row['mount_mean']:6.1f}s, "
            f"seek {row['seek_mean']:5.1f}s)"
        )
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.engine import prepare_stream, replay_policy
    from repro.workload.generator import generate_trace

    trace = generate_trace(_workload_config(args))
    batches = prepare_stream(trace)
    n_events = sum(len(batch) for batch in batches)
    capacity = int(trace.namespace.total_bytes * args.capacity_fraction)
    print(
        f"{n_events} deduped references, cache = "
        f"{args.capacity_fraction:.1%} of {trace.namespace.total_bytes / 1e9:.1f} GB"
    )
    for name in args.policy:
        metrics = replay_policy(batches, name, capacity, namespace=trace.namespace)
        print(
            f"{name:15s} miss={metrics.read_miss_ratio:.4f} "
            f"capacity-miss={metrics.capacity_miss_ratio:.4f} "
            f"person-min/day={metrics.person_minutes_per_day():.2f}"
        )
    return 0


def _parse_capacities(value: str):
    """``--capacities``: an int point count or comma-separated fractions.

    Used as an argparse ``type``, so a ValueError here becomes a clean
    usage error rather than a traceback.
    """
    from repro.engine import log_spaced_fractions

    parts = [part for part in value.split(",") if part]
    if not parts:
        raise ValueError("need a point count or capacity fractions")
    if len(parts) == 1:
        try:
            count = int(parts[0])
        except ValueError:
            pass  # not an int point count: fall through to fractions
        else:
            return log_spaced_fractions(count)
    return tuple(float(part) for part in parts)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import SweepConfig, run_sweep

    if args.resume and args.run_dir is None:
        print("sweep: --resume requires --run-dir", file=sys.stderr)
        return 2
    config = SweepConfig(
        policies=tuple(part for part in args.policies.split(",") if part),
        capacity_fractions=args.capacities,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        scale=args.scale,
        duration_days=args.days,
        workers=args.workers,
        cache_dir=args.cache_dir,
        scenarios=tuple(
            part for part in (args.scenarios or "").split(",") if part
        ),
        engine=args.engine,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        run_dir=args.run_dir,
        resume=args.resume,
    )
    result = run_sweep(config)
    print(result.render())
    print(f"wall-clock: {result.elapsed_seconds:.1f}s")
    if result.run_path is not None:
        print(f"run dir: {result.run_path}")
    # A degraded grid (cells failed after retries) still prints, but the
    # exit code tells scripts the table is incomplete.
    return 1 if result.failed_cells else 0


def _resolve_run(runs_root: str, name: str) -> Optional[dict]:
    """A run entry by directory name, run/config-hash prefix, or unique match."""
    from repro.registry.record import scan_runs_root

    entries = scan_runs_root(runs_root)
    matches = [
        entry
        for entry in entries
        if entry["name"] == name
        or (entry["config_hash"] or "").startswith(name)
        or (entry["run_hash"] or "").startswith(name)
        or entry["name"] == f"sweep-{name}"
    ]
    return matches[0] if len(matches) == 1 else None


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.analysis.render import TextTable
    from repro.registry.record import scan_runs_root

    entries = scan_runs_root(args.runs_dir)
    _cmd_runs_warn(entries)
    entries = [entry for entry in entries if not entry.get("corrupt")]
    if not entries:
        print(f"no runs under {args.runs_dir}")
        return 0
    table = TextTable(
        ["run", "kind", "status", "tasks", "rows", "failed", "retries"],
        title=f"Runs in {args.runs_dir}",
    )
    for entry in entries:
        summary = entry.get("summary") or {}
        n_tasks = summary.get("n_tasks")
        if n_tasks is not None:
            tasks = f"{entry['checkpointed']}/{n_tasks}"
        elif entry.get("checkpointed"):
            tasks = str(entry["checkpointed"])
        else:
            tasks = "-"
        rows = entry["rows"]
        if rows is None:
            rows = summary.get("rows", "-")
        table.add_row(
            entry["name"],
            entry.get("kind") or "?",
            entry["status"],
            tasks,
            str(rows),
            str(len(summary.get("failed_cells", []) or []) or "-"),
            str(summary.get("retries", "-")),
        )
    print(table.render())
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.render import TextTable
    from repro.engine.resilience import load_checkpoints

    run = _resolve_run(args.runs_dir, args.run)
    if run is None:
        print(
            f"runs show: no unique run matching {args.run!r} "
            f"under {args.runs_dir}",
            file=sys.stderr,
        )
        return 1
    if run.get("corrupt"):
        print(
            f"warning: run dir {run['name']} is damaged "
            f"({', '.join(run['corrupt'])}); showing what remains",
            file=sys.stderr,
        )
    from repro.registry.record import load_run_record

    summary = run["summary"]
    record = load_run_record(run["path"])
    print(f"run:     {run['name']}")
    print(f"path:    {run['path']}")
    print(
        f"kind:    {run.get('kind') or 'sweep'} "
        f"(schema v{run.get('schema_version', 1)})"
    )
    if run.get("run_hash"):
        print(f"hash:    {run['run_hash']}")
    print(f"config:  {run['config_hash']}")
    print(f"status:  {run['status']}")
    if summary is not None:
        print(
            f"tasks:   {summary.get('tasks_executed', '?')} executed + "
            f"{summary.get('tasks_resumed', '?')} resumed + "
            f"{summary.get('tasks_failed', '?')} failed "
            f"(of {summary.get('n_tasks', '?')}), "
            f"{summary.get('retries', '?')} retries"
        )
    if args.json:
        # v2 dirs dump the full registry record; bare v1 dirs keep the
        # PR-7 behavior of dumping run_summary.json.
        if record is not None and run.get("run_hash"):
            print(json.dumps(record.to_payload(), indent=1, sort_keys=True))
        else:
            print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    records = load_checkpoints(run["path"])
    if records:
        table = TextTable(
            ["task", "status", "attempts", "rows", "seconds"],
            title=f"Checkpointed tasks ({len(records)})",
        )
        for key, task_record in sorted(records.items()):
            task = task_record.get("task") or {}
            label = (
                f"{task.get('scenario') or 'classic'}:"
                f"s{task.get('seed')}:{task.get('policy')}"
            )
            table.add_row(
                f"{label} [{key[:8]}]",
                str(task_record.get("status", "?")),
                str(task_record.get("attempts", "?")),
                str(len(task_record.get("rows", []) or [])),
                f"{task_record.get('elapsed_seconds', 0.0):.2f}",
            )
        print(table.render())
    elif record is not None and record.rows:
        table = TextTable(
            ["cell", "metrics"],
            title=f"Recorded cells ({len(record.rows)})",
        )
        for row in record.rows[:40]:
            table.add_row(
                str(row.get("cell", "?")),
                str(len(row.get("values", {}) or {})),
            )
        print(table.render())
        if len(record.rows) > 40:
            print(f"  ... {len(record.rows) - 40} more cells")
    return 0


def _registry_command(command):
    """Wrap a registry verb: RegistryError becomes a clean exit 2."""
    import functools

    @functools.wraps(command)
    def wrapped(args: argparse.Namespace) -> int:
        from repro.registry import RegistryError

        try:
            return command(args)
        except RegistryError as exc:
            print(f"runs {args.runs_command}: {exc}", file=sys.stderr)
            return 2

    return wrapped


@_registry_command
def _cmd_runs_index(args: argparse.Namespace) -> int:
    from repro.registry import RegistryIndex, db_path_for

    with RegistryIndex.open(db_path_for(args.runs_dir, args.db)) as index:
        stats = index.index_root(args.runs_dir)
    for name in stats["skipped"]:
        print(
            f"warning: skipping corrupt run dir {name}", file=sys.stderr
        )
    kinds = ", ".join(
        f"{count} {kind}" for kind, count in sorted(stats["kinds"].items())
    ) or "none"
    print(
        f"indexed {stats['indexed']} new + {stats['replaced']} replaced + "
        f"{stats['unchanged']} unchanged run(s) ({kinds}) "
        f"into {db_path_for(args.runs_dir, args.db)}"
    )
    return 0


@_registry_command
def _cmd_runs_query(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.render import TextTable
    from repro.registry import RegistryIndex, db_path_for

    with RegistryIndex.open_existing(
        db_path_for(args.runs_dir, args.db)
    ) as index:
        runs = index.runs(kind=args.kind, status=args.status)
        baselines = {
            row["run_hash"]: row["name"] for row in index.baselines()
        }
    if args.json:
        print(json.dumps(runs, indent=1, sort_keys=True))
        return 0
    if not runs:
        print("no indexed runs match")
        return 0
    table = TextTable(
        ["run", "kind", "status", "cells", "schema", "baseline"],
        title=f"Indexed runs ({len(runs)})",
    )
    for run in runs:
        table.add_row(
            run["run_hash"][:12],
            run["kind"],
            run["status"],
            str(run["n_cells"]),
            f"v{run['schema_version']}",
            baselines.get(run["run_hash"], "-"),
        )
    print(table.render())
    return 0


@_registry_command
def _cmd_runs_compare(args: argparse.Namespace) -> int:
    from repro.registry import (
        RegistryIndex, Tolerance, compare_runs, db_path_for,
    )

    with RegistryIndex.open_existing(
        db_path_for(args.runs_dir, args.db)
    ) as index:
        if args.right is not None:
            left_hash = index.resolve(args.left)["run_hash"]
            right_hash = index.resolve(args.right)["run_hash"]
        else:
            # One run named: gate it against the promoted baseline.
            left_hash = index.baseline(args.baseline)["run_hash"]
            right_hash = index.resolve(args.left)["run_hash"]
        result = compare_runs(
            index, left_hash, right_hash,
            Tolerance(rel=args.rel_tol, abs=args.abs_tol),
        )
    print(result.render())
    return 0 if result.ok else 1


@_registry_command
def _cmd_runs_promote(args: argparse.Namespace) -> int:
    from repro.registry import RegistryIndex, db_path_for

    with RegistryIndex.open_existing(
        db_path_for(args.runs_dir, args.db)
    ) as index:
        run = index.resolve(args.run)
        promoted = index.promote(args.name, run["run_hash"])
    print(
        f"promoted {promoted['run_hash']} as baseline "
        f"{promoted['name']!r}"
    )
    return 0


@_registry_command
def _cmd_runs_trajectory(args: argparse.Namespace) -> int:
    from repro.registry import RegistryIndex, db_path_for, render_trajectory

    with RegistryIndex.open_existing(
        db_path_for(args.runs_dir, args.db)
    ) as index:
        print(render_trajectory(index, args.benchmark, metric=args.metric))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import time

    from repro.core.experiments import (
        experiment_ids,
        needs_dense_study,
        run_experiment,
    )
    from repro.core.study import Study, StudyConfig

    cache_dir = getattr(args, "cache_dir", None)
    base = Study(
        StudyConfig(workload=_workload_config(args), cache_dir=cache_dir)
    )
    # The dense study streams from its DES replay (simulate_latencies),
    # which needs the in-memory trace -- a cache_dir would be dead config.
    dense = Study(StudyConfig.dense(scale=min(args.scale * 2, 0.05), seed=args.seed))
    profile = getattr(args, "profile", False)
    stages = {}
    if profile:
        # Force each pipeline stage eagerly so the analyze loop below
        # times only the (columnar) analysis passes.  The experiments
        # touch the namespace, so the base trace is generated either
        # way; forcing it here (plus the store, whose shards feed the
        # batch streams when cached) keeps the generation cost out of
        # the analyze timer.
        start = time.perf_counter()
        if cache_dir is not None:
            _ = base.trace_store()
        _ = base.trace
        _ = dense.trace
        stages["generate"] = time.perf_counter() - start
        start = time.perf_counter()
        _ = dense.mss_metrics
        stages["replay"] = time.perf_counter() - start
    start = time.perf_counter()
    results = []
    for exp_id in experiment_ids():
        study = dense if needs_dense_study(exp_id) else base
        result = run_experiment(exp_id, study)
        results.append(result)
        print(result.render())
        print()
    if getattr(args, "run_dir", None) is not None:
        from repro.registry import record_report_run

        run_dir = record_report_run(
            args.run_dir,
            results,
            config={
                "scale": args.scale, "seed": args.seed, "days": args.days,
            },
            wall_seconds=time.perf_counter() - start,
        )
        print(f"recorded run: {run_dir}")
    if profile:
        stages["analyze"] = time.perf_counter() - start
        total = sum(stages.values())
        print("profile (wall time):")
        for stage, seconds in stages.items():
            print(f"  {stage:9s} {seconds:8.2f} s")
            if stage == "generate":
                _print_generation_stages((base.trace, dense.trace))
        print(f"  {'total':9s} {total:8.2f} s")
    return 0


def _print_generation_stages(traces) -> None:
    """Indented per-stage generation breakdown for ``report --profile``."""
    from repro.workload.profiler import StageProfiler

    merged = StageProfiler()
    for trace in traces:
        for name, seconds in trace.stage_seconds.items():
            merged.add(name, seconds)
    if merged.stages:
        print(merged.render(indent="      "))


def _cmd_bench(args: argparse.Namespace) -> int:
    """Cold-generation benchmark + stage profile, outside pytest.

    Times the vectorized pipeline (best of ``--rounds``), prints the
    stage-profile table, and re-times the placement and session-packing
    stages through the seed's per-event reference implementations so the
    vectorization speedup is reproducible from the shell.  ``--suite``
    then runs the full pytest benchmark suite.
    """
    import time

    from repro.core.study import StudyConfig
    from repro.workload.generator import (
        generate_trace,
        time_generation_stage_paths,
    )
    from repro.workload.profiler import StageProfiler

    # The dense-study workload: the config the throughput gates pin.
    config = StudyConfig.dense(
        scale=args.scale, seed=args.seed, days=args.days
    ).workload

    best_seconds = float("inf")
    prof = StageProfiler()
    trace = None
    for _ in range(max(args.rounds, 1)):
        round_prof = StageProfiler()
        start = time.perf_counter()
        trace = generate_trace(config, profiler=round_prof)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, prof = elapsed, round_prof
    rate = trace.n_events / best_seconds if best_seconds > 0 else float("inf")
    print(
        f"cold generation: {best_seconds:.3f} s best of {args.rounds} "
        f"({trace.n_events} events, {rate:,.0f} ev/s)"
    )
    print("stage profile:")
    print(prof.render(indent="  "))

    # Scalar-vs-vectorized stage comparison on this trace's good events,
    # through the same harness the throughput benchmark gates.
    timings = time_generation_stage_paths(trace, rounds=max(args.rounds, 1))
    for label in ("placement", "sessions"):
        scalar = timings[f"scalar_{label}_seconds"]
        vector = timings[f"vector_{label}_seconds"]
        speedup = scalar / vector if vector > 0 else float("inf")
        print(
            f"{label}: scalar {scalar:.3f} s -> vectorized {vector:.3f} s "
            f"({speedup:.1f}x)"
        )
    print(f"combined stage speedup: {timings['speedup']:.1f}x")

    if args.suite is not None:
        import pytest

        print(f"\nrunning benchmark suite: {args.suite}")
        return int(pytest.main(["-q", "-s", args.suite]))
    return 0


def _scenario_spec(args: argparse.Namespace, name: Optional[str] = None):
    """The spec one scenario command addresses: a file, or a library name."""
    from repro.scenarios.library import build_scenario
    from repro.scenarios.spec import ScenarioSpec

    if getattr(args, "spec", None):
        return ScenarioSpec.from_file(args.spec)
    return build_scenario(
        name if name is not None else args.name,
        scale=args.scale,
        seed=args.seed,
        days=args.days,
    )


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.analysis.render import TextTable
    from repro.scenarios.library import describe_scenarios

    table = TextTable(
        ["name", "tenants", "description"], title="Built-in scenarios"
    )
    for row in describe_scenarios():
        table.add_row(
            row["name"], ", ".join(row["tenants"]), row["description"]
        )
    print(table.render())
    return 0


def _cmd_scenario_show(args: argparse.Namespace) -> int:
    import json

    try:
        spec = _scenario_spec(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"scenario show: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(spec.to_dict(), indent=1, sort_keys=True))
        return 0
    print(f"scenario:  {spec.name}")
    print(f"hash:      {spec.scenario_hash()}")
    print(f"seed:      {spec.seed}")
    if spec.description:
        print(f"about:     {spec.description}")
    print(f"tenants:   {', '.join(spec.tenants)}")
    for component in spec.ordered_components():
        config = spec.derived_config(component.name)
        window = (
            f"day {component.start_day:g}+"
            if component.start_day
            else "full span"
        )
        envelope = component.envelope
        active = (
            "always"
            if envelope.is_constant
            else f"{envelope.hour_start:g}-{envelope.hour_end:g}h daily "
            f"(floor {envelope.floor:g})"
        )
        print(
            f"  {component.name}: share {component.share:.0%}, "
            f"scale {config.scale:g}, seed {config.seed}, "
            f"{config.duration_seconds / DAY:.1f} days, {window}, {active}"
        )
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.analysis.tenants import tenant_breakdown_from_batches
    from repro.scenarios.compositor import ScenarioCompositor

    try:
        spec = _scenario_spec(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"scenario run: {exc}", file=sys.stderr)
        return 1
    compositor = ScenarioCompositor(spec, cache_dir=args.cache_dir)
    if args.cache_dir is not None:
        # Persist the composed stream too (scenario-hash addressed):
        # repeat runs then memmap one store instead of re-merging, and
        # `repro trace info` on it shows the tenant metadata.
        from repro.scenarios.cache import compose_cached

        store = compose_cached(spec, args.cache_dir)
        batches = store.iter_batches()
        source = f"store {store.path}"
    else:
        batches = compositor.iter_batches()
        source = "streamed composition"
    breakdown = tenant_breakdown_from_batches(batches, compositor.labels)
    print(f"scenario {spec.name}: {', '.join(compositor.labels)} ({source})")
    print()
    print(
        breakdown.render(
            title=f"Per-tenant overall statistics: {spec.name}"
        )
    )
    return 0


def _cmd_scenario_compare(args: argparse.Namespace) -> int:
    from repro.analysis.tenants import (
        render_scenario_comparison,
        tenant_breakdown_from_batches,
    )
    from repro.scenarios.compositor import ScenarioCompositor

    breakdowns = {}
    for name in args.names:
        try:
            spec = _scenario_spec(args, name=name)
        except (KeyError, ValueError) as exc:
            print(f"scenario compare: {exc}", file=sys.stderr)
            return 1
        compositor = ScenarioCompositor(spec, cache_dir=args.cache_dir)
        breakdowns[name] = tenant_breakdown_from_batches(
            compositor.iter_batches(), compositor.labels
        )
    print(render_scenario_comparison(breakdowns))
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.engine.store import StoreError, TraceStore

    try:
        store = TraceStore.open(args.store)
    except StoreError as exc:
        print(f"trace info: {exc}", file=sys.stderr)
        return 1
    print(store.describe())
    return 0


def _cmd_trace_verify(args: argparse.Namespace) -> int:
    from repro.engine.store import StoreError, TraceStore

    try:
        store = TraceStore.open(args.store)
        store.verify()
    except StoreError as exc:
        print(f"trace verify: {exc}", file=sys.stderr)
        return 1
    print(
        f"ok: {store.n_shards} shards x {len(store.columns)} columns verified "
        f"({store.n_events} events)"
    )
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    from repro.engine.store import StoreError
    from repro.trace.errors import TraceError
    from repro.trace.store import import_trace_file

    try:
        store = import_trace_file(args.trace, args.store, overwrite=args.overwrite)
    except (StoreError, TraceError, OSError) as exc:
        print(f"trace import: {exc}", file=sys.stderr)
        return 1
    print(
        f"imported {store.n_events} events ({store.n_shards} shards) "
        f"into {store.path}"
    )
    return 0


def _cmd_runs_warn(runs) -> None:
    """Print one stderr warning per damaged run dir (skip-and-warn)."""
    for run in runs:
        if run.get("corrupt"):
            print(
                f"warning: skipping corrupt run dir {run['name']} "
                f"(damaged: {', '.join(run['corrupt'])})",
                file=sys.stderr,
            )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        queue_depth=args.queue_depth,
        shed_backlog=args.shed_backlog,
        request_timeout=args.request_timeout,
        snapshot_every=args.snapshot_every,
        drain_timeout=args.drain_timeout,
    )
    print(f"repro serve: data dir {args.data_dir}", file=sys.stderr)
    summary = serve_forever(config)
    drained = len(summary.get("sessions", {}))
    print(
        f"repro serve: drained {drained} session(s), "
        f"clean={summary.get('clean')}",
        file=sys.stderr,
    )
    return 0 if summary.get("clean") else 1


def _serve_client(args: argparse.Namespace):
    """A ServeClient for the addressed server (explicit or discovered)."""
    from repro.serve.client import ServeClient, read_endpoint

    host, port = args.host, args.port
    if getattr(args, "data_dir", None) is not None:
        host, port = read_endpoint(args.data_dir)
    return ServeClient(host, port)


def _session_command(command):
    """Wrap a session command: server/client errors become exit 1."""
    import functools
    import urllib.error

    @functools.wraps(command)
    def wrapped(args: argparse.Namespace) -> int:
        from repro.serve.client import ServeClientError

        try:
            return command(args)
        except (ServeClientError, urllib.error.URLError, ConnectionError,
                TimeoutError, OSError) as exc:
            print(f"session: {exc}", file=sys.stderr)
            return 1

    return wrapped


def _session_labels_and_scenario(args: argparse.Namespace):
    """(tenant labels, scenario dict) for a submit, if one was named."""
    if getattr(args, "scenario", None) is None and not getattr(args, "spec", None):
        return ("all",), None
    spec = _scenario_spec(args, name=getattr(args, "scenario", None))
    return tuple(spec.tenants), spec.to_dict()


@_session_command
def _cmd_session_submit(args: argparse.Namespace) -> int:
    import json

    from repro.util.units import DAY as _DAY

    try:
        labels, scenario = _session_labels_and_scenario(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"session submit: {exc}", file=sys.stderr)
        return 1
    spec = {
        "name": args.session,
        "policy": args.policy,
        "capacity_bytes": int(args.capacity_mb * 1024 * 1024),
        "deduped": not args.no_dedupe,
        "labels": list(labels),
        "window_seconds": args.window_days * _DAY,
        "policy_seed": args.seed,
        "scenario": scenario,
    }
    created = _serve_client(args).submit(spec)
    print(json.dumps(created, indent=1, sort_keys=True))
    return 0


@_session_command
def _cmd_session_feed(args: argparse.Namespace) -> int:
    from repro.engine import rechunk
    from repro.scenarios.compositor import ScenarioCompositor

    try:
        spec = _scenario_spec(args, name=args.scenario)
    except (KeyError, ValueError, OSError) as exc:
        print(f"session feed: {exc}", file=sys.stderr)
        return 1
    compositor = ScenarioCompositor(spec, cache_dir=args.cache_dir)
    batches = rechunk(compositor.iter_batches(), args.chunk_size)

    def on_retry(reason: str, seq: int, delay: float) -> None:
        print(
            f"session feed: {reason} on chunk {seq}, retrying in {delay:g}s",
            file=sys.stderr,
        )

    client = _serve_client(args)
    chunks, events = client.feed_batches(
        args.session, batches, on_retry=on_retry
    )
    print(f"fed {events} events in {chunks} chunks to {args.session}")
    return 0


@_session_command
def _cmd_session_metrics(args: argparse.Namespace) -> int:
    import json

    print(json.dumps(
        _serve_client(args).metrics(args.session), indent=1, sort_keys=True
    ))
    return 0


@_session_command
def _cmd_session_finalize(args: argparse.Namespace) -> int:
    import json

    print(json.dumps(
        _serve_client(args).finalize(args.session), indent=1, sort_keys=True
    ))
    return 0


@_session_command
def _cmd_session_list(args: argparse.Namespace) -> int:
    from repro.analysis.render import TextTable

    sessions = _serve_client(args).list_sessions()
    if not sessions:
        print("no sessions")
        return 0
    table = TextTable(
        ["session", "policy", "chunks", "events", "backlog", "state"],
        title="Live replay sessions",
    )
    for session in sessions:
        table.add_row(
            session["name"],
            session["policy"],
            str(session["applied_chunks"]),
            str(session["events_ingested"]),
            str(session.get("backlog", 0)),
            "finalized" if session["finalized"] else "live",
        )
    print(table.render())
    return 0


@_session_command
def _cmd_session_ping(args: argparse.Namespace) -> int:
    import json

    client = _serve_client(args)
    # ping() rides out the connection-refused window of a restarting
    # server with bounded backoff; ready() runs after it succeeds, so
    # the server is known to be listening by then.
    print(json.dumps(
        {"health": client.ping(retries=args.retries), "ready": client.ready()},
        indent=1, sort_keys=True,
    ))
    return 0


def _cmd_verify_diff(args: argparse.Namespace) -> int:
    import json

    from repro.verify.diff import run_differential

    report = run_differential(cases=args.cases, seed=args.seed)
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )
    if getattr(args, "run_dir", None) is not None:
        from repro.registry import record_verify_run

        print(f"recorded run: {record_verify_run(args.run_dir, report)}")
    ok = report["ok"]
    verdict = "all agree" if ok else f"{len(report['failures'])} mismatch(es)"
    print(
        f"verify diff: {report['cases']} case(s) across "
        f"{'/'.join(report['engines'])}: {verdict}"
    )
    for row in report["results"]:
        if row["ok"]:
            continue
        print(f"  case {row['case']} ({row['config']['policy']}):")
        for pair, fields in row["mismatches"].items():
            for name, (left, right) in fields.items():
                print(f"    {pair} {name}: {left} != {right}")
        print(f"    repro: repro verify diff --seed {report['seed']} "
              f"--cases {report['cases']}")
    return 0 if ok else 1


def _cmd_verify_replay(args: argparse.Namespace) -> int:
    import json

    from repro.verify.diff import replay_bundle

    try:
        outcome = replay_bundle(args.bundle)
    except (OSError, ValueError, KeyError) as exc:
        print(f"verify replay: unreadable bundle {args.bundle}: {exc}",
              file=sys.stderr)
        return 2
    print(json.dumps(outcome, indent=1, sort_keys=True))
    if outcome.get("error"):
        return 2
    return 0 if outcome["reproduced"] else 1


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.chaos import render_report, run_chaos, write_report

    kinds = None
    if args.kinds:
        kinds = tuple(part for part in args.kinds.split(",") if part)

    def progress(index: int, kind: str) -> None:
        print(f"chaos: episode {index} ({kind})...", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        workdir = Path(args.workdir) if args.workdir else Path(scratch)
        report = run_chaos(
            args.seed, args.episodes, workdir, kinds=kinds, progress=progress
        )
    path = write_report(report, Path(args.report))
    print(render_report(report))
    print(f"report: {path}")
    if getattr(args, "run_dir", None) is not None:
        from repro.registry import record_chaos_run

        print(f"recorded run: {record_chaos_run(args.run_dir, report)}")
    return 0 if report["ok"] else 1


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.chaos import render_report, run_chaos

    kinds = None
    if args.kinds:
        kinds = tuple(part for part in args.kinds.split(",") if part)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        workdir = Path(args.workdir) if args.workdir else Path(scratch)
        report = run_chaos(
            args.seed, args.episode + 1, workdir, kinds=kinds,
            only_episode=args.episode,
        )
    print(render_report(report))
    return 0 if report["ok"] else 1


def _cmd_chaos_report(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import render_report

    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"chaos report: unreadable {args.report}: {exc}",
              file=sys.stderr)
        return 2
    print(render_report(report))
    return 0 if report.get("ok") else 1


def _add_session_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="server host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8023,
                        help="server port (default 8023)")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="discover host/port from a running server's "
                        "data dir instead")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mss",
        description="Reproduction of Miller & Katz 1993: NCAR MSS file migration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a trace file and/or store")
    _add_scale_args(p)
    p.add_argument("output", nargs="?", default=None,
                   help="ASCII trace file to write (optional with --store)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="also write the columnar store into this cache dir")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("analyze", help="Table 3 for a trace file or store")
    _add_scale_args(p)
    p.add_argument("trace", nargs="?", default=None,
                   help="trace file or store directory (optional with --cache-dir)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed store cache; with no trace argument, "
                   "analyze the cached store for the scale/seed/days workload")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("replay", help="simulate a trace on the MSS")
    p.add_argument("trace", help="trace file to read")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("policies", help="compare migration policies")
    _add_scale_args(p)
    p.add_argument("--capacity-fraction", type=float, default=0.015)
    p.add_argument(
        "--policy",
        action="append",
        default=None,
        help="policy name (repeatable); default: the full set",
    )
    _add_invariant_args(p)
    p.set_defaults(func=_cmd_policies)

    p = sub.add_parser("sweep", help="parallel Section 6 ablation grid")
    _add_scale_args(p)
    p.add_argument(
        "--policies",
        default="opt,stp,lru,saac",
        help="comma-separated policy names (default: opt,stp,lru,saac)",
    )
    p.add_argument(
        "--capacities",
        type=_parse_capacities,
        default="3",
        help="point count for a log-spaced capacity sweep, or "
        "comma-separated capacity fractions (default: 3 points)",
    )
    p.add_argument("--seeds", type=int, default=1,
                   help="number of workload seeds, --seed..--seed+N-1 (default 1)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the replay grid (default 1)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist per-seed prepared-stream stores here "
                   "(default: a per-run temporary directory)")
    p.add_argument("--scenarios", default=None,
                   help="comma-separated built-in scenario names: sweep "
                   "policies x scenarios instead of the single workload")
    p.add_argument("--engine", choices=("auto", "stack", "des"),
                   default="auto",
                   help="replay machinery: 'auto' scans all capacities of "
                   "an inclusion-preserving policy in one stack-engine "
                   "pass and uses the DES elsewhere; 'stack'/'des' force "
                   "one side (default auto)")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="checkpoint every completed task into a "
                   "content-addressed run directory under DIR")
    p.add_argument("--resume", action="store_true",
                   help="skip tasks already checkpointed in --run-dir "
                   "(Ctrl-C-then-rerun recovery)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per task after the first attempt "
                   "(default 2; 0 disables)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task deadline: a hung task's pool is "
                   "recycled and the task retried (default: none)")
    _add_invariant_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("report", help="run every experiment")
    _add_scale_args(p)
    p.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage wall time (generate / replay / analyze)",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed store cache for the base study's "
                   "batch streams")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="record the paper-vs-measured comparisons as a "
                   "registry run under DIR")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "bench",
        help="cold-generation benchmark + stage profile (and, with "
        "--suite, the pytest benchmark suite)",
    )
    p.add_argument("--scale", type=float, default=0.02,
                   help="dense-workload scale (default 0.02, the gated config)")
    p.add_argument("--seed", type=int, default=42, help="random seed (default 42)")
    p.add_argument("--days", type=float, default=14.62,
                   help="dense-workload span in days (default 14.62)")
    p.add_argument("--rounds", type=int, default=3,
                   help="timing rounds, best-of (default 3)")
    p.add_argument("--suite", nargs="?", const="benchmarks", default=None,
                   metavar="DIR",
                   help="also run the pytest benchmark suite from this "
                   "directory (default: benchmarks)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "scenario",
        help="declarative workload scenarios (list / show / run / compare)",
    )
    scenario_sub = p.add_subparsers(dest="scenario_command", required=True)

    s = scenario_sub.add_parser("list", help="name every built-in archetype")
    s.set_defaults(func=_cmd_scenario_list)

    s = scenario_sub.add_parser("show", help="print one scenario's spec")
    _add_scale_args(s)
    s.add_argument("name", nargs="?", default=None,
                   help="built-in scenario name (or use --spec FILE)")
    s.add_argument("--spec", default=None, metavar="FILE",
                   help="load the spec from a JSON/YAML file instead")
    s.add_argument("--json", action="store_true",
                   help="dump the spec as JSON (loadable with --spec)")
    s.set_defaults(func=_cmd_scenario_show)

    s = scenario_sub.add_parser(
        "run", help="compose a scenario and print per-tenant statistics"
    )
    _add_scale_args(s)
    s.add_argument("name", nargs="?", default=None,
                   help="built-in scenario name (or use --spec FILE)")
    s.add_argument("--spec", default=None, metavar="FILE",
                   help="load the spec from a JSON/YAML file instead")
    s.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed store cache: per-component "
                   "streams and the composed stream persist here")
    s.set_defaults(func=_cmd_scenario_run)

    s = scenario_sub.add_parser(
        "compare",
        help="per-scenario, per-tenant metrics table for several archetypes",
    )
    _add_scale_args(s)
    s.add_argument("names", nargs="+", help="built-in scenario names")
    s.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed store cache for component streams")
    s.set_defaults(func=_cmd_scenario_compare)

    p = sub.add_parser("trace", help="columnar trace-store utilities")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    t = trace_sub.add_parser("info", help="print a store's manifest metadata")
    t.add_argument("store", help="store directory (contains manifest.json)")
    t.set_defaults(func=_cmd_trace_info)

    t = trace_sub.add_parser("verify", help="recompute every shard checksum")
    t.add_argument("store", help="store directory to verify")
    t.set_defaults(func=_cmd_trace_verify)

    t = trace_sub.add_parser(
        "import", help="convert an ASCII trace file into a columnar store"
    )
    t.add_argument("trace", help="trace file to read")
    t.add_argument("store", help="store directory to create")
    t.add_argument("--overwrite", action="store_true",
                   help="replace an existing store at the target")
    t.set_defaults(func=_cmd_trace_import)

    p = sub.add_parser(
        "runs",
        help="the experiment registry: recorded runs "
        "(list / show / index / query / compare / promote / trajectory)",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _add_db_arg(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--db", default=None, metavar="FILE",
            help="registry database path "
            "(default: <runs_dir>/registry.sqlite)",
        )

    r = runs_sub.add_parser("list", help="table of runs under a runs dir")
    r.add_argument("runs_dir", help="runs root (the --run-dir)")
    r.set_defaults(func=_cmd_runs_list)

    r = runs_sub.add_parser(
        "show", help="one run's record, summary, and checkpoint table"
    )
    r.add_argument("runs_dir", help="runs root (the --run-dir)")
    r.add_argument("run", help="run directory name or run/config-hash prefix")
    r.add_argument("--json", action="store_true",
                   help="dump the run record (v2) or summary (v1) as JSON "
                   "instead of the task table")
    r.set_defaults(func=_cmd_runs_show)

    r = runs_sub.add_parser(
        "index",
        help="fold every run dir under the root into registry.sqlite "
        "(idempotent, content-addressed by run hash)",
    )
    r.add_argument("runs_dir", help="runs root to index")
    _add_db_arg(r)
    r.set_defaults(func=_cmd_runs_index)

    r = runs_sub.add_parser(
        "query", help="table of indexed runs, filterable by kind/status"
    )
    r.add_argument("runs_dir", help="runs root (locates the database)")
    r.add_argument("--kind", default=None,
                   help="only runs of this kind (sweep/bench/report/...)")
    r.add_argument("--status", default=None,
                   help="only runs with this status")
    r.add_argument("--json", action="store_true",
                   help="dump matching runs as JSON")
    _add_db_arg(r)
    r.set_defaults(func=_cmd_runs_query)

    r = runs_sub.add_parser(
        "compare",
        help="cell-by-cell diff of two indexed runs (or one run vs a "
        "promoted baseline); exit 1 on out-of-tolerance cells",
    )
    r.add_argument("runs_dir", help="runs root (locates the database)")
    r.add_argument("left", help="reference run (or the candidate, with "
                   "--baseline)")
    r.add_argument("right", nargs="?", default=None,
                   help="candidate run; omitted = compare LEFT against "
                   "the --baseline")
    r.add_argument("--baseline", default="default", metavar="NAME",
                   help="baseline name used when RIGHT is omitted "
                   "(default: 'default')")
    r.add_argument("--rel-tol", type=float, default=0.0,
                   help="relative tolerance per metric (default 0: exact)")
    r.add_argument("--abs-tol", type=float, default=0.0,
                   help="absolute tolerance per metric (default 0: exact)")
    _add_db_arg(r)
    r.set_defaults(func=_cmd_runs_compare)

    r = runs_sub.add_parser(
        "promote", help="pin one indexed run as a named baseline"
    )
    r.add_argument("runs_dir", help="runs root (locates the database)")
    r.add_argument("run", help="run to promote (hash prefix or dir name)")
    r.add_argument("--name", default="default",
                   help="baseline name (default: 'default')")
    _add_db_arg(r)
    r.set_defaults(func=_cmd_runs_promote)

    r = runs_sub.add_parser(
        "trajectory",
        help="perf history of one benchmark across every indexed bench run",
    )
    r.add_argument("runs_dir", help="runs root (locates the database)")
    r.add_argument("benchmark", help="benchmark name (e.g. stackdist_sweep)")
    r.add_argument("--metric", default=None,
                   help="metric to trend (default: speedup, else the "
                   "benchmark's first metric)")
    _add_db_arg(r)
    r.set_defaults(func=_cmd_runs_trajectory)

    p = sub.add_parser(
        "serve",
        help="run the crash-recoverable HTTP replay service until "
        "SIGTERM (graceful drain)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="bind port; 0 picks a free one, recorded in the "
                   "data dir (default 8023)")
    p.add_argument("--data-dir", default="serve-data", metavar="DIR",
                   help="session journals + snapshots live here; existing "
                   "sessions are recovered on start (default serve-data)")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="per-session ingest queue depth before 429s "
                   "(default 8)")
    p.add_argument("--shed-backlog", type=int, default=4,
                   help="queue backlog at which metrics polls are shed "
                   "with 503 (default 4)")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="seconds a request waits for its session worker "
                   "(default 30)")
    p.add_argument("--snapshot-every", type=int, default=16,
                   help="state snapshot every N applied chunks (default 16)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds the SIGTERM drain waits per session "
                   "(default 30)")
    _add_invariant_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "session",
        help="talk to a running service "
        "(submit / feed / metrics / list / finalize / ping)",
    )
    session_sub = p.add_subparsers(dest="session_command", required=True)

    s = session_sub.add_parser("submit", help="create a replay session")
    _add_session_endpoint_args(s)
    _add_scale_args(s)
    s.add_argument("session", help="session name (also its directory name)")
    s.add_argument("--scenario", default=None,
                   help="built-in scenario providing tenant labels and "
                   "provenance (or use --spec FILE)")
    s.add_argument("--spec", default=None, metavar="FILE",
                   help="scenario spec file instead of a built-in name")
    s.add_argument("--policy", default="lru",
                   help="migration policy for the live HSM (default lru)")
    s.add_argument("--capacity-mb", type=float, default=512.0,
                   help="managed-disk capacity in MiB (default 512)")
    s.add_argument("--window-days", type=float, default=1.0,
                   help="rolling metrics window in stream days (default 1)")
    s.add_argument("--no-dedupe", action="store_true",
                   help="skip the eight-hour interval dedupe before replay")
    s.set_defaults(func=_cmd_session_submit)

    s = session_sub.add_parser(
        "feed", help="compose a scenario locally and stream its chunks"
    )
    _add_session_endpoint_args(s)
    _add_scale_args(s)
    s.add_argument("session", help="session to feed")
    s.add_argument("--scenario", default=None,
                   help="built-in scenario name (or use --spec FILE)")
    s.add_argument("--spec", default=None, metavar="FILE",
                   help="scenario spec file instead of a built-in name")
    s.add_argument("--chunk-size", type=int, default=8192,
                   help="events per fed chunk (default 8192)")
    s.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed store cache for component streams")
    _add_invariant_args(s)
    s.set_defaults(func=_cmd_session_feed)

    s = session_sub.add_parser("metrics", help="live Table-3/tenant metrics")
    _add_session_endpoint_args(s)
    s.add_argument("session", help="session to query")
    s.set_defaults(func=_cmd_session_metrics)

    s = session_sub.add_parser(
        "finalize", help="flush writebacks and print final metrics"
    )
    _add_session_endpoint_args(s)
    s.add_argument("session", help="session to finalize")
    s.set_defaults(func=_cmd_session_finalize)

    s = session_sub.add_parser("list", help="table of live sessions")
    _add_session_endpoint_args(s)
    s.set_defaults(func=_cmd_session_list)

    s = session_sub.add_parser("ping", help="health + readiness probes")
    _add_session_endpoint_args(s)
    s.add_argument("--retries", type=int, default=None,
                   help="connection retries while the server restarts "
                   "(default: the client's bounded-backoff default)")
    s.set_defaults(func=_cmd_session_ping)

    p = sub.add_parser(
        "verify",
        help="cross-engine differential checker and quarantine-bundle "
        "replay",
    )
    verify_sub = p.add_subparsers(dest="verify_command", required=True)

    v = verify_sub.add_parser(
        "diff",
        help="pin DES / stack / session counter-for-counter equivalence "
        "on seeded random configs",
    )
    v.add_argument("--cases", type=int, default=20,
                   help="randomized configurations to diff (default 20)")
    v.add_argument("--seed", type=int, default=0,
                   help="master seed; a mismatch is re-runnable from it "
                   "(default 0)")
    v.add_argument("--output", default=None, metavar="FILE",
                   help="also write the full JSON report here")
    v.add_argument("--run-dir", default=None, metavar="DIR",
                   help="record the differential report as a registry run "
                   "under DIR")
    v.set_defaults(func=_cmd_verify_diff)

    v = verify_sub.add_parser(
        "replay",
        help="re-run an invariant-violation quarantine bundle and report "
        "whether it reproduces",
    )
    v.add_argument("bundle", help="quarantine bundle directory "
                   "(contains violation.json)")
    v.set_defaults(func=_cmd_verify_replay)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-schedule soak: inject crashes/corruption and "
        "require bit-identical recovery (run / replay / report)",
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    c = chaos_sub.add_parser("run", help="run N seeded chaos episodes")
    c.add_argument("--episodes", type=int, default=7,
                   help="episode count (default 7, one per kind)")
    c.add_argument("--seed", type=int, default=0,
                   help="master seed: same seed, same schedule, same "
                   "verdicts (default 0)")
    c.add_argument("--kinds", default=None,
                   help="comma-separated episode kinds to draw from "
                   "(default: all)")
    c.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep episode scratch state here instead of a "
                   "temporary directory")
    c.add_argument("--report", default="chaos_report.json", metavar="FILE",
                   help="report path (default chaos_report.json)")
    c.add_argument("--run-dir", default=None, metavar="DIR",
                   help="record the soak report as a registry run under DIR")
    c.set_defaults(func=_cmd_chaos_run)

    c = chaos_sub.add_parser(
        "replay", help="re-run exactly one episode of a seeded soak"
    )
    c.add_argument("--seed", type=int, required=True,
                   help="the soak's master seed")
    c.add_argument("--episode", type=int, required=True,
                   help="episode index to replay")
    c.add_argument("--kinds", default=None,
                   help="the soak's --kinds value, if it had one (the kind "
                   "schedule depends on the pool)")
    c.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the episode's scratch state here")
    c.set_defaults(func=_cmd_chaos_replay)

    c = chaos_sub.add_parser(
        "report", help="summarize an existing chaos_report.json"
    )
    c.add_argument("report", nargs="?", default="chaos_report.json",
                   help="report path (default chaos_report.json)")
    c.set_defaults(func=_cmd_chaos_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "policy", "missing") is None:
        args.policy = ["opt", "stp", "lru", "saac", "fifo", "random", "largest-first"]
    if getattr(args, "check_invariants", False):
        from repro.verify.invariants import enable_invariants

        enable_invariants()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
