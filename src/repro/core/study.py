"""The end-to-end study pipeline.

A :class:`Study` owns one synthetic trace (and, lazily, a DES replay of
it) and hands the analyses what they need.  It is the object the CLI,
examples and benchmarks all drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.analysis import (
    Comparison,
    filestore_statistics,
    overall_statistics,
)
from repro.mss.metrics import MetricsCollector
from repro.mss.system import MSSConfig, MSSSystem
from repro.trace.filters import dedupe_for_file_analysis, strip_errors
from repro.trace.record import TraceRecord
from repro.util.units import DAY
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTrace, generate_trace


@dataclass
class StudyConfig:
    """What to generate and how to simulate it."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    mss: MSSConfig = field(default_factory=MSSConfig)
    #: Replace analytic latencies with DES-simulated ones.
    simulate_latencies: bool = False

    @staticmethod
    def dense(scale: float = 0.02, seed: int = 42, days: float = 16.0) -> "StudyConfig":
        """Short-duration config with full-scale arrival density.

        Fine-timescale statistics (Figure 7 clustering, Figure 3 queueing)
        depend on arrival *density*, which a scaled two-year trace cannot
        keep.  The dense config trades calendar span for density.
        """
        workload = WorkloadConfig(
            scale=scale, seed=seed, duration_seconds=days * DAY,
            fill_latencies=False,
        )
        return StudyConfig(workload=workload, simulate_latencies=True)


class Study:
    """One reproducible run: trace + optional DES replay + analyses."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self._trace: Optional[SyntheticTrace] = None
        self._records: Optional[List[TraceRecord]] = None
        self._metrics: Optional[MetricsCollector] = None
        self._batches: dict = {}

    # ------------------------------------------------------------------
    # Lazily produced artifacts

    @property
    def trace(self) -> SyntheticTrace:
        """The synthetic trace (generated on first use)."""
        if self._trace is None:
            self._trace = generate_trace(self.config.workload)
        return self._trace

    def records(self) -> List[TraceRecord]:
        """Trace records, DES-replayed if the config asks for it."""
        if self._records is None:
            base = self.trace.records()
            if self.config.simulate_latencies:
                system = MSSSystem(self.config.mss)
                self._records, self._metrics = system.replay(base)
            else:
                self._records = base
        return self._records

    def iter_records(self) -> Iterator[TraceRecord]:
        """Iterate the (possibly replayed) records."""
        return iter(self.records())

    @property
    def mss_metrics(self) -> MetricsCollector:
        """DES metrics; triggers the replay if it has not run."""
        if self._metrics is None:
            if not self.config.simulate_latencies:
                raise ValueError(
                    "study was configured without DES latencies; use "
                    "StudyConfig(simulate_latencies=True)"
                )
            self.records()
        assert self._metrics is not None
        return self._metrics

    def event_batches(self, deduped: bool = True) -> List["EventBatch"]:
        """The trace's HSM reference stream as prepared engine batches.

        Cached per dedupe flag: Section 6 experiments replay the same
        stream against many policies and capacities.
        """
        from repro.engine.replay import prepare_stream

        if deduped not in self._batches:
            self._batches[deduped] = prepare_stream(self.trace, deduped=deduped)
        return self._batches[deduped]

    def good_records(self) -> Iterator[TraceRecord]:
        """Successful references only."""
        return strip_errors(self.iter_records())

    def deduped_records(self) -> Iterator[TraceRecord]:
        """The Section 5.3 stream: errors stripped, 8-hour dedupe."""
        return dedupe_for_file_analysis(self.good_records())

    # ------------------------------------------------------------------
    # Canned analyses

    def table3(self) -> Comparison:
        """Table 3 paper-vs-measured."""
        analysis = overall_statistics(self.iter_records())
        return analysis.comparison(include_latency=self.config.simulate_latencies
                                   or self.config.workload.fill_latencies)

    def table4(self) -> Comparison:
        """Table 4 paper-vs-measured."""
        return filestore_statistics(
            self.trace.namespace, scale=self.config.workload.scale
        ).comparison()
