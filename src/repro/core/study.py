"""The end-to-end study pipeline.

A :class:`Study` owns one synthetic trace (and, lazily, a DES replay of
it) and hands the analyses what they need.  It is the object the CLI,
examples and benchmarks all drive.

The study's native artifact is the columnar batch stream:
:meth:`Study.iter_batches` yields :class:`~repro.engine.batch.EventBatch`
chunks -- raw, error-stripped, or deduped -- and every figure/table
experiment reduces those streams directly.  The record views
(:meth:`records`, :meth:`iter_records`, :meth:`good_records`,
:meth:`deduped_records`) remain as thin compatibility wrappers over the
same streams for external callers; no analysis path materializes a
``List[TraceRecord]`` anymore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.analysis import (
    Comparison,
    filestore_statistics,
    overall_statistics_from_batches,
)
from repro.mss.metrics import MetricsCollector
from repro.mss.system import MSSConfig, MSSSystem
from repro.trace.record import TraceRecord
from repro.util.units import DAY
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTrace, generate_trace

if TYPE_CHECKING:
    from repro.analysis.tenants import TenantBreakdown
    from repro.engine.batch import EventBatch
    from repro.scenarios.spec import ScenarioSpec

#: Stream views :meth:`Study.iter_batches` can produce.
BATCH_KINDS = ("raw", "good", "deduped")


@dataclass
class StudyConfig:
    """What to generate and how to simulate it."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    mss: MSSConfig = field(default_factory=MSSConfig)
    #: Replace analytic latencies with DES-simulated ones.
    simulate_latencies: bool = False
    #: Content-addressed trace-store cache directory.  When set, the raw
    #: batch stream comes from (and on a miss is written to) an on-disk
    #: columnar :class:`~repro.engine.store.TraceStore` keyed by the
    #: workload config, so repeated batch-stream analyses skip
    #: generation.  The store holds events, not the namespace: anything
    #: touching :attr:`Study.trace` (Table 4, record views, prepared HSM
    #: streams) still generates on first use.
    cache_dir: Optional[str] = None
    #: Composed multi-tenant workload.  When set, the study's stream is
    #: the scenario compositor's k-way merge of every component (each
    #: generated -- or served from the ``cache_dir`` store -- under its
    #: spec-derived seed) and ``workload`` is ignored; per-tenant
    #: breakdowns come from :meth:`Study.tenant_breakdown`.
    scenario: Optional["ScenarioSpec"] = None

    @staticmethod
    def dense(scale: float = 0.02, seed: int = 42, days: float = 16.0) -> "StudyConfig":
        """Short-duration config with full-scale arrival density.

        Fine-timescale statistics (Figure 7 clustering, Figure 3 queueing)
        depend on arrival *density*, which a scaled two-year trace cannot
        keep.  The dense config trades calendar span for density.
        """
        workload = WorkloadConfig(
            scale=scale, seed=seed, duration_seconds=days * DAY,
            fill_latencies=False,
        )
        return StudyConfig(workload=workload, simulate_latencies=True)


class Study:
    """One reproducible run: trace + optional DES replay + analyses."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        if self.config.scenario is not None and self.config.simulate_latencies:
            raise ValueError(
                "scenario studies carry analytic latencies from their "
                "components; simulate_latencies is not supported with a "
                "scenario"
            )
        self._trace: Optional[SyntheticTrace] = None
        self._records: Optional[List[TraceRecord]] = None
        self._replayed: Optional[Tuple[List["EventBatch"], MetricsCollector]] = None
        self._batches: dict = {}
        self._store = None
        self._scenario_batches: Optional[List["EventBatch"]] = None
        self._scenario_store = None

    # ------------------------------------------------------------------
    # Lazily produced artifacts

    @property
    def trace(self) -> SyntheticTrace:
        """The synthetic trace (generated on first use)."""
        if self.config.scenario is not None:
            raise ValueError(
                "a scenario study composes several component traces and "
                "has no single SyntheticTrace/namespace; use iter_batches, "
                "event_batches or tenant_breakdown instead"
            )
        if self._trace is None:
            self._trace = generate_trace(self.config.workload)
        return self._trace

    def trace_store(self):
        """The cached on-disk store of the raw stream (needs a cache dir).

        On a hit the trace itself is never generated -- batches are
        memory-mapped straight off the shards.  On a miss the study's own
        trace is written through, so a cold ``report`` still generates
        only once.
        """
        from repro.engine.store import cache_trace, open_cached

        if self.config.cache_dir is None:
            raise ValueError("study has no cache_dir configured")
        if self._store is None:
            self._store = open_cached(
                self.config.workload, self.config.cache_dir, variant="trace"
            )
            if self._store is None:
                self._store = cache_trace(self.trace, self.config.cache_dir)
        return self._store

    def _replayed_batches(self) -> List["EventBatch"]:
        """DES-replayed batch stream (simulated latencies), cached."""
        if self._replayed is None:
            system = MSSSystem(self.config.mss)
            self._replayed = system.replay_columns(
                self.trace.iter_batches(), self.trace.namespace
            )
        return self._replayed[0]

    def iter_batches(self, kind: str = "raw") -> Iterator["EventBatch"]:
        """The trace as a columnar batch stream -- the analysis path.

        ``kind`` selects the stream view the paper's filters produce:
        ``"raw"`` (errors included), ``"good"`` (Section 5.1 error
        strip), or ``"deduped"`` (error strip plus the Section 5.3
        eight-hour dedupe), all applied per batch with the engine's
        vectorized transforms.  When the study simulates latencies, the
        raw stream carries DES-simulated latency/transfer columns
        (replayed once, cached).
        """
        from repro.engine.stream import dedupe_blocks, strip_errors

        if kind not in BATCH_KINDS:
            raise ValueError(f"unknown batch kind {kind!r}; choose from {BATCH_KINDS}")
        if self.config.scenario is not None:
            base: Iterator["EventBatch"] = self._scenario_base()
        elif self.config.simulate_latencies:
            base = iter(self._replayed_batches())
        elif self.config.cache_dir is not None:
            base = self.trace_store().iter_batches()
        else:
            base = self.trace.iter_batches()
        if kind == "raw":
            return base
        good = strip_errors(base)
        if kind == "good":
            return good
        return dedupe_blocks(good)

    def _scenario_base(self) -> Iterator["EventBatch"]:
        """The composed scenario stream, composed at most once.

        With a ``cache_dir`` the composed store is written once
        (scenario-hash addressed) and every pass streams its memmapped
        shards; without one the merged batches are kept in memory after
        the first composition -- the scenario analogue of the plain
        study holding its generated trace arrays.
        """
        if self.config.cache_dir is not None:
            if self._scenario_store is None:
                from repro.scenarios.cache import compose_cached

                self._scenario_store = compose_cached(
                    self.config.scenario, self.config.cache_dir
                )
            return self._scenario_store.iter_batches()
        if self._scenario_batches is None:
            from repro.scenarios.compositor import compose

            self._scenario_batches = [
                batch for batch in compose(self.config.scenario) if len(batch)
            ]
        return iter(self._scenario_batches)

    @property
    def mss_metrics(self) -> MetricsCollector:
        """DES metrics; triggers the columnar replay if it has not run."""
        if self._replayed is None:
            if not self.config.simulate_latencies:
                raise ValueError(
                    "study was configured without DES latencies; use "
                    "StudyConfig(simulate_latencies=True)"
                )
            self._replayed_batches()
        assert self._replayed is not None
        return self._replayed[1]

    def event_batches(self, deduped: bool = True) -> List["EventBatch"]:
        """The trace's HSM reference stream as prepared engine batches.

        Cached per dedupe flag: Section 6 experiments replay the same
        stream against many policies and capacities.  ``deduped`` is a
        strict flag -- passing a stream-kind string here (a common mixup
        with :meth:`iter_batches`) raises instead of silently preparing
        the truthy default.
        """
        from repro.engine.replay import prepare_stream
        from repro.engine.stream import collect, hsm_batches_from_stream

        if not isinstance(deduped, bool):
            raise ValueError(
                f"event_batches takes deduped=True/False, got {deduped!r}; "
                f"for stream views use iter_batches(kind) with kind in "
                f"{BATCH_KINDS}"
            )
        if deduped not in self._batches:
            if self.config.scenario is not None:
                self._batches[deduped] = collect(
                    hsm_batches_from_stream(
                        self.iter_batches("raw"), deduped=deduped
                    )
                )
            else:
                self._batches[deduped] = prepare_stream(self.trace, deduped=deduped)
        return self._batches[deduped]

    def tenant_breakdown(self) -> "TenantBreakdown":
        """Per-tenant Table-3-style statistics of the raw stream.

        For scenario studies the split follows the compositor's
        id-remapping contract; a plain study is reported as the single
        tenant ``"all"``.
        """
        from repro.analysis.tenants import tenant_breakdown_from_batches

        labels = (
            self.config.scenario.tenants
            if self.config.scenario is not None
            else ["all"]
        )
        return tenant_breakdown_from_batches(self.iter_batches("raw"), labels)

    # ------------------------------------------------------------------
    # Record views (compatibility wrappers over the batch streams)

    def iter_records(self) -> Iterator[TraceRecord]:
        """Lazy record view of the (possibly replayed) raw stream."""
        from repro.engine.records import records_from_batches

        if self._records is not None:
            return iter(self._records)
        return records_from_batches(self.iter_batches("raw"), self.trace.namespace)

    def records(self) -> List[TraceRecord]:
        """Materialized records, DES-replayed if the config asks for it.

        Compatibility API: analyses consume :meth:`iter_batches`; this
        exists for external callers that want per-record objects.
        """
        if self._records is None:
            self._records = list(self.iter_records())
        return self._records

    def good_records(self) -> Iterator[TraceRecord]:
        """Successful references only (record view of ``"good"``)."""
        from repro.trace.filters import strip_errors

        return strip_errors(self.iter_records())

    def deduped_records(self) -> Iterator[TraceRecord]:
        """The Section 5.3 stream (record view of ``"deduped"``)."""
        from repro.trace.filters import dedupe_for_file_analysis

        return dedupe_for_file_analysis(self.good_records())

    # ------------------------------------------------------------------
    # Canned analyses

    def table3(self) -> Comparison:
        """Table 3 paper-vs-measured (columnar one-pass accumulation)."""
        analysis = overall_statistics_from_batches(self.iter_batches("raw"))
        return analysis.comparison(include_latency=self.config.simulate_latencies
                                   or self.config.workload.fill_latencies)

    def table4(self) -> Comparison:
        """Table 4 paper-vs-measured."""
        return filestore_statistics(
            self.trace.namespace, scale=self.config.workload.scale
        ).comparison()
