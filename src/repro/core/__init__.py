"""Orchestration: published paper values, the study pipeline, and the CLI.

Importing the submodules lazily where needed avoids a cycle: ``paper`` is
imported by low-level packages (trace, workload), while ``study`` and
``experiments`` sit on top of everything.
"""

from repro.core import paper  # noqa: F401

__all__ = ["paper"]
