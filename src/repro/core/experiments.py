"""Experiment registry: every table and figure, one runner each.

Each runner regenerates one published artifact from a :class:`Study` and
returns an :class:`ExperimentResult` carrying the rendered text and (when
applicable) the paper-vs-measured comparison.  The benchmarks call these;
``python -m repro report`` runs them all.

Every stream-consuming runner reduces the study's columnar batch
streams (``study.iter_batches(...)``) with the vectorized
``*_from_batches`` analyses; no runner materializes a record list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis import (
    Comparison,
    decomposition_comparison,
    directory_distribution,
    dynamic_distribution_from_batches,
    file_interreference_from_batches,
    filestore_statistics,
    from_metrics,
    hourly_profile_from_batches,
    media_comparison_table,
    overall_statistics_from_batches,
    periodicity_comparison_from_batches,
    pyramid_is_consistent,
    pyramid_table,
    read_growth_factor,
    reference_counts_from_batches,
    referenced_share,
    secular_series_from_batches,
    static_distribution,
    storage_pyramid,
    system_interarrivals_from_batches,
    trace_format_table,
    verbose_log_sample,
    weekend_read_dip,
    weekly_profile_from_batches,
    working_hours_lift,
    write_flatness,
)
from repro.core import paper
from repro.core.study import Study
from repro.mss.network import ncar_topology
from repro.util.timeutil import TraceCalendar
from repro.util.units import DAY


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    description: str
    text: str
    comparison: Optional[Comparison] = None

    def render(self) -> str:
        """Text block for reports."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        if self.comparison is not None:
            parts.append(self.comparison.render())
        if self.text:
            parts.append(self.text)
        return "\n".join(parts)


Runner = Callable[[Study], ExperimentResult]
_REGISTRY: Dict[str, tuple] = {}


def experiment(exp_id: str, description: str, needs_dense: bool = False):
    """Decorator registering an experiment runner."""

    def wrap(fn: Runner):
        _REGISTRY[exp_id] = (description, fn, needs_dense)
        return fn

    return wrap


def experiment_ids() -> List[str]:
    """All registered experiment ids."""
    return list(_REGISTRY)

def needs_dense_study(exp_id: str) -> bool:
    """Whether the experiment requires the dense (full-density) study."""
    return _REGISTRY[exp_id][2]


def run_experiment(exp_id: str, study: Study) -> ExperimentResult:
    """Run one experiment against a study."""
    try:
        description, runner, _ = _REGISTRY[exp_id]
    except KeyError as exc:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {experiment_ids()}"
        ) from exc
    return runner(study)


# ---------------------------------------------------------------------------
# Tables


@experiment("T1", "Table 1: media comparison")
def _table1(study: Study) -> ExperimentResult:
    from repro.analysis import crossover_size, time_to_last_byte
    from repro.util.units import MB

    table = media_comparison_table()
    cross = crossover_size()
    lines = [table.render(), ""]
    size = 80 * MB
    for spec in paper.TABLE1:
        lines.append(
            f"time to last byte of an 80 MB file on {spec.name}: "
            f"{time_to_last_byte(spec, size):.1f} s"
        )
    lines.append(f"optical-vs-helical crossover at {cross / MB:.1f} MB")
    return ExperimentResult("T1", "media comparison", "\n".join(lines))


@experiment("T2", "Table 2: trace record format and compaction")
def _table2(study: Study) -> ExperimentResult:
    from itertools import islice

    from repro.trace.writer import dump_trace_string

    # Table 2 is *about* the per-record format, so this is the one
    # experiment that renders record views -- a bounded head of the lazy
    # adapter, never the materialized trace.
    records = list(islice(study.iter_records(), 20000))
    compact = dump_trace_string(records)
    ratio = len(verbose_log_sample(records)) / max(len(compact), 1)
    comp = Comparison("Table 2 (format compaction)")
    comp.add(
        "log-to-trace compression ratio",
        50.0 / 10.5,
        ratio,
        note="paper: 50 MB/month of logs -> 10-11 MB/month of trace",
    )
    return ExperimentResult(
        "T2", "trace record format", trace_format_table().render(), comp
    )


@experiment("T3", "Table 3: overall trace statistics")
def _table3(study: Study) -> ExperimentResult:
    analysis = overall_statistics_from_batches(study.iter_batches("raw"))
    return ExperimentResult(
        "T3", "overall trace statistics", analysis.render(), analysis.comparison()
    )


@experiment("T4", "Table 4: the referenced file store")
def _table4(study: Study) -> ExperimentResult:
    analysis = filestore_statistics(
        study.trace.namespace, scale=study.config.workload.scale
    )
    n_referenced, byte_share = referenced_share(
        study.iter_batches("good"), study.trace.namespace
    )
    text = analysis.render() + (
        f"\ntrace touched {n_referenced} of {study.trace.namespace.file_count} "
        f"files ({byte_share:.1%} of stored bytes)"
    )
    return ExperimentResult(
        "T4", "file store statistics", text, analysis.comparison()
    )


# ---------------------------------------------------------------------------
# Figures


@experiment("F1", "Figure 1: the storage pyramid")
def _fig1(study: Study) -> ExperimentResult:
    levels = storage_pyramid()
    comp = Comparison("Figure 1 (pyramid monotonicity)")
    comp.add("monotone cost/latency/capacity", 1.0, 1.0 if pyramid_is_consistent(levels) else 0.0)
    return ExperimentResult("F1", "storage pyramid", pyramid_table().render(), comp)


@experiment("F2", "Figure 2: NCAR network topology")
def _fig2(study: Study) -> ExperimentResult:
    topo = ncar_topology()
    lines = ["Figure 2: network connections"]
    for link in topo.links:
        lines.append(
            f"  {link.a:14s} -- {link.b:14s} [{link.network}, "
            f"{link.bandwidth / 1e6:.1f} MB/s]"
        )
    comp = Comparison("Figure 2 (topology structure)")
    comp.add("MASnet links", 4, len(topo.links_by_network("MASnet")))
    comp.add(
        "Cray has direct LDN path to every MSS device",
        3,
        sum(1 for link in topo.links_by_network("LDN") if link.touches("cray-ymp")),
    )
    return ExperimentResult("F2", "network topology", "\n".join(lines), comp)


@experiment("F3", "Figure 3: latency to first byte", needs_dense=True)
def _fig3(study: Study) -> ExperimentResult:
    dists = from_metrics(study.mss_metrics)
    comp = dists.comparison()
    decomposition = decomposition_comparison(study.mss_metrics)
    text = dists.render() + "\n\n" + decomposition.render()
    return ExperimentResult("F3", "latency to first byte", text, comp)


@experiment("F4", "Figure 4: transfer rate by hour of day")
def _fig4(study: Study) -> ExperimentResult:
    profile = hourly_profile_from_batches(study.iter_batches("good"))
    comp = Comparison("Figure 4 (daily rhythm)")
    comp.add(
        "reads: working-hours lift over small hours",
        5.5,
        working_hours_lift(profile),
        note="Figure 4 shape: ~1 GB/h overnight vs ~5.5 GB/h peak",
    )
    comp.add("writes: coefficient of variation", 0.15, write_flatness(profile),
             note="paper: writes almost constant")
    return ExperimentResult(
        "F4", "hourly rate profile", profile.render("Figure 4 (measured)"), comp
    )


@experiment("F5", "Figure 5: transfer rate by day of week")
def _fig5(study: Study) -> ExperimentResult:
    profile = weekly_profile_from_batches(study.iter_batches("good"))
    comp = Comparison("Figure 5 (weekly rhythm)")
    comp.add("weekend read dip (weekend/weekday)", 0.5, weekend_read_dip(profile))
    comp.add("writes: coefficient of variation", 0.07, write_flatness(profile),
             note="paper: little variation over the week")
    return ExperimentResult(
        "F5", "weekly rate profile", profile.render("Figure 5 (measured)"), comp
    )


@experiment("F6", "Figure 6: weekly averages over the two years")
def _fig6(study: Study) -> ExperimentResult:
    from repro.analysis import holiday_read_dip

    profile = secular_series_from_batches(study.iter_batches("good"))
    calendar = TraceCalendar()
    comp = Comparison("Figure 6 (secular trend)")
    comp.add("read growth (last/first quarter)", 2.5, read_growth_factor(profile))
    comp.add("write growth (last/first quarter)", 1.0,
             float(profile.write_gb_per_hour[-26:].mean()
                   / max(profile.write_gb_per_hour[:26].mean(), 1e-12)))
    comp.add(
        "holiday read dip (vs neighbours)",
        0.6,
        holiday_read_dip(profile, calendar.holiday_weeks(min_days=3)),
        note="reads drop around Thanksgiving/Christmas",
    )
    return ExperimentResult(
        "F6", "secular series", profile.render("Figure 6 (measured)"), comp
    )


@experiment("F7", "Figure 7: system interarrival intervals", needs_dense=True)
def _fig7(study: Study) -> ExperimentResult:
    analysis = system_interarrivals_from_batches(study.iter_batches("raw"))
    comp = Comparison("Figure 7 (interarrivals)")
    comp.add(
        "fraction under 10 s",
        paper.SYSTEM_INTERARRIVAL_FRACTION_UNDER_10S,
        analysis.fraction_below(paper.SYSTEM_INTERARRIVAL_P90_BOUND_SECONDS),
    )
    comp.add(
        "mean interarrival",
        paper.MEAN_SYSTEM_INTERARRIVAL_SECONDS,
        analysis.mean,
        unit="s",
        note="dense study keeps full-scale density",
    )
    return ExperimentResult(
        "F7",
        "system interarrivals",
        analysis.render("Figure 7 (measured)", unit_seconds=1.0, unit="s"),
        comp,
    )


@experiment("F8", "Figure 8: per-file reference counts")
def _fig8(study: Study) -> ExperimentResult:
    counts = reference_counts_from_batches(study.iter_batches("deduped"))
    return ExperimentResult(
        "F8", "reference counts", counts.render(), counts.comparison()
    )


@experiment("F9", "Figure 9: per-file interreference intervals")
def _fig9(study: Study) -> ExperimentResult:
    analysis = file_interreference_from_batches(study.iter_batches("deduped"))
    comp = Comparison("Figure 9 (file interreference)")
    comp.add(
        "gaps under 1 day",
        paper.FRACTION_FILE_GAPS_UNDER_1_DAY,
        analysis.fraction_below(DAY),
        note="known deviation: dedupe-consistent generator caps this",
    )
    comp.add("gaps beyond 100 days exist", 1.0,
             1.0 if analysis.fraction_below(100 * DAY) < 1.0 else 0.0)
    return ExperimentResult(
        "F9",
        "file interreference intervals",
        analysis.render("Figure 9 (measured)", unit_seconds=DAY, unit="days"),
        comp,
    )


@experiment("F10", "Figure 10: dynamic size distribution")
def _fig10(study: Study) -> ExperimentResult:
    dist = dynamic_distribution_from_batches(study.iter_batches("good"))
    comp = Comparison("Figure 10 (dynamic sizes)")
    comp.add(
        "requests <= 1 MB",
        paper.FRACTION_REQUESTS_UNDER_1MB,
        dist.fraction_requests_under(1_000_000),
    )
    comp.add(
        "write bump at 8 MB present",
        1.0,
        1.0 if dist.write_bump_strength() > 1.2 else 0.0,
        note=f"write/read mass ratio at 8 MB = {dist.write_bump_strength():.1f}",
    )
    return ExperimentResult("F10", "dynamic sizes", dist.render(), comp)


@experiment("F11", "Figure 11: static size distribution")
def _fig11(study: Study) -> ExperimentResult:
    dist = static_distribution(study.trace.namespace)
    return ExperimentResult("F11", "static sizes", dist.render(), dist.comparison())


@experiment("F12", "Figure 12: directory sizes")
def _fig12(study: Study) -> ExperimentResult:
    dist = directory_distribution(study.trace.namespace)
    return ExperimentResult("F12", "directory sizes", dist.render(), dist.comparison())


@experiment("ABSTRACT", "Periodicity: one-day and one-week periods")
def _abstract(study: Study) -> ExperimentResult:
    comp = periodicity_comparison_from_batches(
        lambda: study.iter_batches("good")
    )
    return ExperimentResult("ABSTRACT", "request periodicity", "", comp)


@experiment("S6", "Section 6: migration policy comparison")
def _section6(study: Study) -> ExperimentResult:
    from repro.analysis.render import TextTable
    from repro.engine import replay_policy

    batches = study.event_batches()
    total = study.trace.namespace.total_bytes
    capacity = int(total * paper.STP_DISK_FRACTION_FOR_TARGET)
    table = TextTable(
        ["policy", "miss ratio", "capacity-miss ratio", "person-min/day"],
        title=f"Section 6: policies at {paper.STP_DISK_FRACTION_FOR_TARGET:.1%} of store",
    )
    misses = {}
    for name in ("opt", "stp", "lru", "saac", "fifo", "random", "largest-first"):
        metrics = replay_policy(batches, name, capacity, namespace=study.trace.namespace)
        misses[name] = metrics.read_miss_ratio
        table.add_row(
            name,
            f"{metrics.read_miss_ratio:.4f}",
            f"{metrics.capacity_miss_ratio:.4f}",
            f"{metrics.person_minutes_per_day():.2f}",
        )
    comp = Comparison("Section 6 (policy ordering)")
    comp.add("STP beats LRU", 1.0, 1.0 if misses["stp"] <= misses["lru"] else 0.0,
             note="Lawrie: STP best 'though only by a slim margin'")
    comp.add("STP beats pure size", 1.0,
             1.0 if misses["stp"] < misses["largest-first"] else 0.0)
    comp.add("OPT is the lower bound", 1.0,
             1.0 if misses["opt"] <= min(misses[n] for n in misses if n != "opt") else 0.0)
    return ExperimentResult("S6", "policy comparison", table.render(), comp)
