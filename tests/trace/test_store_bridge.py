"""Trace-file <-> columnar-store bridge tests."""

import numpy as np
import pytest

from repro.engine.batch import DEVICE_ORDER
from repro.trace.errors import ErrorKind
from repro.trace.record import Device, make_read, make_write
from repro.trace.store import batches_from_records, import_trace_file
from repro.trace.writer import TraceWriter


def sample_records():
    return [
        make_write(Device.MSS_DISK, 10.0, 500, "/a/one", 3, transfer_time=0.5),
        make_read(Device.TAPE_SILO, 20.0, 500, "/a/one", 3, startup_latency=2.0),
        make_read(Device.MSS_DISK, 30.0, 900, "/b/two", 4),
        make_read(Device.MSS_DISK, 40.0, 0, "/gone", 5,
                  error=ErrorKind.NO_SUCH_FILE),
        make_read(Device.TAPE_SHELF, 50.0, 700, "/a/one", 6,
                  error=ErrorKind.MEDIA_ERROR),
    ]


def test_batches_from_records_interns_paths():
    batches = list(batches_from_records(sample_records(), chunk_size=3))
    assert [len(b) for b in batches] == [3, 2]
    merged_ids = np.concatenate([b.file_id for b in batches])
    # /a/one -> 0 (first appearance), /b/two -> 1, NO_SUCH_FILE -> -1,
    # MEDIA_ERROR against /a/one -> its interned id.
    assert merged_ids.tolist() == [0, 0, 1, -1, 0]
    assert batches[0].is_write.tolist() == [True, False, False]
    devices = [DEVICE_ORDER[i] for i in np.concatenate([b.device for b in batches])]
    assert devices == [Device.MSS_DISK, Device.TAPE_SILO, Device.MSS_DISK,
                       Device.MSS_DISK, Device.TAPE_SHELF]
    errors = np.concatenate([b.error for b in batches]).tolist()
    assert errors == [0, 0, 0, int(ErrorKind.NO_SUCH_FILE),
                      int(ErrorKind.MEDIA_ERROR)]
    assert batches[0].user.tolist() == [3, 3, 4]
    assert batches[0].latency.tolist() == [0.0, 2.0, 0.0]
    assert batches[0].transfer.tolist() == [0.5, 0.0, 0.0]


def test_batches_from_records_rejects_bad_chunk():
    with pytest.raises(ValueError):
        list(batches_from_records(sample_records(), chunk_size=0))


def test_import_trace_file_round_trip(tmp_path):
    trace_file = tmp_path / "t.rt"
    with TraceWriter(trace_file) as writer:
        writer.write_all(sample_records())
    store = import_trace_file(trace_file, tmp_path / "store", chunk_size=2)
    assert store.n_events == 5
    assert store.manifest["variant"] == "imported"
    assert store.manifest["config_hash"] is None
    assert store.manifest["meta"]["source"] == str(trace_file)
    merged = np.concatenate([b.file_id for b in store.iter_batches()])
    assert merged.tolist() == [0, 0, 1, -1, 0]
    store.verify()
