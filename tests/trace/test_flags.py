"""Flag-word encode/decode tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.errors import ErrorKind
from repro.trace.flags import MAX_FLAG_VALUE, Flags


def test_default_flags_are_clean_read():
    f = Flags()
    assert f.is_read and not f.is_write
    assert not f.is_error
    assert f.encode() == 0


def test_write_bit():
    assert Flags(is_write=True).encode() & 1 == 1
    assert Flags.decode(1).is_write


def test_error_kind_roundtrip():
    for kind in ErrorKind:
        f = Flags(error=kind)
        assert Flags.decode(f.encode()).error is kind


def test_error_detection():
    assert not Flags(error=ErrorKind.NONE).is_error
    assert Flags(error=ErrorKind.NO_SUCH_FILE).is_error


@given(
    st.booleans(),
    st.sampled_from(list(ErrorKind)),
    st.booleans(),
    st.booleans(),
)
def test_roundtrip_all_fields(is_write, error, compressed, same_user):
    f = Flags(is_write=is_write, error=error, compressed=compressed, same_user=same_user)
    decoded = Flags.decode(f.encode())
    assert decoded == f


def test_decode_rejects_out_of_range():
    with pytest.raises(ValueError):
        Flags.decode(-1)
    with pytest.raises(ValueError):
        Flags.decode(MAX_FLAG_VALUE + 1)


def test_decode_rejects_unknown_error_kind():
    # Error field is bits 1-3; value 0b101 = 5 is not a valid ErrorKind.
    with pytest.raises(ValueError):
        Flags.decode(0b1010)


def test_replace_produces_new_flags():
    f = Flags(is_write=False)
    g = f.replace(same_user=True)
    assert g.same_user and not f.same_user
    assert g.is_read
