"""TraceStatistics accumulator tests (the Table 3 engine)."""

import pytest

from repro.trace.errors import ErrorKind
from repro.trace.record import Device, make_read, make_write
from repro.trace.stats import CellStats, TraceStatistics
from repro.util.units import GB, MB


@pytest.fixture
def stats():
    s = TraceStatistics()
    s.add(make_read(Device.MSS_DISK, 0.0, 4 * MB, "/a", 1, startup_latency=30.0))
    s.add(make_read(Device.TAPE_SILO, 18.0, 80 * MB, "/b", 1, startup_latency=110.0))
    s.add(make_write(Device.MSS_DISK, 36.0, 2 * MB, "/c", 2, startup_latency=20.0))
    s.add(
        make_read(
            Device.MSS_DISK, 54.0, 0, "/gone", 3, error=ErrorKind.NO_SUCH_FILE
        )
    )
    return s


def test_error_accounting(stats):
    assert stats.raw_references == 4
    assert stats.total_errors == 1
    assert stats.analyzed_references == 3
    assert stats.error_fraction == pytest.approx(0.25)
    assert stats.error_counts[ErrorKind.NO_SUCH_FILE] == 1


def test_cell_breakdown(stats):
    disk_reads = stats.cell(Device.MSS_DISK, False)
    assert disk_reads.references == 1
    assert disk_reads.bytes_transferred == 4 * MB
    assert disk_reads.avg_latency_seconds == pytest.approx(30.0)
    silo_reads = stats.cell(Device.TAPE_SILO, False)
    assert silo_reads.avg_file_size_mb == pytest.approx(80.0)


def test_unseen_cell_is_empty(stats):
    cell = stats.cell(Device.TAPE_SHELF, True)
    assert cell.references == 0
    assert cell.avg_latency_seconds == 0.0


def test_device_and_direction_totals(stats):
    disk = stats.device_total(Device.MSS_DISK)
    assert disk.references == 2
    reads = stats.direction_total(False)
    assert reads.references == 2
    assert reads.bytes_transferred == 84 * MB


def test_grand_total(stats):
    total = stats.grand_total()
    assert total.references == 3
    assert total.gb_transferred == pytest.approx(86 * MB / GB)
    # Mean size is per-reference, not per-byte.
    assert total.avg_file_size_mb == pytest.approx((4 + 80 + 2) / 3)


def test_read_write_ratio(stats):
    assert stats.read_write_ratio() == pytest.approx(2.0)


def test_mean_interarrival(stats):
    # Span 54 s over 3 analyzed references.
    assert stats.mean_interarrival_seconds() == pytest.approx(18.0)


def test_mean_interarrival_needs_data():
    with pytest.raises(ValueError):
        TraceStatistics().mean_interarrival_seconds()


def test_cell_merge():
    a = CellStats()
    b = CellStats()
    a.add(make_read(Device.MSS_DISK, 0.0, 10 * MB, "/a", 1, startup_latency=10.0))
    b.add(make_read(Device.MSS_DISK, 0.0, 20 * MB, "/b", 1, startup_latency=20.0))
    a.merge(b)
    assert a.references == 2
    assert a.avg_file_size_mb == pytest.approx(15.0)
    assert a.avg_latency_seconds == pytest.approx(15.0)


def test_add_all_chains(stats):
    more = TraceStatistics().add_all(
        [make_read(Device.MSS_DISK, 0.0, MB, "/x", 1)]
    )
    assert more.analyzed_references == 1
