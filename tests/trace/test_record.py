"""TraceRecord validation and helper tests."""

import pytest

from repro.trace.errors import ErrorKind, TraceValidationError
from repro.trace.flags import Flags
from repro.trace.record import (
    Device,
    TraceRecord,
    device_token,
    make_read,
    make_write,
    parse_device_token,
)


def test_make_read_direction():
    r = make_read(Device.TAPE_SILO, 100.0, 80_000_000, "/u/f.nc", 42)
    assert r.is_read and not r.is_write
    assert r.source is Device.TAPE_SILO
    assert r.destination is Device.CRAY
    assert r.storage_device is Device.TAPE_SILO


def test_make_write_direction():
    r = make_write(Device.MSS_DISK, 5.0, 1_000, "/u/g.dat", 7)
    assert r.is_write
    assert r.destination is Device.MSS_DISK
    assert r.storage_device is Device.MSS_DISK


def test_reads_must_come_from_storage():
    with pytest.raises(TraceValidationError):
        make_read(Device.CRAY, 0.0, 1, "/f", 1)  # type: ignore[arg-type]


def test_rejects_same_endpoints():
    with pytest.raises(TraceValidationError):
        TraceRecord(
            source=Device.CRAY,
            destination=Device.CRAY,
            flags=Flags(is_write=True),
            start_time=0.0,
            startup_latency=0.0,
            transfer_time=0.0,
            file_size=1,
            mss_path="/f",
            local_path="/f",
            user_id=1,
        )


def test_rejects_storage_to_storage():
    with pytest.raises(TraceValidationError):
        TraceRecord(
            source=Device.MSS_DISK,
            destination=Device.TAPE_SILO,
            flags=Flags(is_write=True),
            start_time=0.0,
            startup_latency=0.0,
            transfer_time=0.0,
            file_size=1,
            mss_path="/f",
            local_path="/f",
            user_id=1,
        )


def test_rejects_flag_direction_mismatch():
    with pytest.raises(TraceValidationError):
        TraceRecord(
            source=Device.MSS_DISK,
            destination=Device.CRAY,
            flags=Flags(is_write=True),  # says write, but data flows to Cray
            start_time=0.0,
            startup_latency=0.0,
            transfer_time=0.0,
            file_size=1,
            mss_path="/f",
            local_path="/f",
            user_id=1,
        )


@pytest.mark.parametrize(
    "field,value",
    [
        ("start_time", -1.0),
        ("startup_latency", -0.1),
        ("transfer_time", -0.1),
        ("file_size", -1),
        ("user_id", -2),
    ],
)
def test_rejects_negative_fields(field, value):
    kwargs = dict(
        device=Device.MSS_DISK,
        start_time=0.0,
        file_size=1,
        mss_path="/f",
        user_id=1,
        startup_latency=0.0,
        transfer_time=0.0,
    )
    mapping = {
        "start_time": "start_time",
        "startup_latency": "startup_latency",
        "transfer_time": "transfer_time",
        "file_size": "file_size",
        "user_id": "user_id",
    }
    kwargs[mapping[field]] = value
    with pytest.raises(TraceValidationError):
        make_read(**kwargs)


def test_rejects_empty_path():
    with pytest.raises(TraceValidationError):
        make_read(Device.MSS_DISK, 0.0, 1, "", 1)


def test_derived_times():
    r = make_read(
        Device.TAPE_SHELF, 100.0, 10, "/f", 1,
        startup_latency=290.0, transfer_time=40.0,
    )
    assert r.completion_time == pytest.approx(430.0)
    assert r.response_time == pytest.approx(330.0)


def test_with_times_replaces_only_given():
    r = make_read(Device.MSS_DISK, 0.0, 1, "/f", 1, startup_latency=5.0, transfer_time=2.0)
    r2 = r.with_times(startup_latency=9.0)
    assert r2.startup_latency == 9.0
    assert r2.transfer_time == 2.0
    assert r.startup_latency == 5.0  # original untouched
    assert r.with_times() is r


def test_error_record_carries_kind():
    r = make_read(Device.MSS_DISK, 0.0, 0, "/missing", 1, error=ErrorKind.NO_SUCH_FILE)
    assert r.is_error
    assert r.error is ErrorKind.NO_SUCH_FILE


def test_default_local_path():
    r = make_read(Device.MSS_DISK, 0.0, 1, "/home/u1/data.nc", 1)
    assert r.local_path == "/tmp/wrk/data.nc"


def test_device_tokens_roundtrip():
    for device in Device:
        assert parse_device_token(device_token(device)) is device
    with pytest.raises(TraceValidationError):
        parse_device_token("?")


def test_storage_devices_order():
    assert Device.storage_devices() == (
        Device.MSS_DISK,
        Device.TAPE_SILO,
        Device.TAPE_SHELF,
    )
    assert not Device.CRAY.is_storage
