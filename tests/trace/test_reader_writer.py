"""File-level reader/writer tests."""

import io

import pytest

from repro.trace.codec import HEADER_LINE
from repro.trace.reader import TraceReader, load_trace_string, read_trace
from repro.trace.record import Device, make_read, make_write
from repro.trace.writer import TraceWriter, dump_trace_string, write_trace


@pytest.fixture
def sample_records():
    return [
        make_write(Device.MSS_DISK, 0.0, 500, "/u/a", 1),
        make_read(Device.MSS_DISK, 30.0, 500, "/u/a", 1),
        make_read(Device.TAPE_SHELF, 90.0, 50_000_000, "/u/old.tar", 2,
                  startup_latency=290.0, transfer_time=25.0),
    ]


def test_file_roundtrip(tmp_path, sample_records):
    path = tmp_path / "trace.rt"
    count = write_trace(path, sample_records, comments={"site": "test"})
    assert count == 3
    back = read_trace(path)
    assert [r.mss_path for r in back] == ["/u/a", "/u/a", "/u/old.tar"]
    assert back[2].startup_latency == 290.0


def test_header_and_comments(tmp_path, sample_records):
    path = tmp_path / "trace.rt"
    write_trace(path, sample_records, comments={"scale": 0.01})
    lines = path.read_text().splitlines()
    assert lines[0] == HEADER_LINE
    assert lines[1] == "# scale=0.01"


def test_string_roundtrip(sample_records):
    text = dump_trace_string(sample_records)
    back = load_trace_string(text)
    assert len(back) == 3
    assert back[0].is_write


def test_writer_counts(sample_records):
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    assert writer.records_written == 0
    writer.write(sample_records[0])
    assert writer.records_written == 1
    assert writer.write_all(sample_records[1:]) == 2
    assert writer.records_written == 3


def test_writer_context_manager(tmp_path, sample_records):
    path = tmp_path / "ctx.rt"
    with TraceWriter(path) as writer:
        writer.write_all(sample_records)
    assert len(read_trace(path)) == 3


def test_reader_is_lazy(tmp_path, sample_records):
    path = tmp_path / "lazy.rt"
    write_trace(path, sample_records)
    with TraceReader(path) as reader:
        iterator = iter(reader)
        first = next(iterator)
        assert first.mss_path == "/u/a"


def test_reader_on_stream(sample_records):
    text = dump_trace_string(sample_records)
    reader = TraceReader(io.StringIO(text))
    assert len(list(reader)) == 3


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.rt"
    write_trace(path, [])
    assert read_trace(path) == []
