"""Codec tests: delta encoding, escaping, hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.codec import (
    HEADER_LINE,
    RecordDecoder,
    RecordEncoder,
    escape_path,
    iter_decode,
    quantize_record,
    unescape_path,
)
from repro.trace.errors import ErrorKind, TraceFormatError
from repro.trace.record import Device, make_read, make_write


def _roundtrip(records):
    encoder = RecordEncoder()
    lines = [encoder.encode(r) for r in records]
    decoder = RecordDecoder()
    return [decoder.decode(line) for line in lines]


def test_simple_roundtrip():
    records = [
        make_write(Device.MSS_DISK, 10.0, 1000, "/u/a.dat", 5,
                   startup_latency=3.0, transfer_time=0.5),
        make_read(Device.TAPE_SILO, 42.0, 80_000_000, "/u/b.nc", 5,
                  startup_latency=100.0, transfer_time=40.0),
    ]
    out = _roundtrip(records)
    assert [r.mss_path for r in out] == ["/u/a.dat", "/u/b.nc"]
    assert out[0].start_time == 10.0
    assert out[1].start_time == 42.0
    assert out[1].storage_device is Device.TAPE_SILO


def test_same_user_elision():
    records = [
        make_read(Device.MSS_DISK, 0.0, 1, "/a", 7),
        make_read(Device.MSS_DISK, 5.0, 1, "/b", 7),
        make_read(Device.MSS_DISK, 9.0, 1, "/c", 8),
    ]
    encoder = RecordEncoder()
    lines = [encoder.encode(r) for r in records]
    assert lines[0].endswith(" 7")
    assert lines[1].endswith(" =")
    assert lines[2].endswith(" 8")
    out = [RecordDecoder().decode(line) for line in [lines[0]]]
    assert out[0].user_id == 7
    decoded = _roundtrip(records)
    assert [r.user_id for r in decoded] == [7, 7, 8]


def test_millisecond_transfer_precision():
    r = make_read(Device.MSS_DISK, 0.0, 1, "/a", 1, transfer_time=1.2345)
    out = _roundtrip([r])[0]
    assert out.transfer_time == pytest.approx(1.234, abs=1e-9)


def test_encoder_rejects_time_regression():
    encoder = RecordEncoder()
    encoder.encode(make_read(Device.MSS_DISK, 100.0, 1, "/a", 1))
    with pytest.raises(TraceFormatError):
        encoder.encode(make_read(Device.MSS_DISK, 50.0, 1, "/b", 1))


def test_decoder_rejects_bad_field_count():
    with pytest.raises(TraceFormatError):
        RecordDecoder().decode("D C 0 0 0")


def test_decoder_rejects_orphan_same_user():
    # '=' user with no predecessor.
    line = "D C 32 0 0 0 1 /a - ="
    with pytest.raises(TraceFormatError):
        RecordDecoder().decode(line)


def test_decoder_reports_line_numbers():
    decoder = RecordDecoder()
    decoder.decode("D C 0 0 0 0 1 /a - 1")
    with pytest.raises(TraceFormatError) as err:
        decoder.decode("garbage")
    assert "line 2" in str(err.value)


def test_iter_decode_requires_header():
    with pytest.raises(TraceFormatError):
        list(iter_decode(iter(["D C 0 0 0 0 1 /a - 1"])))


def test_iter_decode_accepts_header_and_comments():
    lines = [
        HEADER_LINE,
        "# site=test",
        "",
        "D C 0 0 0 0 1 /a - 1",
    ]
    out = list(iter_decode(iter(lines)))
    assert len(out) == 1
    assert out[0].mss_path == "/a"


def test_path_escaping():
    assert escape_path("/plain/path") == "/plain/path"
    assert escape_path("/with space") == "/with%20space"
    assert unescape_path(escape_path("/a b%c\td")) == "/a b%c\td"


def test_quantize_record():
    r = make_read(
        Device.MSS_DISK, 10.6, 1, "/a", 1,
        startup_latency=3.4, transfer_time=0.01234,
    )
    q = quantize_record(r)
    assert q.start_time == 11.0
    assert q.startup_latency == 3.0
    assert q.transfer_time == pytest.approx(0.012)


# ---------------------------------------------------------------------------
# Property-based round-trip

_paths = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="/._- %"),
    min_size=1,
    max_size=40,
).map(lambda s: "/" + s.strip("/"))


@st.composite
def record_batches(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    start = 0.0
    records = []
    for _ in range(n):
        start += draw(st.integers(min_value=0, max_value=10_000))
        device = draw(st.sampled_from(list(Device.storage_devices())))
        is_write = draw(st.booleans())
        maker = make_write if is_write else make_read
        records.append(
            maker(
                device=device,
                start_time=float(start),
                file_size=draw(st.integers(min_value=0, max_value=200_000_000)),
                mss_path=draw(_paths),
                user_id=draw(st.integers(min_value=0, max_value=4000)),
                startup_latency=float(draw(st.integers(0, 1000))),
                transfer_time=draw(st.integers(0, 10_000)) / 1000.0,
                error=draw(st.sampled_from(list(ErrorKind))),
            )
        )
    return records


@given(record_batches())
@settings(max_examples=80, deadline=None)
def test_roundtrip_preserves_quantized_records(records):
    decoded = _roundtrip(records)
    assert len(decoded) == len(records)
    for original, back in zip(records, decoded):
        q = quantize_record(original)
        assert back.start_time == q.start_time
        assert back.startup_latency == q.startup_latency
        assert back.transfer_time == pytest.approx(q.transfer_time, abs=1e-9)
        assert back.file_size == original.file_size
        assert back.mss_path == original.mss_path
        assert back.user_id == original.user_id
        assert back.is_write == original.is_write
        assert back.error == original.error
        assert back.storage_device == original.storage_device
