"""Filter tests: error stripping, dedupe modes, the 8-hour statistic."""

import pytest

from repro.trace.errors import ErrorKind
from repro.trace.filters import (
    EIGHT_HOURS,
    by_device,
    by_direction,
    dedupe_for_file_analysis,
    fraction_rereferenced_within,
    only_errors,
    strip_errors,
    time_slice,
)
from repro.trace.record import Device, make_read, make_write
from repro.util.units import HOUR


def _read(t, path="/f", error=ErrorKind.NONE):
    return make_read(Device.MSS_DISK, t, 100, path, 1, error=error)


def _write(t, path="/f"):
    return make_write(Device.MSS_DISK, t, 100, path, 1)


def test_strip_and_only_errors():
    records = [_read(0), _read(1, error=ErrorKind.NO_SUCH_FILE), _read(2)]
    assert len(list(strip_errors(records))) == 2
    assert len(list(only_errors(records))) == 1


def test_by_direction():
    records = [_read(0), _write(1), _read(2)]
    assert len(list(by_direction(records, is_write=True))) == 1
    assert len(list(by_direction(records, is_write=False))) == 2


def test_by_device():
    records = [
        _read(0),
        make_read(Device.TAPE_SILO, 1, 100, "/g", 1),
    ]
    assert len(list(by_device(records, Device.TAPE_SILO))) == 1


def test_time_slice():
    records = [_read(0), _read(10), _read(20)]
    assert [r.start_time for r in time_slice(records, 5, 20)] == [10]


def test_dedupe_block_mode_keeps_one_per_block():
    # Three reads inside one 8-hour block collapse to one.
    records = [_read(0), _read(HOUR), _read(2 * HOUR)]
    kept = list(dedupe_for_file_analysis(records))
    assert len(kept) == 1


def test_dedupe_block_mode_allows_adjacent_blocks():
    # 07:50 and 08:10 are in different calendar blocks: both survive.
    records = [_read(7.9 * HOUR), _read(8.1 * HOUR)]
    kept = list(dedupe_for_file_analysis(records))
    assert len(kept) == 2


def test_dedupe_sliding_mode_enforces_spacing():
    records = [_read(7.9 * HOUR), _read(8.1 * HOUR), _read(16.2 * HOUR)]
    kept = list(dedupe_for_file_analysis(records, mode="sliding"))
    assert [r.start_time for r in kept] == [7.9 * HOUR, 16.2 * HOUR]


def test_dedupe_keeps_reads_and_writes_separately():
    records = sorted(
        [_read(0), _write(60), _read(120)], key=lambda r: r.start_time
    )
    kept = list(dedupe_for_file_analysis(records))
    # One read, one write survive in the same block; second read collapses.
    assert len(kept) == 2
    assert {r.is_write for r in kept} == {True, False}


def test_dedupe_tracks_files_independently():
    records = [_read(0, "/a"), _read(1, "/b"), _read(2, "/a")]
    kept = list(dedupe_for_file_analysis(records))
    assert len(kept) == 2


def test_dedupe_rejects_unordered_input():
    records = [_read(100), _read(50)]
    with pytest.raises(ValueError):
        list(dedupe_for_file_analysis(records))


def test_dedupe_rejects_unknown_mode():
    with pytest.raises(ValueError):
        list(dedupe_for_file_analysis([_read(0)], mode="bogus"))


def test_fraction_rereferenced_within():
    records = [
        _read(0, "/a"),
        _read(HOUR, "/a"),          # within 8 h of previous /a
        _read(2 * HOUR, "/b"),
        _read(20 * HOUR, "/a"),     # beyond the window
    ]
    assert fraction_rereferenced_within(records) == pytest.approx(0.25)


def test_fraction_rereferenced_empty_stream():
    with pytest.raises(ValueError):
        fraction_rereferenced_within([])


def test_eight_hours_constant():
    assert EIGHT_HOURS == 8 * HOUR
