"""Compositor: id remapping, k-way merge, envelopes, order invariance."""

import numpy as np
import pytest

from repro.engine.batch import EventBatch
from repro.scenarios.compositor import (
    ScenarioCompositor,
    compose,
    remap_ids,
    split_ids,
    tenant_of,
)
from repro.scenarios.spec import ComponentSpec, Envelope, ScenarioSpec
from repro.util.units import DAY
from repro.workload.config import WorkloadConfig

#: Small but non-trivial component workload (a few thousand events).
TINY = WorkloadConfig(scale=0.004, duration_seconds=30 * DAY)


def _spec(*components, seed=11):
    return ScenarioSpec(name="test", components=tuple(components), seed=seed)


def _collect(batches):
    return EventBatch.concat(list(batches))


TWO_TENANTS = _spec(
    ComponentSpec(name="alpha", workload=TINY),
    ComponentSpec(name="beta", workload=TINY, start_day=3.0),
)


@pytest.fixture(scope="module")
def composed():
    """The merged two-tenant stream, small chunks to exercise the merge."""
    return list(
        ScenarioCompositor(TWO_TENANTS, chunk_size=512).iter_batches()
    )


# ---------------------------------------------------------------------------
# Id remapping contract


def test_remap_is_round_trippable_including_negative_ids():
    local = np.array([-5, -1, 0, 1, 7, 123456], dtype=np.int64)
    for k in (1, 2, 3, 7):
        for rank in range(k):
            ranks, back = split_ids(remap_ids(local, rank, k), k)
            assert np.all(ranks == rank)
            np.testing.assert_array_equal(back, local)


def test_remap_is_collision_free_across_tenants():
    local = np.arange(-10, 1000, dtype=np.int64)
    spaces = [set(remap_ids(local, rank, 3).tolist()) for rank in range(3)]
    assert not (spaces[0] & spaces[1])
    assert not (spaces[0] & spaces[2])
    assert not (spaces[1] & spaces[2])


def test_tenant_of_matches_split(composed):
    merged = EventBatch.concat(composed)
    ranks, _ = split_ids(merged.file_id, 2)
    np.testing.assert_array_equal(tenant_of(merged.file_id, 2), ranks)
    assert set(np.unique(ranks).tolist()) == {0, 1}


# ---------------------------------------------------------------------------
# The k-way merge


def test_merge_is_time_ordered_across_batch_boundaries(composed):
    assert len(composed) > 2, "want several emitted batches"
    last = -np.inf
    for batch in composed:
        assert len(batch)
        assert np.all(np.diff(batch.time) >= 0)
        assert batch.time[0] >= last
        last = float(batch.time[-1])


def test_merge_preserves_every_component_event(composed):
    merged = EventBatch.concat(composed)
    ranks, local_ids = split_ids(merged.file_id, 2)
    from repro.workload.generator import generate_batches

    total = 0
    for rank, name in enumerate(["alpha", "beta"]):
        component = TWO_TENANTS.component(name)
        raw = _collect(
            generate_batches(TWO_TENANTS.derived_config(name), chunk_size=512)
        )
        mask = ranks == rank
        total += int(mask.sum())
        assert int(mask.sum()) == len(raw)
        np.testing.assert_array_equal(np.sort(local_ids[mask]), np.sort(raw.file_id))
        shifted = raw.time + component.start_day * DAY
        np.testing.assert_allclose(np.sort(merged.time[mask]), np.sort(shifted))
    assert total == len(merged)


def test_empty_component_contributes_nothing():
    # A daily envelope with an empty active window and zero floor thins
    # every event away: the component exists but contributes no stream.
    silent = ComponentSpec(
        name="silent",
        workload=TINY,
        envelope=Envelope(kind="daily", hour_start=5.0, hour_end=5.0, floor=0.0),
    )
    loud = ComponentSpec(name="loud", workload=TINY)
    merged = _collect(compose(_spec(silent, loud)))
    ranks = tenant_of(merged.file_id, 2)
    loud_rank = ["loud", "silent"].index("loud")
    assert np.all(ranks == loud_rank)
    solo = _collect(compose(_spec(loud, silent)))
    assert len(solo) == len(merged)


def test_single_component_scenario_is_the_identity_mapping():
    spec = _spec(ComponentSpec(name="only", workload=TINY))
    merged = _collect(compose(spec))
    from repro.workload.generator import generate_batches

    raw = _collect(generate_batches(spec.derived_config("only")))
    np.testing.assert_array_equal(merged.file_id, raw.file_id)
    np.testing.assert_array_equal(merged.time, raw.time)
    np.testing.assert_array_equal(merged.user, raw.user)


# ---------------------------------------------------------------------------
# Determinism and listing-order invariance (satellite: seed derivation)


def test_component_streams_invariant_to_listing_order():
    alpha = ComponentSpec(name="alpha", workload=TINY)
    beta = ComponentSpec(name="beta", workload=TINY, start_day=3.0)
    forward = _collect(compose(_spec(alpha, beta)))
    reversed_ = _collect(compose(_spec(beta, alpha)))
    np.testing.assert_array_equal(forward.file_id, reversed_.file_id)
    np.testing.assert_array_equal(forward.time, reversed_.time)
    np.testing.assert_array_equal(forward.is_write, reversed_.is_write)
    np.testing.assert_array_equal(forward.user, reversed_.user)


def test_composition_is_deterministic(composed):
    again = list(ScenarioCompositor(TWO_TENANTS, chunk_size=512).iter_batches())
    a, b = EventBatch.concat(composed), EventBatch.concat(again)
    np.testing.assert_array_equal(a.file_id, b.file_id)
    np.testing.assert_array_equal(a.time, b.time)


def test_envelope_thins_outside_window():
    nightly = ComponentSpec(
        name="night",
        workload=TINY,
        envelope=Envelope(kind="daily", hour_start=0.0, hour_end=6.0, floor=0.0),
    )
    merged = _collect(compose(_spec(nightly)))
    assert len(merged)
    hours = (merged.time / 3600.0) % 24.0
    assert np.all(hours < 6.0)


def test_envelope_applies_to_scenario_time_not_component_time():
    # A window opening at a fractional start_day: the daily envelope
    # still declares scenario wall-clock hours, so the kept events land
    # inside 0-6h of the *composed* trace, not 6-12h.
    shifted_night = ComponentSpec(
        name="night",
        workload=TINY,
        start_day=0.25,
        envelope=Envelope(kind="daily", hour_start=0.0, hour_end=6.0, floor=0.0),
    )
    merged = _collect(compose(_spec(shifted_night)))
    assert len(merged)
    hours = (merged.time / 3600.0) % 24.0
    assert np.all(hours < 6.0)


def test_referenced_bytes_requires_cache_dir():
    with pytest.raises(ValueError, match="cache_dir"):
        ScenarioCompositor(TWO_TENANTS).referenced_bytes()


def test_cached_composition_matches_streamed(tmp_path):
    cold = _collect(compose(TWO_TENANTS))
    warm = _collect(compose(TWO_TENANTS, cache_dir=str(tmp_path)))
    np.testing.assert_array_equal(cold.file_id, warm.file_id)
    np.testing.assert_array_equal(cold.time, warm.time)
    # Both components landed in the content-addressed cache.
    assert len(list(tmp_path.glob("trace-*"))) == 2
