"""Scenario store cache, trace-info metadata, and the scenario CLI."""

import json

import numpy as np
import pytest

from repro.core.cli import main
from repro.engine.batch import EventBatch
from repro.engine.store import TraceStore
from repro.scenarios.cache import (
    compose_cached,
    open_scenario_store,
    scenario_store_dir,
)
from repro.scenarios.compositor import compose
from repro.scenarios.spec import ComponentSpec, ScenarioSpec
from repro.util.units import DAY
from repro.workload.config import WorkloadConfig

TINY = WorkloadConfig(scale=0.004, duration_seconds=30 * DAY)

SPEC = ScenarioSpec(
    name="cache-test",
    components=(
        ComponentSpec(name="alpha", workload=TINY),
        ComponentSpec(name="beta", workload=TINY, start_day=2.0),
    ),
    seed=5,
)


# ---------------------------------------------------------------------------
# Composed-store cache


def test_compose_cached_round_trips_the_stream(tmp_path):
    store = compose_cached(SPEC, tmp_path)
    stored = EventBatch.concat(list(store.iter_batches()))
    direct = EventBatch.concat(list(compose(SPEC)))
    np.testing.assert_array_equal(stored.file_id, direct.file_id)
    np.testing.assert_array_equal(stored.time, direct.time)
    scenario = store.meta["scenario"]
    assert scenario["name"] == "cache-test"
    assert scenario["hash"] == SPEC.scenario_hash()
    assert scenario["tenants"] == ["alpha", "beta"]
    assert store.total_bytes and store.total_bytes > 0


def test_compose_cached_hits_do_not_rewrite(tmp_path, monkeypatch):
    first = compose_cached(SPEC, tmp_path)
    # A warm hit must neither regenerate components nor recompose.
    import repro.workload.generator as generator

    def boom(*args, **kwargs):  # pragma: no cover - the assertion is the call
        raise AssertionError("cache hit should not generate")

    monkeypatch.setattr(generator, "generate_trace", boom)
    second = compose_cached(SPEC, tmp_path)
    assert second.path == first.path
    assert second.n_events == first.n_events


def test_open_scenario_store_rejects_stale_hash(tmp_path):
    compose_cached(SPEC, tmp_path)
    other = ScenarioSpec(
        name="cache-test",
        components=SPEC.components,
        seed=SPEC.seed + 1,
    )
    assert open_scenario_store(other, tmp_path) is None
    # ... and a matching spec still hits.
    assert open_scenario_store(SPEC, tmp_path) is not None


def test_scenario_hsm_variant_is_prepared_for_replay(tmp_path):
    store = compose_cached(SPEC, tmp_path, variant="scenario-hsm")
    assert store.path == scenario_store_dir(tmp_path, SPEC, "scenario-hsm")
    merged = EventBatch.concat(list(store.iter_batches()))
    assert np.all(merged.error == 0)
    assert np.all(merged.size >= 1)
    raw = compose_cached(SPEC, tmp_path)
    assert len(merged) < raw.n_events  # errors stripped + deduped


def test_scenario_store_dir_rejects_unknown_variant(tmp_path):
    with pytest.raises(ValueError, match="variant"):
        scenario_store_dir(tmp_path, SPEC, "bogus")


# ---------------------------------------------------------------------------
# trace info metadata (and pre-scenario manifest compatibility)


def test_trace_info_prints_scenario_metadata(tmp_path, capsys):
    store = compose_cached(SPEC, tmp_path)
    assert main(["trace", "info", str(store.path)]) == 0
    out = capsys.readouterr().out
    assert "scenario:  cache-test" in out
    assert "alpha, beta" in out
    assert "file_id % 2" in out


def test_trace_info_degrades_on_pre_scenario_manifests(tmp_path, capsys):
    """Manifests written before the scenario subsystem lack ``meta``."""
    store = compose_cached(SPEC, tmp_path)
    manifest_path = store.path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    del manifest["meta"]
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    reopened = TraceStore.open(store.path)
    assert reopened.meta == {}
    description = reopened.describe()
    assert "scenario:" not in description
    assert main(["trace", "info", str(store.path)]) == 0
    assert "events:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI


CLI_SCALE = ["--scale", "0.004", "--days", "30"]


def test_cli_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "mixed-tenant" in out and "flash-crowd" in out


def test_cli_scenario_show_text_and_json(capsys):
    assert main(["scenario", "show", "mixed-tenant"] + CLI_SCALE) == 0
    out = capsys.readouterr().out
    assert "tenants:   backup, crowd, ncar" in out
    assert main(["scenario", "show", "mixed-tenant", "--json"] + CLI_SCALE) == 0
    spec = json.loads(capsys.readouterr().out)
    assert spec["name"] == "mixed-tenant"
    assert len(spec["components"]) == 3


def test_cli_scenario_show_unknown_name(capsys):
    assert main(["scenario", "show", "nope"] + CLI_SCALE) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_scenario_run_with_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["scenario", "run", "flash-crowd", "--cache-dir", cache] + CLI_SCALE
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Per-tenant overall statistics: flash-crowd" in out
    assert "crowd" in out
    # Second run hits both the component and the composed stores.
    assert main(args) == 0
    assert "store" in capsys.readouterr().out


def test_cli_scenario_run_from_spec_file(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC.to_dict()), encoding="utf-8")
    assert main(["scenario", "run", "--spec", str(path)] + CLI_SCALE) == 0
    out = capsys.readouterr().out
    assert "cache-test" in out and "alpha" in out and "beta" in out


def test_cli_scenario_compare(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert (
        main(
            ["scenario", "compare", "ncar-baseline", "flash-crowd",
             "--cache-dir", cache]
            + CLI_SCALE
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Scenario comparison" in out
    assert "ncar-baseline" in out and "flash-crowd" in out
