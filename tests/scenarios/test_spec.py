"""ScenarioSpec: validation, serialization, hashing, derived configs."""

import dataclasses

import numpy as np
import pytest

from repro.scenarios.spec import ComponentSpec, Envelope, ScenarioSpec
from repro.util.units import DAY, HOUR
from repro.workload.config import BurstConfig, WorkloadConfig


def _component(name, **kwargs):
    workload = kwargs.pop(
        "workload", WorkloadConfig(scale=0.01, duration_seconds=30 * DAY)
    )
    return ComponentSpec(name=name, workload=workload, **kwargs)


def _spec(*components, **kwargs):
    return ScenarioSpec(
        name=kwargs.pop("name", "test"), components=tuple(components), **kwargs
    )


# ---------------------------------------------------------------------------
# Validation


def test_spec_needs_components():
    with pytest.raises(ValueError, match="at least one component"):
        ScenarioSpec(name="empty")


def test_spec_rejects_duplicate_names():
    with pytest.raises(ValueError, match="unique"):
        _spec(_component("a"), _component("a"))


def test_component_validation():
    with pytest.raises(ValueError):
        _component("a", share=0.0)
    with pytest.raises(ValueError):
        _component("a", share=1.5)
    with pytest.raises(ValueError):
        _component("a", start_day=-1.0)
    with pytest.raises(ValueError):
        _component("")


def test_envelope_validation():
    with pytest.raises(ValueError, match="envelope kind"):
        Envelope(kind="weekly")
    with pytest.raises(ValueError):
        Envelope(kind="daily", period_days=0.0)
    with pytest.raises(ValueError):
        Envelope(kind="daily", floor=1.5)


# ---------------------------------------------------------------------------
# Envelope acceptance


def test_constant_envelope_accepts_everything():
    times = np.linspace(0, 3 * DAY, 50)
    assert np.all(Envelope().acceptance(times) == 1.0)


def test_daily_envelope_window_and_floor():
    envelope = Envelope(kind="daily", hour_start=0.0, hour_end=6.0, floor=0.25)
    inside = np.array([1.0 * HOUR, DAY + 5.0 * HOUR])
    outside = np.array([12.0 * HOUR, DAY + 18.0 * HOUR])
    assert np.all(envelope.acceptance(inside) == 1.0)
    assert np.all(envelope.acceptance(outside) == 0.25)


def test_daily_envelope_wraps_past_midnight():
    envelope = Envelope(kind="daily", hour_start=22.0, hour_end=2.0, floor=0.0)
    inside = np.array([23.0 * HOUR, DAY + 1.0 * HOUR])
    outside = np.array([12.0 * HOUR])
    assert np.all(envelope.acceptance(inside) == 1.0)
    assert np.all(envelope.acceptance(outside) == 0.0)


# ---------------------------------------------------------------------------
# Canonical order, derived configs


def test_tenants_and_rank_order_are_sorted_by_name():
    spec = _spec(_component("zeta"), _component("alpha"))
    assert spec.tenants == ["alpha", "zeta"]
    assert [c.name for c in spec.ordered_components()] == ["alpha", "zeta"]


def test_derived_config_applies_share_and_child_seed():
    spec = _spec(_component("a", share=0.5), _component("b"), seed=9)
    config = spec.derived_config("a")
    assert config.scale == pytest.approx(0.005)
    assert config.seed == spec.component_seeds()["a"]
    # The sibling gets an independent seed from the same root.
    assert spec.derived_config("b").seed != config.seed


def test_component_lookup_raises_on_unknown_name():
    spec = _spec(_component("a"))
    with pytest.raises(KeyError, match="no component named"):
        spec.component("nope")


# ---------------------------------------------------------------------------
# Serialization


def test_dict_round_trip_preserves_spec():
    spec = _spec(
        _component(
            "a",
            share=0.5,
            start_day=3.0,
            envelope=Envelope(kind="daily", hour_start=1.0, hour_end=5.0),
            workload=WorkloadConfig(
                scale=0.01,
                duration_seconds=30 * DAY,
                bursts=BurstConfig(read_extra_mean=4.0),
            ),
        ),
        _component("b"),
        seed=4,
    )
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt.tenants == spec.tenants
    assert rebuilt.seed == spec.seed
    assert rebuilt.component("a").workload.bursts.read_extra_mean == 4.0
    assert rebuilt.scenario_hash() == spec.scenario_hash()


def test_from_file_json_and_yaml(tmp_path):
    import json

    spec = _spec(_component("a"), seed=2)
    json_path = tmp_path / "spec.json"
    json_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    assert ScenarioSpec.from_file(json_path).scenario_hash() == spec.scenario_hash()

    yaml = pytest.importorskip("yaml")
    yaml_path = tmp_path / "spec.yaml"
    yaml_path.write_text(yaml.safe_dump(spec.to_dict()), encoding="utf-8")
    assert ScenarioSpec.from_file(yaml_path).scenario_hash() == spec.scenario_hash()


def test_from_file_rejects_non_mapping(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(ValueError, match="mapping"):
        ScenarioSpec.from_file(path)


# ---------------------------------------------------------------------------
# Content addressing


def test_hash_is_listing_order_invariant():
    a, b = _component("a"), _component("b")
    assert _spec(a, b).scenario_hash() == _spec(b, a).scenario_hash()


def test_hash_changes_with_spec_content():
    base = _spec(_component("a"), seed=1)
    assert base.scenario_hash() != _spec(_component("a"), seed=2).scenario_hash()
    richer = _spec(
        dataclasses.replace(_component("a"), share=0.5), seed=1
    )
    assert base.scenario_hash() != richer.scenario_hash()
