"""Built-in archetype library."""

import pytest

from repro.scenarios.library import (
    build_scenario,
    describe_scenarios,
    scenario_names,
)


def test_library_has_the_promised_archetypes():
    names = scenario_names()
    assert len(names) >= 6
    for expected in (
        "ncar-baseline",
        "flash-crowd",
        "backup-storm",
        "archival-ingest",
        "ml-scan",
        "mixed-tenant",
    ):
        assert expected in names


@pytest.mark.parametrize("name", scenario_names())
def test_every_archetype_builds_a_valid_spec(name):
    spec = build_scenario(name, scale=0.004, seed=3, days=30.0)
    assert spec.name == name
    assert spec.description
    assert spec.seed == 3
    assert spec.tenants == sorted({c.name for c in spec.components})
    for tenant in spec.tenants:
        config = spec.derived_config(tenant)
        assert 0 < config.scale <= 0.004
        assert config.duration_seconds > 0


def test_mixed_tenant_shares_one_mss():
    spec = build_scenario("mixed-tenant", scale=0.01, seed=0, days=60.0)
    assert len(spec.components) >= 3
    assert sum(c.share for c in spec.components) == pytest.approx(1.0)


def test_build_scenario_rejects_unknown_names():
    with pytest.raises(KeyError, match="unknown scenario"):
        build_scenario("definitely-not-a-scenario")


def test_describe_scenarios_covers_every_name():
    rows = describe_scenarios()
    assert [row["name"] for row in rows] == scenario_names()
    for row in rows:
        assert row["description"] and row["tenants"]


def test_archetypes_differ_in_content_hash():
    hashes = {
        build_scenario(name, scale=0.004, seed=0, days=30.0).scenario_hash()
        for name in scenario_names()
    }
    assert len(hashes) == len(scenario_names())
