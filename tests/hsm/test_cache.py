"""Managed-disk cache tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hsm.cache import CacheConfig, ManagedDiskCache
from repro.migration.basic import LRUPolicy
from repro.migration.stp import stp_14


def _cache(capacity=1000, writeback_delay=100.0, policy=None, **kwargs):
    config = CacheConfig(
        capacity_bytes=capacity, writeback_delay=writeback_delay, **kwargs
    )
    return ManagedDiskCache(config, policy or LRUPolicy())


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=10, high_watermark=0.5, low_watermark=0.9)


def test_read_miss_then_hit():
    cache = _cache()
    first = cache.access(1, 100, 0.0, is_write=False)
    assert not first.hit
    assert first.staged_bytes == 100
    second = cache.access(1, 100, 10.0, is_write=False)
    assert second.hit
    metrics = cache.metrics
    assert metrics.reads == 2
    assert metrics.read_misses == 1
    assert metrics.compulsory_misses == 1
    assert metrics.read_miss_ratio == pytest.approx(0.5)


def test_compulsory_vs_capacity_misses():
    cache = _cache(capacity=250, high_watermark=1.0, low_watermark=0.9)
    cache.access(1, 200, 0.0, is_write=False)   # compulsory
    cache.access(2, 200, 1.0, is_write=False)   # compulsory; evicts 1
    cache.access(1, 200, 2.0, is_write=False)   # capacity miss
    assert cache.metrics.read_misses == 3
    assert cache.metrics.compulsory_misses == 2
    assert cache.metrics.capacity_miss_ratio == pytest.approx(1 / 3)


def test_write_makes_dirty_then_flushes():
    cache = _cache(writeback_delay=50.0)
    cache.access(1, 100, 0.0, is_write=True)
    assert cache.is_dirty(1)
    assert cache.metrics.tape_writes == 0
    cache.flush_due(60.0)
    assert not cache.is_dirty(1)
    assert cache.metrics.tape_writes == 1
    assert cache.metrics.bytes_flushed == 100


def test_write_through_mode():
    cache = _cache(writeback_delay=None)
    cache.access(1, 100, 0.0, is_write=True)
    assert not cache.is_dirty(1)
    assert cache.metrics.tape_writes == 1


def test_rewrite_absorbs_pending_flush():
    cache = _cache(writeback_delay=100.0)
    cache.access(1, 100, 0.0, is_write=True)
    cache.access(1, 100, 10.0, is_write=True)   # re-written before flushing
    assert cache.metrics.rewrites_absorbed == 1
    cache.flush_due(200.0)
    # Only one tape write for two logical writes: lazy write-back pays off.
    assert cache.metrics.tape_writes == 1


def test_eviction_of_dirty_file_forces_flush():
    cache = _cache(capacity=250, writeback_delay=1e9,
                   high_watermark=1.0, low_watermark=0.9)
    cache.access(1, 200, 0.0, is_write=True)
    cache.access(2, 200, 1.0, is_write=False)   # forces eviction of dirty 1
    assert cache.metrics.forced_flushes == 1
    assert cache.metrics.tape_writes == 1
    assert not cache.is_resident(1)


def test_watermark_eviction_to_low():
    cache = _cache(capacity=1000, high_watermark=0.8, low_watermark=0.5)
    for i in range(7):
        cache.access(i, 100, float(i), is_write=False)
    # Usage 700; adding 200 crosses 800 -> evict down to 500 - incoming.
    cache.access(99, 200, 10.0, is_write=False)
    assert cache.usage_bytes <= 500
    assert cache.metrics.evictions >= 3


def test_file_larger_than_cache_bypasses():
    # Oversized files move Cray<->tape directly instead of erroring out
    # (they can never be staged, but the reference itself is legal).
    cache = _cache(capacity=100)
    outcome = cache.access(1, 500, 0.0, is_write=False)
    assert not outcome.hit
    assert not cache.is_resident(1)
    assert cache.metrics.bypassed_reads == 1
    with pytest.raises(ValueError):
        cache.access(1, 0, 0.0, is_write=False)


def test_flush_all():
    cache = _cache(writeback_delay=1e9)
    cache.access(1, 100, 0.0, is_write=True)
    cache.access(2, 100, 1.0, is_write=True)
    assert cache.flush_all() == 2
    assert cache.metrics.tape_writes == 2


def test_span_tracking():
    cache = _cache()
    cache.access(1, 10, 100.0, is_write=False)
    cache.access(2, 10, 400.0, is_write=False)
    assert cache.metrics.span_seconds == pytest.approx(300.0)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),    # file id
            st.integers(min_value=1, max_value=400),   # size
            st.booleans(),                             # is_write
        ),
        min_size=1,
        max_size=120,
    ),
    st.sampled_from(["lru", "stp"]),
)
@settings(max_examples=60, deadline=None)
def test_cache_invariants_hold_under_any_workload(events, policy_name):
    """Capacity never exceeded; policy and cache agree; dirty <= resident."""
    policy = LRUPolicy() if policy_name == "lru" else stp_14()
    cache = _cache(capacity=1000, writeback_delay=500.0, policy=policy)
    sizes = {}
    time = 0.0
    for file_id, size, is_write in events:
        # Keep a stable size per file id, as real files have.
        size = sizes.setdefault(file_id, size)
        time += 10.0
        cache.access(file_id, size, time, is_write)
        cache.check_invariants()
    cache.flush_all()
    cache.check_invariants()
    metrics = cache.metrics
    assert metrics.reads + metrics.writes == len(events)
    assert metrics.read_hits + metrics.read_misses == metrics.reads
    assert metrics.compulsory_misses <= metrics.read_misses


# ---------------------------------------------------------------------------
# Batch splitting around degenerate sizes


def _mixed_stream():
    """Clean spans around two oversized events and a repeated bypass."""
    stream = []
    t = 0.0
    for i in range(40):                       # clean span 1
        stream.append((i % 7, 50, t, i % 3 == 0))
        t += 1.0
    stream.append((100, 5000, t, False))      # oversized read
    t += 1.0
    for i in range(40):                       # clean span 2
        stream.append((i % 5, 60, t, i % 4 == 0))
        t += 1.0
    stream.append((100, 5000, t, True))       # oversized write
    t += 1.0
    for i in range(20):                       # clean span 3
        stream.append((i % 3, 40, t, False))
        t += 1.0
    return stream


def test_access_batch_split_matches_per_event():
    """A batch with scattered oversized events must produce exactly the
    per-event metrics and state (the split path is semantics-preserving)."""
    stream = _mixed_stream()
    columns = [list(col) for col in zip(*stream)]
    batch_cache = _cache(capacity=1000, writeback_delay=50.0)
    event_cache = _cache(capacity=1000, writeback_delay=50.0)
    batch_cache.access_batch(*columns)
    for fid, size, time, write in stream:
        event_cache.access(fid, size, time, write)
    assert batch_cache.metrics == event_cache.metrics
    assert batch_cache.usage_bytes == event_cache.usage_bytes
    assert batch_cache.metrics.bypassed_reads == 1
    assert batch_cache.metrics.bypassed_writes == 1
    batch_cache.check_invariants()


def test_access_batch_split_keeps_fast_path_for_clean_spans(monkeypatch):
    """Only the degenerate events drop to per-event handling: the clean
    spans must run the buffered fast loop, not the scalar `_read` path."""

    def _fail_read(self, *args, **kwargs):
        raise AssertionError("clean events fell back to the scalar path")

    monkeypatch.setattr(ManagedDiskCache, "_read", _fail_read)
    cache = _cache(capacity=1000, writeback_delay=None)
    stream = _mixed_stream()
    cache.access_batch(*[list(col) for col in zip(*stream)])
    assert cache.metrics.reads > 0
    assert cache.metrics.bypassed_reads == 1


def test_access_batch_split_raises_on_bad_size_after_prefix():
    """A nonpositive size raises exactly where the per-event path would,
    with every earlier event (including a clean span) already applied."""
    cache = _cache(capacity=1000, writeback_delay=None)
    with pytest.raises(ValueError, match="size must be positive"):
        cache.access_batch(
            [1, 2, 3], [10, -5, 20], [0.0, 1.0, 2.0], [True, False, False]
        )
    # The prefix landed; the bad event and its successors did not.
    assert cache.metrics.writes == 1
    assert cache.metrics.reads == 0
    assert cache.is_resident(1)
    assert cache.metrics.span_seconds == 0.0
