"""HSM manager, prefetch, metrics and policy-ordering tests."""

import pytest

from repro.hsm.manager import HSM, HSMConfig, capacity_sweep, events_from_trace, run_policy
from repro.hsm.metrics import HSMMetrics
from repro.hsm.prefetch import PrefetchConfig, SequentialPrefetcher
from repro.migration.basic import LRUPolicy
from repro.util.units import DAY


# ---------------------------------------------------------------------------
# Metrics


def test_metrics_ratios():
    m = HSMMetrics(reads=100, read_hits=90, read_misses=10, compulsory_misses=4)
    assert m.read_miss_ratio == pytest.approx(0.10)
    assert m.read_hit_ratio == pytest.approx(0.90)
    assert m.capacity_miss_ratio == pytest.approx(0.06)


def test_metrics_empty():
    m = HSMMetrics()
    assert m.read_miss_ratio == 0.0
    assert m.person_minutes_per_day() == 0.0
    assert m.prefetch_accuracy() == 0.0


def test_person_minutes_formula():
    # 10 misses/day at 85 s each = 850 s/day ~= 14.2 person-minutes.
    m = HSMMetrics(reads=100, read_misses=10, span_seconds=1 * DAY)
    assert m.person_minutes_per_day(stall_seconds=85.0) == pytest.approx(
        10 * 85 / 60.0
    )


def test_mean_read_latency_interpolates():
    m = HSMMetrics(reads=10, read_hits=5, read_misses=5)
    assert m.mean_read_latency(hit_latency=10.0, miss_latency=100.0) == pytest.approx(55.0)


# ---------------------------------------------------------------------------
# Prefetcher


def test_prefetcher_candidates(small_namespace):
    big_dir = max(small_namespace.directories, key=lambda d: d.file_count)
    first = small_namespace.files[big_dir.file_ids[0]]
    prefetcher = SequentialPrefetcher(small_namespace, PrefetchConfig(depth=2))
    candidates = prefetcher.candidates(first.file_id)
    assert len(candidates) == 2
    assert candidates[0][0] == big_dir.file_ids[1]


def test_prefetcher_disabled(small_namespace):
    prefetcher = SequentialPrefetcher(
        small_namespace, PrefetchConfig(depth=2, enabled=False)
    )
    assert prefetcher.candidates(0) == []


def test_prefetcher_hit_consumes_once(small_namespace):
    prefetcher = SequentialPrefetcher(small_namespace)
    prefetcher.note_prefetched(5)
    assert prefetcher.consume_hit(5)
    assert not prefetcher.consume_hit(5)


def test_prefetcher_cancel(small_namespace):
    prefetcher = SequentialPrefetcher(small_namespace)
    prefetcher.note_prefetched(5)
    prefetcher.cancel(5)
    assert not prefetcher.consume_hit(5)


# ---------------------------------------------------------------------------
# HSM end to end


def _synthetic_events():
    """A small, repetitive reference stream with reuse."""
    events = []
    time = 0.0
    for cycle in range(8):
        for fid in range(12):
            time += 3600.0
            events.append((fid, 50 + fid * 10, time, cycle == 0))
    return events


def test_hsm_run_accumulates():
    events = _synthetic_events()
    config = HSMConfig.with_capacity(capacity_bytes=10_000)
    hsm = HSM(config, LRUPolicy())
    metrics = hsm.run(events)
    assert metrics.reads + metrics.writes == len(events)
    assert metrics.read_miss_ratio < 0.5   # plenty of reuse and room


def test_hsm_small_cache_misses_more():
    events = _synthetic_events()
    big = run_policy(events, "lru", capacity_bytes=10_000)
    small = run_policy(events, "lru", capacity_bytes=300)
    assert small.read_miss_ratio > big.read_miss_ratio


def test_hsm_prefetch_requires_namespace():
    config = HSMConfig.with_capacity(1000, prefetch=True)
    with pytest.raises(ValueError):
        HSM(config, LRUPolicy(), namespace=None)


def test_events_from_trace_structure(tiny_trace):
    events = events_from_trace(tiny_trace)
    assert events, "expected a non-empty event stream"
    times = [t for _, _, t, _ in events]
    assert times == sorted(times)
    for file_id, size, _, is_write in events[:100]:
        assert size >= 1
        assert 0 <= file_id < tiny_trace.namespace.file_count
        assert isinstance(is_write, bool)


def test_events_from_trace_dedupe_reduces(tiny_trace):
    deduped = events_from_trace(tiny_trace, deduped=True)
    raw = events_from_trace(tiny_trace, deduped=False)
    assert len(deduped) < len(raw)


def test_opt_is_lower_bound(tiny_trace):
    events = events_from_trace(tiny_trace)
    capacity = int(tiny_trace.namespace.total_bytes * 0.02)
    opt = run_policy(events, "opt", capacity, namespace=tiny_trace.namespace)
    lru = run_policy(events, "lru", capacity, namespace=tiny_trace.namespace)
    stp = run_policy(events, "stp", capacity, namespace=tiny_trace.namespace)
    assert opt.read_miss_ratio <= lru.read_miss_ratio + 1e-9
    assert opt.read_miss_ratio <= stp.read_miss_ratio + 1e-9


def test_policy_ordering_matches_literature(calib_trace):
    """Lawrie/Smith: STP best of the simple online policies; size-only and
    MRU are poor."""
    events = events_from_trace(calib_trace)
    capacity = int(calib_trace.namespace.total_bytes * 0.015)
    results = {
        name: run_policy(events, name, capacity, namespace=calib_trace.namespace)
        for name in ("stp", "lru", "largest-first", "mru", "random")
    }
    assert results["stp"].read_miss_ratio <= results["lru"].read_miss_ratio + 0.01
    assert results["stp"].read_miss_ratio < results["largest-first"].read_miss_ratio
    assert results["stp"].read_miss_ratio < results["mru"].read_miss_ratio
    assert results["stp"].read_miss_ratio < results["random"].read_miss_ratio


def test_capacity_sweep_monotone(tiny_trace):
    events = events_from_trace(tiny_trace)
    total = tiny_trace.namespace.total_bytes
    fractions = [0.005, 0.02, 0.08]
    misses = [
        metrics.read_miss_ratio
        for _, metrics in capacity_sweep(events, "stp", total, fractions)
    ]
    assert misses[0] >= misses[1] >= misses[2]


def test_lazy_writeback_saves_tape_writes(tiny_trace):
    events = events_from_trace(tiny_trace)
    capacity = int(tiny_trace.namespace.total_bytes * 0.05)
    lazy = run_policy(events, "stp", capacity, writeback_delay=8 * 3600.0)
    eager = run_policy(events, "stp", capacity, writeback_delay=None)
    assert lazy.tape_writes <= eager.tape_writes
    assert lazy.rewrites_absorbed >= 0


def test_prefetch_improves_miss_ratio(calib_trace):
    """Sequential prefetch should convert sibling misses into hits."""
    events = events_from_trace(calib_trace)
    capacity = int(calib_trace.namespace.total_bytes * 0.03)
    plain = run_policy(events, "stp", capacity, namespace=calib_trace.namespace)
    fetched = run_policy(
        events, "stp", capacity, namespace=calib_trace.namespace, prefetch=True
    )
    assert fetched.prefetches_issued > 0
    assert fetched.prefetch_hits > 0
    assert fetched.read_miss_ratio < plain.read_miss_ratio
