"""Cut-through open model tests (Section 5.1.1 optimization)."""

import pytest

from repro.hsm.cutthrough import (
    CutThroughReport,
    blocking_stall,
    cutthrough_stall,
    evaluate_cutthrough,
)
from repro.trace.record import Device, make_read, make_write
from repro.util.units import MB


def test_blocking_stall_is_latency_plus_transfer():
    assert blocking_stall(60.0, 80 * MB, 2 * MB) == pytest.approx(100.0)


def test_cutthrough_hides_stall_for_slow_reader():
    # App consumes 80 MB at 0.5 MB/s = 160 s; delivery finishes at 100 s.
    stall = cutthrough_stall(60.0, 80 * MB, 2 * MB, 0.5 * MB)
    assert stall == 0.0


def test_cutthrough_partial_overlap_for_fast_reader():
    # App at 4 MB/s would finish in 20 s; delivery takes 100 s total.
    stall = cutthrough_stall(60.0, 80 * MB, 2 * MB, 4 * MB)
    assert stall == pytest.approx(80.0)
    # Never worse than blocking.
    assert stall <= blocking_stall(60.0, 80 * MB, 2 * MB)


def test_validation():
    with pytest.raises(ValueError):
        blocking_stall(1.0, 10, 0.0)
    with pytest.raises(ValueError):
        cutthrough_stall(1.0, 10, 1.0, 0.0)
    with pytest.raises(ValueError):
        blocking_stall(-1.0, 10, 1.0)


def _read(latency, size, transfer):
    return make_read(
        Device.TAPE_SILO, 0.0, size, "/f", 1,
        startup_latency=latency, transfer_time=transfer,
    )


def test_evaluate_cutthrough_improves():
    records = [
        _read(85.0, 80 * MB, 40.0),
        _read(100.0, 60 * MB, 30.0),
        make_write(Device.TAPE_SILO, 0.0, 80 * MB, "/w", 1,
                   startup_latency=80.0, transfer_time=40.0),  # ignored
    ]
    report = evaluate_cutthrough(records, app_rate=0.8 * MB)
    assert isinstance(report, CutThroughReport)
    assert report.blocking.count == 2   # writes excluded
    assert report.mean_cutthrough_stall < report.mean_blocking_stall
    assert 0 < report.improvement <= 1


def test_evaluate_cutthrough_on_synthetic_trace(calib_records):
    report = evaluate_cutthrough(iter(calib_records))
    # Section 5.1.1's point: a large share of perceived latency disappears
    # because applications read slower than the MSS delivers.
    assert report.improvement > 0.25
    assert report.mean_cutthrough_stall < report.mean_blocking_stall


def test_evaluate_cutthrough_needs_reads():
    with pytest.raises(ValueError):
        evaluate_cutthrough([])
