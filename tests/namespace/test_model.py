"""Namespace data-model tests."""

import pytest

from repro.namespace.model import Namespace


@pytest.fixture
def ns():
    namespace = Namespace()
    root = namespace.add_directory("/", depth=0, parent_id=None)
    home = namespace.add_directory("/u1", depth=1, parent_id=root.dir_id)
    proj = namespace.add_directory("/u1/ccm", depth=2, parent_id=home.dir_id)
    namespace.add_file("/u1/ccm/h00000.nc", 10_000, proj.dir_id)
    namespace.add_file("/u1/ccm/h00001.nc", 20_000, proj.dir_id)
    namespace.add_file("/u1/readme", 100, home.dir_id)
    return namespace


def test_counts(ns):
    assert ns.file_count == 3
    assert ns.directory_count == 3
    assert ns.total_bytes == 30_100
    assert ns.average_file_size == pytest.approx(30_100 / 3)
    assert ns.max_depth == 2


def test_directory_membership(ns):
    proj = ns.directories[2]
    assert proj.file_count == 2
    assert ns.largest_directory_file_count == 2
    assert ns.directory_file_counts() == [0, 1, 2]


def test_directory_data_bytes(ns):
    assert ns.directory_data_bytes() == [0, 100, 30_000]


def test_lookup_by_path(ns):
    entry = ns.file_by_path("/u1/ccm/h00001.nc")
    assert entry.size == 20_000
    with pytest.raises(KeyError):
        ns.file_by_path("/nope")


def test_sequence_and_sibling(ns):
    first = ns.file_by_path("/u1/ccm/h00000.nc")
    assert first.sequence == 0
    nxt = ns.sibling_after(first)
    assert nxt is not None and nxt.path == "/u1/ccm/h00001.nc"
    assert ns.sibling_after(nxt) is None


def test_subdir_links(ns):
    root = ns.directories[0]
    assert root.subdir_ids == [1]
    assert ns.directories[1].subdir_ids == [2]


def test_add_directory_requires_parent():
    namespace = Namespace()
    namespace.add_directory("/", 0, None)
    with pytest.raises(ValueError):
        namespace.add_directory("/x", 1, parent_id=99)


def test_add_file_requires_directory_and_unique_path(ns):
    with pytest.raises(ValueError):
        ns.add_file("/z", 1, dir_id=99)
    with pytest.raises(ValueError):
        ns.add_file("/u1/readme", 1, dir_id=1)
    with pytest.raises(ValueError):
        ns.add_file("/neg", -5, dir_id=1)


def test_validate_passes(ns):
    ns.validate()


def test_validate_detects_depth_breakage(ns):
    ns.directories[2].depth = 7
    with pytest.raises(ValueError):
        ns.validate()


def test_empty_namespace_properties():
    namespace = Namespace()
    assert namespace.average_file_size == 0.0
    assert namespace.max_depth == 0
    assert namespace.largest_directory_file_count == 0
