"""File-size model tests (Figure 11 / Table 3 calibration)."""

import numpy as np
import pytest

from repro.namespace.sizes import (
    DeviceSizeModel,
    FileSizeModel,
    LognormalSpec,
    MIN_FILE_BYTES,
    split_oversized,
)
from repro.trace.record import Device
from repro.util.rng import make_rng
from repro.util.units import MB, MSS_FILE_SIZE_LIMIT


def test_lognormal_spec_mean():
    spec = LognormalSpec(median_bytes=10 * MB, sigma=0.5)
    assert spec.mean_bytes == pytest.approx(10 * MB * np.exp(0.125))


def test_lognormal_spec_sampling_median():
    spec = LognormalSpec(median_bytes=5 * MB, sigma=0.8)
    samples = spec.sample(make_rng(1), 20_000)
    assert np.median(samples) == pytest.approx(5 * MB, rel=0.05)


def test_file_size_model_respects_limits():
    model = FileSizeModel()
    sizes = model.sample(make_rng(2), 20_000)
    assert sizes.min() >= MIN_FILE_BYTES
    assert sizes.max() <= MSS_FILE_SIZE_LIMIT


def test_file_size_model_mean_near_25mb():
    model = FileSizeModel()
    sizes = model.sample(make_rng(3), 50_000)
    assert sizes.mean() == pytest.approx(25 * MB, rel=0.12)
    assert model.expected_mean_bytes() == pytest.approx(25 * MB, rel=0.12)


def test_file_size_model_small_file_shape():
    # Figure 11: ~half the files under 3 MB holding ~2 % of the data.
    model = FileSizeModel()
    sizes = model.sample(make_rng(4), 50_000)
    small = sizes < 3 * MB
    assert small.mean() == pytest.approx(0.5, abs=0.06)
    assert sizes[small].sum() / sizes.sum() < 0.05


def test_file_size_model_empty_and_invalid():
    model = FileSizeModel()
    assert model.sample(make_rng(0), 0).size == 0
    with pytest.raises(ValueError):
        model.sample(make_rng(0), -1)


@pytest.mark.parametrize(
    "device,target_mb",
    [
        (Device.MSS_DISK, 3.75),
        (Device.TAPE_SILO, 79.67),
        (Device.TAPE_SHELF, 47.14),
    ],
)
def test_device_size_means_match_table3(device, target_mb):
    model = DeviceSizeModel.for_device(device)
    sizes = model.sample(make_rng(5), 40_000)
    assert sizes.mean() / MB == pytest.approx(target_mb, rel=0.12)


def test_device_size_model_rejects_cray():
    with pytest.raises(ValueError):
        DeviceSizeModel.for_device(Device.CRAY)


def test_split_oversized_exact_multiple():
    assert split_oversized(400 * MB) == [200 * MB, 200 * MB]


def test_split_oversized_remainder():
    parts = split_oversized(450 * MB)
    assert parts == [200 * MB, 200 * MB, 50 * MB]
    assert sum(parts) == 450 * MB


def test_split_oversized_small_file():
    assert split_oversized(10) == [10]


def test_split_oversized_rejects_bad_input():
    with pytest.raises(ValueError):
        split_oversized(0)
    with pytest.raises(ValueError):
        split_oversized(100, limit=0)
