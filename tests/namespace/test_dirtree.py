"""Directory-tree generator tests (Table 4 / Figure 12 shape)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespace.dirtree import (
    FULL_SCALE_DIRECTORIES,
    FULL_SCALE_FILES,
    MAX_DIRECTORY_DEPTH,
    NamespaceProfile,
    _plan_file_counts,
    generate_namespace,
)
from repro.util.rng import make_rng
from repro.util.stats import top_fraction_share
from repro.util.units import MB


@pytest.fixture(scope="module")
def medium_ns():
    return generate_namespace(NamespaceProfile.scaled(0.01), seed=5)


def test_profile_constants_match_table4():
    assert FULL_SCALE_FILES == 900_000
    assert FULL_SCALE_DIRECTORIES == 143_245
    assert MAX_DIRECTORY_DEPTH == 12


def test_profile_validation():
    with pytest.raises(ValueError):
        NamespaceProfile(n_files=0)
    with pytest.raises(ValueError):
        NamespaceProfile(frac_zero_file_dirs=0.6, frac_one_file_dirs=0.5)
    with pytest.raises(ValueError):
        NamespaceProfile.scaled(0.0)


def test_file_count_exact(medium_ns):
    profile = NamespaceProfile.scaled(0.01)
    assert medium_ns.file_count == profile.n_files


def test_directory_ratio(medium_ns):
    ratio = medium_ns.directory_count / medium_ns.file_count
    assert ratio == pytest.approx(FULL_SCALE_DIRECTORIES / FULL_SCALE_FILES, rel=0.05)


def test_zero_or_one_file_fraction(medium_ns):
    counts = np.asarray(medium_ns.directory_file_counts())
    assert (counts <= 1).mean() == pytest.approx(0.75, abs=0.04)


def test_at_most_ten_files_fraction(medium_ns):
    counts = np.asarray(medium_ns.directory_file_counts())
    assert (counts <= 10).mean() == pytest.approx(0.90, abs=0.05)


def test_largest_directory_share(medium_ns):
    # Table 4: 24,926 / 900,000 ~= 2.77 % of files in the biggest directory.
    share = medium_ns.largest_directory_file_count / medium_ns.file_count
    assert share == pytest.approx(0.0277, rel=0.15)


def test_top_directories_hold_most_files(medium_ns):
    counts = medium_ns.directory_file_counts()
    assert top_fraction_share(counts, 0.05) > 0.45


def test_depth_bounds(medium_ns):
    assert 0 < medium_ns.max_depth <= MAX_DIRECTORY_DEPTH
    # The planted spine guarantees the full depth at this size.
    assert medium_ns.max_depth == MAX_DIRECTORY_DEPTH


def test_mean_file_size(medium_ns):
    assert medium_ns.average_file_size == pytest.approx(25 * MB, rel=0.15)


def test_structure_validates(medium_ns):
    medium_ns.validate()


def test_paths_unique(medium_ns):
    paths = [f.path for f in medium_ns.files]
    assert len(paths) == len(set(paths))


def test_deterministic_generation():
    a = generate_namespace(NamespaceProfile.scaled(0.002), seed=3)
    b = generate_namespace(NamespaceProfile.scaled(0.002), seed=3)
    assert [f.path for f in a.files] == [f.path for f in b.files]
    assert [f.size for f in a.files] == [f.size for f in b.files]


def test_different_seeds_differ():
    a = generate_namespace(NamespaceProfile.scaled(0.002), seed=3)
    b = generate_namespace(NamespaceProfile.scaled(0.002), seed=4)
    assert [f.size for f in a.files] != [f.size for f in b.files]


@given(st.integers(min_value=20, max_value=3000))
@settings(max_examples=20, deadline=None)
def test_plan_conserves_files(n_files):
    profile = NamespaceProfile(n_files=n_files)
    counts = _plan_file_counts(profile, make_rng(1))
    assert sum(counts) == n_files
    assert all(c >= 0 for c in counts)


def test_tiny_namespace_still_works():
    ns = generate_namespace(NamespaceProfile(n_files=25), seed=1)
    assert ns.file_count == 25
    ns.validate()
