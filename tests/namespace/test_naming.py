"""Path-naming helper tests."""

from repro.namespace.naming import (
    directory_component,
    file_name,
    join_path,
    user_name,
)
from repro.util.rng import make_rng


def test_user_name_format():
    assert user_name(42) == "u0042"
    assert user_name(3999) == "u3999"


def test_directory_component_depths():
    rng = make_rng(1)
    home = directory_component(rng, 1)
    assert home.startswith("u")
    project = directory_component(rng, 2)
    assert any(ch.isdigit() for ch in project)
    deep = directory_component(rng, 5)
    assert deep


def test_file_name_carries_sequence():
    rng = make_rng(2)
    name = file_name(rng, 123)
    assert "00123" in name
    assert "." in name


def test_file_names_ordered_by_sequence():
    rng = make_rng(3)
    a = file_name(rng, 1)
    b = file_name(rng, 2)
    # Sequence numbers are zero-padded, so sibling order is stable.
    assert "00001" in a and "00002" in b


def test_join_path():
    assert join_path(["u0001", "ccm01", "hist"]) == "/u0001/ccm01/hist"
    assert join_path(["x"]) == "/x"
