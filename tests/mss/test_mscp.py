"""MSCP / bitfile-mover tests: routing, concurrency, queueing."""

import pytest

from repro.mss.disk import DiskArray
from repro.mss.kernel import Simulator
from repro.mss.mscp import MSCP, MSCPConfig
from repro.mss.request import MSSRequest, Phase
from repro.trace.record import Device
from repro.util.rng import make_rng
from repro.util.units import MB


def _system(n_movers=2):
    sim = Simulator()
    disk = DiskArray(sim, make_rng(1))
    mscp = MSCP(
        sim,
        make_rng(2),
        {Device.MSS_DISK: disk},
        MSCPConfig(n_movers=n_movers, processing_mean=0.1),
    )
    return sim, disk, mscp


def _request(i, path="/u/d/f", size=MB):
    return MSSRequest(
        request_id=i, path=f"{path}{i}", size=size, is_write=False,
        device=Device.MSS_DISK, arrival_time=0.0, directory="/u/d",
    )


def test_mscp_completes_and_counts():
    sim, disk, mscp = _system()
    done = []
    mscp.submit(_request(0), done.append)
    sim.run()
    assert mscp.submitted == 1
    assert mscp.completed == 1
    assert done[0].phase is Phase.COMPLETE
    assert done[0].mscp_grant_time is not None


def test_mover_limit_queues_requests():
    sim, disk, mscp = _system(n_movers=1)
    done = []
    # Two big requests: the second waits for a mover, not just the disk.
    mscp.submit(_request(0, size=40 * MB), done.append)
    mscp.submit(_request(1, size=1 * MB), done.append)
    sim.run()
    assert len(done) == 2
    second = next(r for r in done if r.request_id == 1)
    assert second.mscp_queue_time > 5.0
    assert mscp.mover_queue_wait > 0


def test_many_movers_avoid_mscp_queueing():
    sim, disk, mscp = _system(n_movers=16)
    done = []
    for i in range(4):
        mscp.submit(_request(i, path=f"/u/d{i}/f"), done.append)
    sim.run()
    assert all(r.mscp_queue_time < 0.5 for r in done)


def test_mscp_rejects_unrouted_device():
    sim, disk, mscp = _system()
    bad = MSSRequest(
        request_id=0, path="/f", size=1, is_write=False,
        device=Device.TAPE_SILO, arrival_time=0.0,
    )
    with pytest.raises(ValueError):
        mscp.submit(bad, lambda r: None)
