"""MSCP, network topology, metrics, and full-system replay tests."""

import numpy as np
import pytest

from repro.mss.metrics import MetricsCollector
from repro.mss.network import ncar_topology
from repro.mss.request import MSSRequest
from repro.mss.system import MSSConfig, MSSSystem, replay_trace
from repro.trace.record import Device, make_read, make_write
from repro.util.units import MB


# ---------------------------------------------------------------------------
# Network topology (Figure 2)


def test_topology_nodes_and_networks():
    topo = ncar_topology()
    assert "cray-ymp" in topo.nodes
    assert "ibm-3090" in topo.nodes
    assert len(topo.links_by_network("MASnet")) == 4
    assert len(topo.links_by_network("LDN")) >= 3


def test_topology_neighbors():
    topo = ncar_topology()
    assert "ibm-3090" in topo.neighbors("cray-ymp")
    assert "mss-disk" in topo.neighbors("cray-ymp")


def test_topology_path_bandwidth():
    topo = ncar_topology()
    direct = topo.path_bandwidth(["cray-ymp", "mss-disk"])
    through_3090 = min(
        topo.path_bandwidth(["cray-ymp", "ibm-3090"]),
        topo.path_bandwidth(["ibm-3090", "mss-disk"]),
    )
    # The LDN direct path beats the MASnet detour (Section 3.1).
    assert direct > through_3090


def test_topology_validation():
    topo = ncar_topology()
    with pytest.raises(ValueError):
        topo.path_bandwidth(["cray-ymp"])
    with pytest.raises(ValueError):
        topo.path_bandwidth(["cray-ymp", "vaxen"])  # no direct link
    with pytest.raises(ValueError):
        topo.add_node("cray-ymp")
    with pytest.raises(ValueError):
        topo.add_link("cray-ymp", "nonexistent", "LDN", MB)


# ---------------------------------------------------------------------------
# System-level behaviour


def test_submit_and_run_single_request():
    system = MSSSystem(MSSConfig(seed=1))
    request = system.submit("/u/f.dat", 4 * MB, False, Device.MSS_DISK, when=10.0)
    system.run()
    assert request.completion_time is not None
    assert request.arrival_time == 10.0
    assert request.startup_latency > 0
    assert system.metrics.total_completed == 1


def test_submit_rejects_unknown_device():
    system = MSSSystem(MSSConfig(seed=1))
    with pytest.raises(ValueError):
        system.mscp.submit(
            MSSRequest(0, "/f", 1, False, Device.CRAY, 0.0), lambda r: None
        )


def test_replay_preserves_record_count_and_order(dense_trace):
    records = dense_trace.records()[:2000]
    replayed, metrics = replay_trace(records, MSSConfig(seed=2))
    assert len(replayed) == len(records)
    for original, new in zip(records, replayed):
        assert new.mss_path == original.mss_path
        assert new.start_time == original.start_time
        assert new.file_size == original.file_size
    assert metrics.total_completed == sum(1 for r in records if not r.is_error)


def test_replay_fills_latencies(dense_trace):
    records = dense_trace.records()[:2000]
    replayed, _ = replay_trace(records, MSSConfig(seed=3))
    good = [r for r in replayed if not r.is_error]
    assert all(r.startup_latency > 0 for r in good)
    assert all(r.transfer_time > 0 for r in good)


def test_replay_passes_errors_through(dense_trace):
    records = dense_trace.records()[:3000]
    errors_in = [r for r in records if r.is_error]
    replayed, _ = replay_trace(records, MSSConfig(seed=4))
    errors_out = [r for r in replayed if r.is_error]
    assert len(errors_in) == len(errors_out)


def test_replay_latency_ordering(dense_trace):
    """Disk must beat silo, silo must beat shelf (Figure 3 ordering)."""
    records = dense_trace.records()
    _, metrics = replay_trace(records, MSSConfig(seed=5))
    disk = np.mean(metrics.device_samples(Device.MSS_DISK))
    silo = np.mean(metrics.device_samples(Device.TAPE_SILO))
    shelf = np.mean(metrics.device_samples(Device.TAPE_SHELF))
    assert disk < silo < shelf
    # Paper: the silo is 2-2.5x faster than manual mounting overall.
    assert shelf / silo > 1.5


def test_replay_is_deterministic(dense_trace):
    records = dense_trace.records()[:1500]
    a, _ = replay_trace(records, MSSConfig(seed=6))
    b, _ = replay_trace(records, MSSConfig(seed=6))
    assert [r.startup_latency for r in a] == [r.startup_latency for r in b]


# ---------------------------------------------------------------------------
# Metrics collector


def test_metrics_collector_cells():
    collector = MetricsCollector()
    request = MSSRequest(0, "/f", MB, False, Device.MSS_DISK, 0.0)
    request.mscp_grant_time = 1.0
    request.device_grant_time = 2.0
    request.seek_done_time = 3.0
    request.first_byte_time = 3.0
    request.completion_time = 5.0
    collector.record(request)
    cell = collector.cell(Device.MSS_DISK, False)
    assert cell.startup.count == 1
    assert cell.startup.mean == pytest.approx(3.0)
    assert cell.transfer.mean == pytest.approx(2.0)
    assert collector.mean_startup(Device.MSS_DISK, False) == pytest.approx(3.0)
    summary = collector.summary()
    assert "disk-read" in summary


def test_metrics_empty_cell():
    collector = MetricsCollector()
    assert collector.cell(Device.TAPE_SILO, True).startup.count == 0
    with pytest.raises(ValueError):
        collector.device_cdf(Device.TAPE_SILO)
