"""Optical-jukebox device tests (Section 5.4 what-if)."""

import numpy as np
import pytest

from repro.mss.disk import DiskArray
from repro.mss.jukebox import JukeboxConfig, OpticalJukebox
from repro.mss.kernel import Simulator
from repro.mss.request import MSSRequest
from repro.trace.record import Device
from repro.util.rng import make_rng
from repro.util.units import MB


def _request(i, path, size, when=0.0):
    return MSSRequest(
        request_id=i, path=path, size=size, is_write=False,
        device=Device.MSS_DISK, arrival_time=when,
        directory=path.rsplit("/", 1)[0] or "/",
    )


def test_jukebox_serves_small_file():
    sim = Simulator()
    jukebox = OpticalJukebox(sim, make_rng(1))
    request = _request(0, "/u/home/notes.txt", 200_000)
    jukebox.submit(request, lambda r: None)
    sim.run()
    assert request.completion_time is not None
    # First byte within Table 1's ~7 s access plus the swap.
    assert request.startup_latency < 25.0
    assert jukebox.swaps == 1


def test_jukebox_platter_affinity():
    sim = Simulator()
    jukebox = OpticalJukebox(sim, make_rng(2))
    done = []
    requests = [
        _request(i, f"/u/home/f{i}.txt", 100_000, when=30.0 * i) for i in range(3)
    ]
    for r in requests:
        sim.schedule_at(r.arrival_time, lambda rr=r: jukebox.submit(rr, done.append))
    sim.run()
    # Same directory -> same platter -> one swap, two hits.
    assert jukebox.swaps == 1
    assert jukebox.platter_hits == 2


def test_jukebox_slow_transfer():
    """0.25 MB/s: a 1 MB file takes ~4 s to stream."""
    sim = Simulator()
    jukebox = OpticalJukebox(sim, make_rng(3))
    request = _request(0, "/u/home/big.dat", 1 * MB)
    jukebox.submit(request, lambda r: None)
    sim.run()
    assert request.transfer_time == pytest.approx(1 * MB / JukeboxConfig().transfer_rate, rel=0.1)


def test_jukebox_vs_disk_tradeoff():
    """The Table 1 trade-off on live devices: the jukebox wins time to
    first byte against a *queued* disk only for small transfers."""
    rng = make_rng(4)
    sizes = [200_000] * 30
    sim_j = Simulator()
    jukebox = OpticalJukebox(sim_j, make_rng(5))
    juke_requests = []
    for i, size in enumerate(sizes):
        r = _request(i, f"/u/d{i % 3}/f{i}", size, when=20.0 * i)
        juke_requests.append(r)
        sim_j.schedule_at(r.arrival_time, lambda rr=r: jukebox.submit(rr, lambda q: None))
    sim_j.run()
    juke_latency = np.mean([r.startup_latency for r in juke_requests])
    # Small-file first-byte latency stays in the seconds range.
    assert juke_latency < 30.0
    # But large files would crawl: 80 MB at 0.25 MB/s = 320 s of transfer.
    sim2 = Simulator()
    jukebox2 = OpticalJukebox(sim2, make_rng(6))
    big = _request(0, "/u/big/model.nc", 80 * MB)
    jukebox2.submit(big, lambda q: None)
    sim2.run()
    assert big.transfer_time > 300.0
