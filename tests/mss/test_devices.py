"""Device-level tests: disk array, tape libraries, operators."""

import numpy as np
import pytest

from repro.mss.devices import stable_hash
from repro.mss.disk import DiskArray, DiskConfig
from repro.mss.kernel import Simulator
from repro.mss.operators import OperatorConfig, OperatorPool
from repro.mss.request import MSSRequest, Phase
from repro.mss.tape import ShelfStation, TapeConfig, TapeSilo
from repro.trace.record import Device
from repro.util.rng import make_rng
from repro.util.units import HOUR, MB


def _request(request_id, path, size, is_write, device, when=0.0):
    return MSSRequest(
        request_id=request_id,
        path=path,
        size=size,
        is_write=is_write,
        device=device,
        arrival_time=when,
        directory=path.rsplit("/", 1)[0] or "/",
    )


def test_stable_hash_is_deterministic():
    assert stable_hash("/a/b") == stable_hash("/a/b")
    assert stable_hash("/a/b") != stable_hash("/a/c")


# ---------------------------------------------------------------------------
# Disk


def test_disk_serves_request():
    sim = Simulator()
    disk = DiskArray(sim, make_rng(1))
    done = []
    request = _request(0, "/u/f.dat", 4 * MB, False, Device.MSS_DISK)
    disk.submit(request, done.append)
    sim.run()
    assert done and done[0].phase is Phase.TRANSFERRING or request.completion_time
    assert request.first_byte_time is not None
    assert request.completion_time > request.first_byte_time
    assert request.startup_latency > 0


def test_disk_directory_affinity():
    sim = Simulator()
    disk = DiskArray(sim, make_rng(2))
    a = _request(0, "/u/ccm/h1.nc", MB, False, Device.MSS_DISK)
    b = _request(1, "/u/ccm/h2.nc", MB, False, Device.MSS_DISK)
    assert disk.spindle_of(a) == disk.spindle_of(b)


def test_disk_same_spindle_serializes():
    sim = Simulator()
    disk = DiskArray(sim, make_rng(3), DiskConfig(n_spindles=4, n_channels=4))
    done = []
    first = _request(0, "/u/d/a", 20 * MB, False, Device.MSS_DISK)
    second = _request(1, "/u/d/b", 1 * MB, False, Device.MSS_DISK)
    disk.submit(first, done.append)
    disk.submit(second, done.append)
    sim.run()
    # The second request waited for the first's 10-second transfer.
    assert second.device_queue_time > 5.0


def test_disk_completion_counter():
    sim = Simulator()
    disk = DiskArray(sim, make_rng(4))
    for i in range(5):
        disk.submit(
            _request(i, f"/u/x{i}/f", MB, bool(i % 2), Device.MSS_DISK),
            lambda r: None,
        )
    sim.run()
    assert disk.completed == 5


# ---------------------------------------------------------------------------
# Tape silo


def test_silo_first_access_mounts():
    sim = Simulator()
    silo = TapeSilo(sim, make_rng(5))
    request = _request(0, "/u/big/h00001.nc", 80 * MB, False, Device.TAPE_SILO)
    silo.submit(request, lambda r: None)
    sim.run()
    assert request.mount_was_needed
    assert silo.mounts_performed == 1
    assert request.mount_time > 0
    assert request.seek_time > 0


def test_silo_cartridge_affinity_skips_mount():
    sim = Simulator()
    silo = TapeSilo(sim, make_rng(6))
    first = _request(0, "/u/big/h00001.nc", 80 * MB, False, Device.TAPE_SILO)
    # Same directory, adjacent sequence number -> same cartridge.
    second = _request(1, "/u/big/h00002.nc", 80 * MB, False, Device.TAPE_SILO)
    assert silo.cartridge_of(first) == silo.cartridge_of(second)
    silo.submit(first, lambda r: None)
    silo.submit(second, lambda r: None)
    sim.run()
    assert silo.mounts_performed == 1
    assert silo.mount_hits == 1
    assert silo.mount_hit_ratio == pytest.approx(0.5)


def test_silo_distant_sequences_use_other_cartridges():
    silo = TapeSilo(Simulator(), make_rng(7))
    a = _request(0, "/u/big/h00001.nc", MB, False, Device.TAPE_SILO)
    b = _request(1, "/u/big/h00099.nc", MB, False, Device.TAPE_SILO)
    assert silo.cartridge_of(a) != silo.cartridge_of(b)


def test_silo_write_seeks_shorter_than_reads():
    rng = make_rng(8)
    config = TapeConfig()
    sim = Simulator()
    silo = TapeSilo(sim, rng, config)
    reads, writes = [], []
    for i in range(40):
        r = _request(i, f"/u/d{i}/h1.nc", MB, False, Device.TAPE_SILO)
        silo.submit(r, lambda q: reads.append(q.seek_time))
    sim.run()
    sim2 = Simulator()
    silo2 = TapeSilo(sim2, make_rng(9), config)
    for i in range(40):
        w = _request(i, f"/u/d{i}/h1.nc", MB, True, Device.TAPE_SILO)
        silo2.submit(w, lambda q: writes.append(q.seek_time))
    sim2.run()
    assert np.mean(writes) < np.mean(reads)


def test_same_cartridge_requests_share_a_drive():
    sim = Simulator()
    silo = TapeSilo(sim, make_rng(10))
    served = []
    for i in range(3):
        request = _request(i, f"/u/run/h0000{i}.nc", 10 * MB, False, Device.TAPE_SILO)
        silo.submit(request, lambda r: served.append(r.served_by))
    sim.run()
    assert len(set(served)) == 1


# ---------------------------------------------------------------------------
# Shelf + operators


def test_shelf_mount_is_slow():
    sim = Simulator()
    operators = OperatorPool(sim, make_rng(11))
    shelf = ShelfStation(sim, make_rng(12), operators)
    request = _request(0, "/arch/old/tape1.tar", 40 * MB, False, Device.TAPE_SHELF)
    shelf.submit(request, lambda r: None)
    sim.run()
    assert request.mount_time > 60.0
    assert operators.fetches_completed == 1


def test_operator_pool_queues_fetches():
    sim = Simulator()
    operators = OperatorPool(
        sim, make_rng(13), OperatorConfig(n_operators=1, distraction_probability=0.0)
    )
    done_times = []
    operators.fetch(lambda: done_times.append(sim.now))
    operators.fetch(lambda: done_times.append(sim.now))
    sim.run()
    assert len(done_times) == 2
    assert done_times[1] > done_times[0]


def test_operator_night_shift_slower():
    config = OperatorConfig(distraction_probability=0.0)
    day_sim = Simulator(start_time=14 * HOUR)
    day_ops = OperatorPool(day_sim, make_rng(14), config)
    night_sim = Simulator(start_time=2 * HOUR)
    night_ops = OperatorPool(night_sim, make_rng(14), config)
    day = np.mean([day_ops.sample_fetch_seconds() for _ in range(500)])
    night = np.mean([night_ops.sample_fetch_seconds() for _ in range(500)])
    assert night > 1.2 * day
